package core

import (
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/eventloop"
)

// spinner is a CPU-bound resumable computation: it burns CPU in small
// steps, checking for suspension after each, exactly as a language
// implementation checks at call boundaries.
type spinner struct {
	steps, done int
	stepCost    time.Duration
}

func (s *spinner) Run(t *Thread) RunResult {
	for s.done < s.steps {
		spin(s.stepCost)
		s.done++
		if t.CheckSuspend() {
			return Yield
		}
	}
	return Done
}

func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func newTestRuntime(p browser.Profile, cfg Config) (*browser.Window, *Runtime) {
	w := browser.NewWindow(p)
	return w, NewRuntime(w, cfg)
}

func TestMechanismSelection(t *testing.T) {
	cases := []struct {
		profile browser.Profile
		want    string
	}{
		{browser.IE10, "setImmediate"},
		{browser.Chrome28, "postMessage"},
		{browser.Firefox22, "postMessage"},
		{browser.IE8, "setTimeout"}, // sync postMessage forces fallback (§4.4)
	}
	for _, c := range cases {
		_, rt := newTestRuntime(c.profile, Config{})
		if rt.Mechanism() != c.want {
			t.Errorf("%s: mechanism = %q, want %q", c.profile.Name, rt.Mechanism(), c.want)
		}
	}
}

func TestForceMechanism(t *testing.T) {
	_, rt := newTestRuntime(browser.Chrome28, Config{ForceMechanism: "setTimeout"})
	if rt.Mechanism() != "setTimeout" {
		t.Errorf("mechanism = %q", rt.Mechanism())
	}
}

func TestSegmentationSurvivesWatchdog(t *testing.T) {
	// 300 ms of total CPU work under a 50 ms watchdog: only possible
	// if Doppio slices it into short events.
	p := browser.Chrome28
	p.WatchdogLimit = 50 * time.Millisecond
	w, rt := newTestRuntime(p, Config{Timeslice: 5 * time.Millisecond})
	s := &spinner{steps: 3000, stepCost: 100 * time.Microsecond}
	rt.Spawn("main", s)
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatalf("watchdog killed a segmented program: %v", err)
	}
	if s.done != s.steps {
		t.Errorf("done = %d, want %d", s.done, s.steps)
	}
	if rt.Stats().Suspensions == 0 {
		t.Error("program never suspended")
	}
}

func TestMonolithicEventIsKilled(t *testing.T) {
	// The same total work in one event must be killed — this is why
	// automatic event segmentation is required (§3.1).
	p := browser.Chrome28
	p.WatchdogLimit = 50 * time.Millisecond
	w := browser.NewWindow(p)
	w.Loop.Post("monolith", func() { spin(300 * time.Millisecond) })
	if _, ok := w.Loop.Run().(*eventloop.WatchdogError); !ok {
		t.Fatal("monolithic long event survived the watchdog")
	}
}

func TestSuspensionTimeAccounted(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{Timeslice: 2 * time.Millisecond})
	rt.Spawn("main", &spinner{steps: 400, stepCost: 50 * time.Microsecond})
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Suspensions < 2 {
		t.Errorf("Suspensions = %d, want several", st.Suspensions)
	}
	if st.SuspendedTime <= 0 {
		t.Error("SuspendedTime not accounted")
	}
	if st.CPUTime <= 0 {
		t.Error("CPUTime not accounted")
	}
}

func TestMultithreadingInterleaves(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{Timeslice: time.Millisecond})
	var trace []string
	mk := func(name string) *spinner { return &spinner{steps: 400, stepCost: 30 * time.Microsecond} }
	a := mk("a")
	b := mk("b")
	ta := rt.Spawn("a", a)
	tb := rt.Spawn("b", b)
	ta.Join(func() { trace = append(trace, "a-done") })
	tb.Join(func() { trace = append(trace, "b-done") })
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if a.done != 400 || b.done != 400 {
		t.Errorf("threads incomplete: a=%d b=%d", a.done, b.done)
	}
	if rt.Stats().ContextSwitches == 0 {
		t.Error("threads never interleaved")
	}
	if len(trace) != 2 {
		t.Errorf("join callbacks = %v", trace)
	}
}

func TestRoundRobinScheduler(t *testing.T) {
	// A FIFO scheduler must alternate between two ready threads.
	w, rt := newTestRuntime(browser.Chrome28, Config{
		Timeslice: time.Millisecond,
		Scheduler: func(ready []*Thread) *Thread { return ready[0] },
	})
	a := &spinner{steps: 400, stepCost: 50 * time.Microsecond}
	b := &spinner{steps: 400, stepCost: 50 * time.Microsecond}
	rt.Spawn("a", a)
	rt.Spawn("b", b)
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().ContextSwitches < 3 {
		t.Errorf("ContextSwitches = %d, want alternation", rt.Stats().ContextSwitches)
	}
}

// blocker exercises the §4.2 sync-over-async bridge: it "calls" an
// asynchronous storage API and continues with the result as if the
// call had been synchronous.
type blocker struct {
	store  *browser.AsyncStore
	phase  int
	result []byte
}

func (b *blocker) Run(t *Thread) RunResult {
	switch b.phase {
	case 0:
		b.phase = 1
		t.AsyncCall("idb-get", func(done func()) {
			b.store.Get("key", func(v []byte, ok bool) {
				b.result = v
				done()
			})
		})
		return Block
	default:
		return Done
	}
}

func TestBlockingOnAsyncAPI(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{})
	bl := &blocker{store: w.IndexedDB}
	w.Loop.Post("seed", func() {
		w.IndexedDB.Put("key", []byte("hello"), func(error) {
			rt.Spawn("main", bl)
			rt.Start()
		})
	})
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(bl.result) != "hello" {
		t.Errorf("result = %q", bl.result)
	}
}

// sleeper sleeps once and finishes.
type sleeper struct {
	d     time.Duration
	slept bool
	woke  time.Time
}

func (s *sleeper) Run(t *Thread) RunResult {
	if !s.slept {
		s.slept = true
		t.Sleep(s.d)
		return Block
	}
	s.woke = time.Now()
	return Done
}

func TestSleep(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{})
	s := &sleeper{d: 20 * time.Millisecond}
	start := time.Now()
	rt.Spawn("sleeper", s)
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.woke.Sub(start); got < 20*time.Millisecond {
		t.Errorf("woke after %v, want >= 20ms", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{})
	rt.Spawn("stuck", RunnableFunc(func(t *Thread) RunResult {
		t.Block("never-resumed")
		return Block
	}))
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	dead := rt.DeadlockedThreads()
	if len(dead) != 1 || dead[0].Name != "stuck" {
		t.Errorf("DeadlockedThreads = %v", dead)
	}
}

func TestOnIdle(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{})
	idle := false
	rt.OnIdle(func() { idle = true })
	rt.Spawn("main", &spinner{steps: 10, stepCost: time.Microsecond})
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !idle {
		t.Error("OnIdle never fired")
	}
}

func TestDoubleResumePanics(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{})
	var resume func()
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		if resume == nil {
			resume = th.Block("test")
			w.Loop.Post("kick", resume)
			return Block
		}
		return Done
	}))
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second resume did not panic")
		}
	}()
	resume()
}

func TestKill(t *testing.T) {
	w, rt := newTestRuntime(browser.Chrome28, Config{Timeslice: time.Millisecond})
	s := &spinner{steps: 1_000_000, stepCost: 10 * time.Microsecond}
	th := rt.Spawn("victim", s)
	// Kill it after a few slices.
	w.Loop.SetTimeout(func() { th.Kill() }, 10*time.Millisecond)
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if th.State() != TerminatedState {
		t.Errorf("state = %v", th.State())
	}
	if s.done == s.steps {
		t.Error("victim ran to completion despite Kill")
	}
}

func TestIE8SetTimeoutSuspendIsSlow(t *testing.T) {
	// On IE8 every suspension pays the 16 ms setTimeout clamp; the same
	// workload on Chrome (postMessage) suspends nearly for free. This
	// is the §4.4 motivation.
	work := func(p browser.Profile) (time.Duration, Stats) {
		w, rt := newTestRuntime(p, Config{Timeslice: 2 * time.Millisecond})
		rt.Spawn("main", &spinner{steps: 600, stepCost: 25 * time.Microsecond})
		start := time.Now()
		rt.Start()
		if err := w.Loop.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start), rt.Stats()
	}
	chromeWall, chromeStats := work(browser.Chrome28)
	ie8Wall, ie8Stats := work(browser.IE8)
	if ie8Stats.Suspensions == 0 || chromeStats.Suspensions == 0 {
		t.Skip("workload too fast to suspend on this machine")
	}
	chromePerSuspend := chromeWall / time.Duration(chromeStats.Suspensions)
	ie8PerSuspend := ie8Wall / time.Duration(ie8Stats.Suspensions)
	if ie8PerSuspend <= chromePerSuspend {
		t.Errorf("IE8 per-suspend %v <= Chrome per-suspend %v; setTimeout clamp not modelled",
			ie8PerSuspend, chromePerSuspend)
	}
}

func TestThreadStateString(t *testing.T) {
	states := map[ThreadState]string{
		ReadyState: "ready", RunningState: "running",
		BlockedState: "blocked", TerminatedState: "terminated",
		ThreadState(99): "unknown",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestAdaptiveClockConvergesToTimeslice(t *testing.T) {
	// Run a long CPU-bound workload and verify each event-loop task
	// stays in the neighbourhood of the timeslice (no watchdog kills,
	// longest task well under 10x the slice).
	p := browser.Chrome28
	p.WatchdogLimit = time.Second
	w, rt := newTestRuntime(p, Config{Timeslice: 5 * time.Millisecond})
	rt.Spawn("main", &spinner{steps: 20000, stepCost: 10 * time.Microsecond})
	rt.Start()
	if err := w.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if longest := w.Loop.Stats().LongestTask; longest > 100*time.Millisecond {
		t.Errorf("LongestTask = %v; adaptive quantum failed to bound events", longest)
	}
}

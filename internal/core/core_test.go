package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"doppio/internal/eventloop"
)

// Event-loop option sets mirroring the browser profiles the runtime
// cares about (§4.4). The core package cannot import the browser
// package (browser sits above core), so tests drive the loop directly.
func ie10Opts() eventloop.Options {
	return eventloop.Options{HasSetImmediate: true, MinTimeoutDelay: 4 * time.Millisecond}
}

func chromeOpts() eventloop.Options {
	return eventloop.Options{MinTimeoutDelay: 4 * time.Millisecond}
}

func ie8Opts() eventloop.Options {
	return eventloop.Options{SyncPostMessage: true, MinTimeoutDelay: 16 * time.Millisecond}
}

// spinner is a CPU-bound resumable computation: it burns CPU in small
// steps, checking for suspension after each, exactly as a language
// implementation checks at call boundaries.
type spinner struct {
	steps, done int
	stepCost    time.Duration
}

func (s *spinner) Run(t *Thread) RunResult {
	for s.done < s.steps {
		spin(s.stepCost)
		s.done++
		if t.CheckSuspend() {
			return Yield
		}
	}
	return Done
}

func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func newTestRuntime(opts eventloop.Options, cfg Config) (*eventloop.Loop, *Runtime) {
	loop := eventloop.New(opts)
	return loop, NewRuntime(loop, cfg)
}

func TestMechanismSelection(t *testing.T) {
	cases := []struct {
		name string
		opts eventloop.Options
		want string
	}{
		{"ie10", ie10Opts(), "setImmediate"},
		{"chrome", chromeOpts(), "postMessage"},
		{"ie8", ie8Opts(), "setTimeout"}, // sync postMessage forces fallback (§4.4)
	}
	for _, c := range cases {
		_, rt := newTestRuntime(c.opts, Config{})
		if rt.Mechanism() != c.want {
			t.Errorf("%s: mechanism = %q, want %q", c.name, rt.Mechanism(), c.want)
		}
	}
}

func TestForceMechanism(t *testing.T) {
	_, rt := newTestRuntime(chromeOpts(), Config{ForceMechanism: "setTimeout"})
	if rt.Mechanism() != "setTimeout" {
		t.Errorf("mechanism = %q", rt.Mechanism())
	}
}

func TestSegmentationSurvivesWatchdog(t *testing.T) {
	// 300 ms of total CPU work under a 50 ms watchdog: only possible
	// if Doppio slices it into short events.
	opts := chromeOpts()
	opts.WatchdogLimit = 50 * time.Millisecond
	loop, rt := newTestRuntime(opts, Config{Timeslice: 5 * time.Millisecond})
	s := &spinner{steps: 3000, stepCost: 100 * time.Microsecond}
	rt.Spawn("main", s)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatalf("watchdog killed a segmented program: %v", err)
	}
	if s.done != s.steps {
		t.Errorf("done = %d, want %d", s.done, s.steps)
	}
	if rt.Stats().Suspensions == 0 {
		t.Error("program never suspended")
	}
}

func TestMonolithicEventIsKilled(t *testing.T) {
	// The same total work in one event must be killed — this is why
	// automatic event segmentation is required (§3.1).
	opts := chromeOpts()
	opts.WatchdogLimit = 50 * time.Millisecond
	loop := eventloop.New(opts)
	loop.Post("monolith", func() { spin(300 * time.Millisecond) })
	if _, ok := loop.Run().(*eventloop.WatchdogError); !ok {
		t.Fatal("monolithic long event survived the watchdog")
	}
}

func TestSuspensionTimeAccounted(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{Timeslice: 2 * time.Millisecond})
	rt.Spawn("main", &spinner{steps: 400, stepCost: 50 * time.Microsecond})
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Suspensions < 2 {
		t.Errorf("Suspensions = %d, want several", st.Suspensions)
	}
	if st.SuspendedTime <= 0 {
		t.Error("SuspendedTime not accounted")
	}
	if st.CPUTime <= 0 {
		t.Error("CPUTime not accounted")
	}
}

func TestMultithreadingInterleaves(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{Timeslice: time.Millisecond})
	var trace []string
	a := &spinner{steps: 400, stepCost: 30 * time.Microsecond}
	b := &spinner{steps: 400, stepCost: 30 * time.Microsecond}
	ta := rt.Spawn("a", a)
	tb := rt.Spawn("b", b)
	ta.Join(func() { trace = append(trace, "a-done") })
	tb.Join(func() { trace = append(trace, "b-done") })
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if a.done != 400 || b.done != 400 {
		t.Errorf("threads incomplete: a=%d b=%d", a.done, b.done)
	}
	if rt.Stats().ContextSwitches == 0 {
		t.Error("threads never interleaved")
	}
	if len(trace) != 2 {
		t.Errorf("join callbacks = %v", trace)
	}
}

// yielder runs for `rounds` slices, recording its tag into *order on
// each slice, then finishes. It yields cooperatively (never burns a
// full timeslice), which is how scheduling order becomes deterministic.
type yielder struct {
	tag    string
	rounds int
	order  *[]string
}

func (y *yielder) Run(t *Thread) RunResult {
	*y.order = append(*y.order, y.tag)
	y.rounds--
	if y.rounds > 0 {
		return Yield
	}
	return Done
}

func TestDeterministicRoundRobin(t *testing.T) {
	// Same-priority threads must rotate in strict spawn order: the run
	// queue is FIFO within a level.
	loop, rt := newTestRuntime(chromeOpts(), Config{AgingThreshold: -1})
	var order []string
	for _, tag := range []string{"a", "b", "c"} {
		rt.Spawn(tag, &yielder{tag: tag, rounds: 3, order: &order})
	}
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a b c a b c a b c"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("schedule = %q, want %q", got, want)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// With aging disabled, a higher-priority thread runs to completion
	// before a lower-priority one gets a single slice.
	loop, rt := newTestRuntime(chromeOpts(), Config{AgingThreshold: -1})
	var order []string
	lo := rt.Spawn("lo", &yielder{tag: "lo", rounds: 3, order: &order})
	hi := rt.Spawn("hi", &yielder{tag: "hi", rounds: 3, order: &order})
	lo.SetPriority(MinPriority)
	hi.SetPriority(MaxPriority)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	want := "hi hi hi lo lo lo"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("schedule = %q, want %q", got, want)
	}
	if lo.Priority() != MinPriority || hi.Priority() != MaxPriority {
		t.Errorf("priorities = %d, %d", lo.Priority(), hi.Priority())
	}
}

func TestSetPriorityClamps(t *testing.T) {
	_, rt := newTestRuntime(chromeOpts(), Config{})
	th := rt.Spawn("t", RunnableFunc(func(*Thread) RunResult { return Done }))
	th.SetPriority(99)
	if th.Priority() != MaxPriority {
		t.Errorf("priority = %d, want %d", th.Priority(), MaxPriority)
	}
	th.SetPriority(-5)
	if th.Priority() != MinPriority {
		t.Errorf("priority = %d, want %d", th.Priority(), MinPriority)
	}
}

func TestStarvationAging(t *testing.T) {
	// A low-priority thread waiting at its level's head must preempt
	// the high-priority level after AgingThreshold scheduling decisions,
	// instead of starving until the high-priority thread exits.
	loop, rt := newTestRuntime(chromeOpts(), Config{AgingThreshold: 4})
	var order []string
	lo := rt.Spawn("lo", &yielder{tag: "lo", rounds: 2, order: &order})
	rt.Spawn("hi", &yielder{tag: "hi", rounds: 40, order: &order}).SetPriority(MaxPriority)
	lo.SetPriority(MinPriority)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	first := -1
	for i, tag := range order {
		if tag == "lo" {
			first = i
			break
		}
	}
	if first == -1 {
		t.Fatal("low-priority thread starved: never ran")
	}
	if first > 10 {
		t.Errorf("low-priority thread first ran at slice %d, want aging to kick in by ~5", first)
	}
}

func TestKillMidBatch(t *testing.T) {
	// A thread killed by another thread in the same batch must never
	// run again, even though it was already queued.
	loop, rt := newTestRuntime(chromeOpts(), Config{BatchBudget: 50 * time.Millisecond})
	var victim *Thread
	victimRan := false
	rt.Spawn("killer", RunnableFunc(func(*Thread) RunResult {
		victim.Kill()
		return Done
	}))
	victim = rt.Spawn("victim", RunnableFunc(func(*Thread) RunResult {
		victimRan = true
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if victimRan {
		t.Error("killed thread ran")
	}
	if victim.State() != TerminatedState {
		t.Errorf("victim state = %v", victim.State())
	}
}

func TestBatchingReducesSuspensions(t *testing.T) {
	// The point of slice batching: many short timeslices share one §4.4
	// round trip. Same workload, same responsiveness bound, batching on
	// vs off.
	run := func(budget time.Duration) Stats {
		loop, rt := newTestRuntime(chromeOpts(), Config{
			Timeslice:   time.Millisecond,
			BatchBudget: budget,
		})
		for i := 0; i < 2; i++ {
			rt.Spawn("w", &spinner{steps: 300, stepCost: 50 * time.Microsecond})
		}
		rt.Start()
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
		return rt.Stats()
	}
	unbatched := run(-1)                  // one slice per macrotask
	batched := run(20 * time.Millisecond) // up to ~20 slices per macrotask
	if unbatched.MaxBatchSlices != 1 {
		t.Errorf("unbatched MaxBatchSlices = %d, want 1", unbatched.MaxBatchSlices)
	}
	if batched.MaxBatchSlices < 2 {
		t.Errorf("batched MaxBatchSlices = %d, want > 1", batched.MaxBatchSlices)
	}
	if batched.Batches == 0 {
		t.Error("Batches not accounted")
	}
	if unbatched.Suspensions < 4*batched.Suspensions {
		t.Errorf("batching did not reduce suspensions: %d unbatched vs %d batched",
			unbatched.Suspensions, batched.Suspensions)
	}
}

func TestBatchRespectsBudget(t *testing.T) {
	// Regression: a batch must stop near its responsiveness budget — a
	// macrotask must never grow with the amount of pending work. The
	// watchdog is the arbiter: 300 ms of CPU under a 50 ms limit with a
	// 10 ms budget must survive.
	opts := chromeOpts()
	opts.WatchdogLimit = 50 * time.Millisecond
	loop, rt := newTestRuntime(opts, Config{
		Timeslice:   2 * time.Millisecond,
		BatchBudget: 10 * time.Millisecond,
	})
	for i := 0; i < 4; i++ {
		rt.Spawn("w", &spinner{steps: 750, stepCost: 100 * time.Microsecond})
	}
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatalf("batch overran the responsiveness budget: %v", err)
	}
	if lt := loop.Stats().LongestTask; lt > 40*time.Millisecond {
		t.Errorf("LongestTask = %v, want well under the watchdog limit", lt)
	}
	if rt.Stats().Batches == 0 {
		t.Error("no batches recorded")
	}
}

// blocker exercises the §4.2 sync-over-async bridge: it "calls" an
// asynchronous API and continues with the result as if the call had
// been synchronous.
type blocker struct {
	loop   *eventloop.Loop
	phase  int
	result []byte
}

func (b *blocker) Run(t *Thread) RunResult {
	switch b.phase {
	case 0:
		b.phase = 1
		if t.AsyncCall("idb-get", func(done func()) {
			b.loop.SetTimeout(func() {
				b.result = []byte("hello")
				done()
			}, time.Millisecond)
		}) {
			return Block
		}
		return Done
	default:
		return Done
	}
}

func TestBlockingOnAsyncAPI(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	bl := &blocker{loop: loop}
	rt.Spawn("main", bl)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if string(bl.result) != "hello" {
		t.Errorf("result = %q", bl.result)
	}
}

// sleeper sleeps once and finishes.
type sleeper struct {
	d     time.Duration
	slept bool
	woke  time.Time
}

func (s *sleeper) Run(t *Thread) RunResult {
	if !s.slept {
		s.slept = true
		t.Sleep(s.d)
		return Block
	}
	s.woke = time.Now()
	return Done
}

func TestSleep(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	s := &sleeper{d: 20 * time.Millisecond}
	start := time.Now()
	rt.Spawn("sleeper", s)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.woke.Sub(start); got < 20*time.Millisecond {
		t.Errorf("woke after %v, want >= 20ms", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	rt.Spawn("stuck", RunnableFunc(func(t *Thread) RunResult {
		t.Block("never-resumed")
		return Block
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	dead := rt.DeadlockedThreads()
	if len(dead) != 1 || dead[0].Name != "stuck" {
		t.Errorf("DeadlockedThreads = %v", dead)
	}
}

func TestDeadlockReportCarriesLabels(t *testing.T) {
	// Deadlock reports must name the completion each thread is stuck
	// on, so "worker#2 on monitorenter:Queue"-style diagnostics work.
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	rt.Spawn("stuck", RunnableFunc(func(th *Thread) RunResult {
		c := NewCompletion(loop, "monitorenter:Queue")
		c.Await(th)
		return Block
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	report := rt.DeadlockReport()
	if !strings.Contains(report, "stuck#1 on monitorenter:Queue") {
		t.Errorf("DeadlockReport() = %q, want thread and completion label", report)
	}
	if got := rt.DeadlockedThreads()[0].BlockedOn(); got != "monitorenter:Queue" {
		t.Errorf("BlockedOn() = %q", got)
	}
}

func TestOnIdle(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	idle := false
	rt.OnIdle(func() { idle = true })
	rt.Spawn("main", &spinner{steps: 10, stepCost: time.Microsecond})
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !idle {
		t.Error("OnIdle never fired")
	}
}

func TestDoubleResumePanics(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	var resume func()
	rt.Spawn("main", RunnableFunc(func(th *Thread) RunResult {
		if resume == nil {
			resume = th.Block("test")
			loop.Post("kick", resume)
			return Block
		}
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second resume did not panic")
		}
	}()
	resume()
}

func TestKill(t *testing.T) {
	loop, rt := newTestRuntime(chromeOpts(), Config{Timeslice: time.Millisecond})
	s := &spinner{steps: 1_000_000, stepCost: 10 * time.Microsecond}
	th := rt.Spawn("victim", s)
	// Kill it after a few slices.
	loop.SetTimeout(func() { th.Kill() }, 10*time.Millisecond)
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if th.State() != TerminatedState {
		t.Errorf("state = %v", th.State())
	}
	if s.done == s.steps {
		t.Error("victim ran to completion despite Kill")
	}
}

func TestIE8SetTimeoutSuspendIsSlow(t *testing.T) {
	// On IE8 every suspension pays the 16 ms setTimeout clamp; the same
	// workload on Chrome (postMessage) suspends nearly for free. This
	// is the §4.4 motivation. Batching is disabled so each slice pays
	// the mechanism.
	work := func(opts eventloop.Options) (time.Duration, Stats) {
		loop, rt := newTestRuntime(opts, Config{Timeslice: 2 * time.Millisecond, BatchBudget: -1})
		rt.Spawn("main", &spinner{steps: 600, stepCost: 25 * time.Microsecond})
		start := time.Now()
		rt.Start()
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start), rt.Stats()
	}
	chromeWall, chromeStats := work(chromeOpts())
	ie8Wall, ie8Stats := work(ie8Opts())
	if ie8Stats.Suspensions == 0 || chromeStats.Suspensions == 0 {
		t.Skip("workload too fast to suspend on this machine")
	}
	chromePerSuspend := chromeWall / time.Duration(chromeStats.Suspensions)
	ie8PerSuspend := ie8Wall / time.Duration(ie8Stats.Suspensions)
	if ie8PerSuspend <= chromePerSuspend {
		t.Errorf("IE8 per-suspend %v <= Chrome per-suspend %v; setTimeout clamp not modelled",
			ie8PerSuspend, chromePerSuspend)
	}
}

func TestThreadStateString(t *testing.T) {
	states := map[ThreadState]string{
		ReadyState: "ready", RunningState: "running",
		BlockedState: "blocked", TerminatedState: "terminated",
		ThreadState(99): "unknown",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestAdaptiveClockConvergesToTimeslice(t *testing.T) {
	// Run a long CPU-bound workload and verify each event-loop task
	// stays in the neighbourhood of the timeslice (no watchdog kills,
	// longest task well under 10x the slice).
	opts := chromeOpts()
	opts.WatchdogLimit = time.Second
	loop, rt := newTestRuntime(opts, Config{Timeslice: 5 * time.Millisecond})
	rt.Spawn("main", &spinner{steps: 20000, stepCost: 10 * time.Microsecond})
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if longest := loop.Stats().LongestTask; longest > 100*time.Millisecond {
		t.Errorf("LongestTask = %v; adaptive quantum failed to bound events", longest)
	}
}

// TestStarvationAgingAtFleetDepth is the aging property at hosting
// scale: 64 minimum-priority tenants behind 4 max-priority hogs. With
// aging armed, the low-priority queue's head must keep preempting, so
// every tenant gets its first slice while the hogs are still running
// — none may be pushed to the end of the schedule.
func TestStarvationAgingAtFleetDepth(t *testing.T) {
	const (
		hogs      = 4
		hogRounds = 200
		tenants   = 64
	)
	loop, rt := newTestRuntime(chromeOpts(), Config{AgingThreshold: 8})
	var order []string
	for i := 0; i < hogs; i++ {
		rt.Spawn(fmt.Sprintf("hog-%d", i),
			&yielder{tag: "hog", rounds: hogRounds, order: &order}).SetPriority(MaxPriority)
	}
	for i := 0; i < tenants; i++ {
		rt.Spawn(fmt.Sprintf("tenant-%d", i),
			&yielder{tag: fmt.Sprintf("t%02d", i), rounds: 1, order: &order}).SetPriority(MinPriority)
	}
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}

	first := make(map[string]int, tenants)
	for i, tag := range order {
		if tag != "hog" {
			if _, ok := first[tag]; !ok {
				first[tag] = i
			}
		}
	}
	if len(first) != tenants {
		t.Fatalf("only %d of %d tenants ever ran", len(first), tenants)
	}
	hogTotal := hogs * hogRounds
	maxFirst := 0
	for _, i := range first {
		if i > maxFirst {
			maxFirst = i
		}
	}
	// Without aging every tenant's first slice would land after all
	// hogTotal hog slices. With threshold 8, one tenant is promoted
	// roughly every 8 picks, so even the last tenant must first-run
	// well inside the hogs' span.
	if maxFirst >= hogTotal {
		t.Errorf("slowest tenant first ran at slice %d, after the hogs' %d slices — starved",
			maxFirst, hogTotal)
	}
	if want := tenants * 16; maxFirst > want {
		t.Errorf("slowest tenant first ran at slice %d, want aging to fit all within ~%d",
			maxFirst, want)
	}
}

package core

import "time"

// Thread is one emulated thread: an entry in the paper's "thread pool"
// of saved call stacks (§4.3). The language implementation owns the
// actual stack representation; the Thread tracks scheduling state and
// provides the suspend/block primitives.
type Thread struct {
	rt       *Runtime
	ID       int
	Name     string
	runnable Runnable
	state    ThreadState
	clock    *suspendClock
	joiners  []func()

	// CPUTime is the total time this thread spent executing.
	CPUTime time.Duration

	// Data lets the language implementation attach its per-thread
	// state (e.g. the JVM thread object).
	Data interface{}
}

// State returns the thread's scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// CheckSuspend implements the §4.1 suspend check: the language
// implementation calls it periodically (e.g. at every method-call
// boundary); it returns true when the timeslice has expired and the
// Runnable should return Yield.
func (t *Thread) CheckSuspend() bool { return t.clock.check() }

// Block marks the thread blocked and returns the resume function that
// the eventual completion callback must invoke (from the event loop) to
// make the thread ready again. Calling resume more than once panics.
func (t *Thread) Block(reason string) (resume func()) {
	if t.state != RunningState {
		panic("core: Block called on a thread that is not running: " + t.state.String())
	}
	t.state = BlockedState
	fired := false
	return func() {
		if fired {
			panic("core: thread " + t.Name + " resumed twice (" + reason + ")")
		}
		fired = true
		if t.state != BlockedState {
			return // terminated while blocked (e.g. runtime shutdown)
		}
		t.state = ReadyState
		t.rt.ready = append(t.rt.ready, t)
		t.rt.queueTick(true)
	}
}

// Sleep blocks the thread for at least d using the browser timer; the
// Runnable must return Block after calling it.
func (t *Thread) Sleep(d time.Duration) {
	resume := t.Block("sleep")
	t.rt.loop.SetTimeout(resume, d)
}

// Join registers fn to run when the thread terminates; if it already
// has, fn runs immediately.
func (t *Thread) Join(fn func()) {
	if t.state == TerminatedState {
		fn()
		return
	}
	t.joiners = append(t.joiners, fn)
}

// Kill terminates a blocked or ready thread without running it again.
func (t *Thread) Kill() {
	switch t.state {
	case ReadyState:
		for i, r := range t.rt.ready {
			if r == t {
				t.rt.ready = append(t.rt.ready[:i], t.rt.ready[i+1:]...)
				break
			}
		}
	case TerminatedState:
		return
	}
	t.state = TerminatedState
	for _, j := range t.joiners {
		j()
	}
	t.joiners = nil
}

// AsyncCall implements §4.2's synchronous-over-asynchronous bridge for
// Runnables structured as state machines. launch must start the
// asynchronous browser operation and arrange for done to be called
// (on the event loop) with the result; the thread blocks until then.
// After resumption the language implementation reads the deposited
// result from wherever done stored it and continues as if the call had
// been synchronous.
func (t *Thread) AsyncCall(reason string, launch func(done func())) {
	resume := t.Block(reason)
	launch(func() { resume() })
}

package core

import "time"

// Thread is one emulated thread: an entry in the paper's "thread pool"
// of saved call stacks (§4.3). The language implementation owns the
// actual stack representation; the Thread tracks scheduling state and
// provides the suspend/block primitives.
type Thread struct {
	rt       *Runtime
	ID       int
	Name     string
	runnable Runnable
	state    ThreadState
	clock    *suspendClock
	joiners  []func()

	// Run-queue linkage (intrusive doubly-linked list, one list per
	// priority level) — owned by runQueue.
	prio    int
	qprev   *Thread
	qnext   *Thread
	inQueue bool
	enqSeq  uint64

	// blockedOn labels the completion the thread is currently blocked
	// on; empty while not blocked.
	blockedOn string

	// CPUTime is the total time this thread spent executing.
	CPUTime time.Duration

	// lastSampleAt is the profiler's per-thread sampling cursor:
	// the time of the last CPU sample (reset at slice start so only
	// on-CPU time is attributed). Owned by Runtime.sample.
	lastSampleAt time.Time

	// Data lets the language implementation attach its per-thread
	// state (e.g. the JVM thread object).
	Data interface{}
}

// State returns the thread's scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Priority returns the thread's run-queue priority level (1 = lowest).
func (t *Thread) Priority() int { return t.prio }

// SetPriority moves the thread to priority level p (clamped to the
// runtime's configured range). A queued thread is re-enqueued at the
// tail of its new level; a running or blocked thread re-enters the
// queue at the new level when it next becomes ready.
func (t *Thread) SetPriority(p int) {
	p = t.rt.runq.clampPrio(p)
	if p == t.prio {
		return
	}
	if t.inQueue {
		t.rt.runq.remove(t)
		t.prio = p
		t.rt.runq.push(t)
		return
	}
	t.prio = p
}

// BlockedOn returns the label of the completion the thread is blocked
// on ("" when not blocked) — the per-completion tag deadlock reports
// carry.
func (t *Thread) BlockedOn() string { return t.blockedOn }

// CheckSuspend implements the §4.1 suspend check: the language
// implementation calls it periodically (e.g. at every method-call
// boundary); it returns true when the timeslice has expired and the
// Runnable should return Yield.
func (t *Thread) CheckSuspend() bool { return t.clock.check() }

// Block marks the thread blocked and returns the resume function that
// the eventual completion callback must invoke (from the event loop) to
// make the thread ready again. Calling resume more than once panics;
// Completion wraps this primitive with single-fire semantics for call
// sites where duplicate resolutions are legal.
func (t *Thread) Block(reason string) (resume func()) {
	if t.state != RunningState {
		panic("core: Block called on a thread that is not running: " + t.state.String())
	}
	t.state = BlockedState
	t.blockedOn = reason
	t.rt.flight().Record("comp", "block", reason, int64(t.ID))
	var blockedAt time.Time
	if t.rt.blockHook != nil {
		blockedAt = time.Now()
	}
	fired := false
	return func() {
		if fired {
			panic("core: thread " + t.Name + " resumed twice (" + reason + ")")
		}
		fired = true
		if t.state != BlockedState {
			return // terminated while blocked (e.g. runtime shutdown)
		}
		if hook := t.rt.blockHook; hook != nil && !blockedAt.IsZero() {
			// The guest stack has not moved since the block, so the
			// contention profile attributes the wait to its call site.
			hook(t, reason, time.Since(blockedAt))
		}
		t.rt.flight().Record("comp", "settle", reason, int64(t.ID))
		t.state = ReadyState
		t.blockedOn = ""
		t.rt.runq.push(t)
		t.rt.queueTick(true)
	}
}

// Sleep blocks the thread for at least d using the browser timer; the
// Runnable must return Block after calling it.
func (t *Thread) Sleep(d time.Duration) {
	c := NewCompletion(t.rt.loop, "core.sleep")
	t.rt.loop.SetTimeout(func() { c.Resolve(nil, nil) }, d)
	c.Await(t)
}

// Join registers fn to run when the thread terminates; if it already
// has, fn runs immediately.
func (t *Thread) Join(fn func()) {
	if t.state == TerminatedState {
		fn()
		return
	}
	t.joiners = append(t.joiners, fn)
}

// Kill terminates a blocked or ready thread without running it again.
// Removing a queued thread is O(1) thanks to the intrusive run-queue
// links.
func (t *Thread) Kill() {
	switch t.state {
	case ReadyState:
		t.rt.runq.remove(t)
	case TerminatedState:
		return
	}
	t.state = TerminatedState
	t.blockedOn = ""
	for _, j := range t.joiners {
		j()
	}
	t.joiners = nil
}

// AsyncCall implements §4.2's synchronous-over-asynchronous bridge for
// Runnables structured as state machines: launch must start the
// asynchronous browser operation and arrange for done to be called
// (on the event loop) with the result. It reports whether the thread
// actually blocked — true means the Runnable must return Block; false
// means the operation completed synchronously and execution can
// continue. After resumption the language implementation reads the
// deposited result from wherever done stored it and continues as if
// the call had been synchronous.
func (t *Thread) AsyncCall(reason string, launch func(done func())) bool {
	c := NewCompletion(t.rt.loop, reason)
	launch(func() { c.Resolve(nil, nil) })
	return c.Await(t)
}

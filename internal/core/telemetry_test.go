package core

import (
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/telemetry"
)

func TestRuntimeTelemetry(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(hub)
	rt := NewRuntime(win, Config{Timeslice: time.Millisecond})

	const yields = 5
	n := 0
	rt.Spawn("worker", RunnableFunc(func(th *Thread) RunResult {
		n++
		if n < yields {
			return Yield
		}
		return Done
	}))
	rt.Start()
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}

	reg := hub.Registry
	if got := reg.Counter("core", "suspensions").Value(); got < yields-1 {
		t.Errorf("suspensions = %d, want >= %d", got, yields-1)
	}
	if got := reg.Histogram("core", "yield_latency").Count(); got < yields-1 {
		t.Errorf("yield_latency count = %d, want >= %d", got, yields-1)
	}
	if got := reg.Histogram("core", "timeslice").Count(); got != yields {
		t.Errorf("timeslice count = %d, want %d", got, yields)
	}
	if got := reg.Gauge("core", "suspend_quantum").Value(); got <= 0 {
		t.Errorf("suspend_quantum = %d, want > 0", got)
	}

	// The thread's timeslices must show up as spans on its own track,
	// with a thread_name metadata record.
	spans, named := 0, false
	tid := coreThreadTID(1)
	for _, ev := range hub.Tracer.Events() {
		if ev.TID != tid {
			continue
		}
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			named = true
		}
	}
	if spans != yields {
		t.Errorf("thread spans = %d, want %d", spans, yields)
	}
	if !named {
		t.Error("missing thread_name metadata for doppio thread track")
	}
}

func TestRuntimeTelemetryContextSwitches(t *testing.T) {
	hub := telemetry.NewHub()
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(hub)
	rt := NewRuntime(win, Config{
		Timeslice: time.Millisecond,
		// Round-robin so the two threads interleave deterministically.
		Scheduler: func(ready []*Thread) *Thread { return ready[0] },
	})
	for i := 0; i < 2; i++ {
		n := 0
		rt.Spawn("t", RunnableFunc(func(th *Thread) RunResult {
			n++
			if n < 3 {
				return Yield
			}
			return Done
		}))
	}
	rt.Start()
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Registry.Counter("core", "context_switches").Value(); got == 0 {
		t.Error("context_switches = 0, want > 0")
	}
}

func TestRuntimeWithoutTelemetry(t *testing.T) {
	// A window with no hub must leave rt.tel nil and still run.
	win := browser.NewWindow(browser.Chrome28)
	rt := NewRuntime(win, Config{})
	if rt.tel != nil {
		t.Fatal("telemetry must be disabled by default")
	}
	done := false
	rt.Spawn("t", RunnableFunc(func(th *Thread) RunResult {
		done = true
		return Done
	}))
	rt.Start()
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread did not run")
	}
}

package core

import (
	"testing"
	"time"

	"doppio/internal/telemetry"
)

func TestRuntimeTelemetry(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	// Batching off so every yield pays (and therefore counts) a
	// suspension round trip.
	loop, rt := newTestRuntime(chromeOpts(), Config{
		Timeslice:   time.Millisecond,
		BatchBudget: -1,
		Telemetry:   hub,
	})

	const yields = 5
	n := 0
	rt.Spawn("worker", RunnableFunc(func(th *Thread) RunResult {
		n++
		if n < yields {
			return Yield
		}
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}

	reg := hub.Registry
	if got := reg.Counter("core", "suspensions").Value(); got < yields-1 {
		t.Errorf("suspensions = %d, want >= %d", got, yields-1)
	}
	if got := reg.Histogram("core", "yield_latency").Count(); got < yields-1 {
		t.Errorf("yield_latency count = %d, want >= %d", got, yields-1)
	}
	if got := reg.Histogram("core", "timeslice").Count(); got != yields {
		t.Errorf("timeslice count = %d, want %d", got, yields)
	}
	if got := reg.Gauge("core", "suspend_quantum").Value(); got <= 0 {
		t.Errorf("suspend_quantum = %d, want > 0", got)
	}

	// The thread's timeslices must show up as spans on its own track,
	// with a thread_name metadata record.
	spans, named := 0, false
	tid := coreThreadTID(1)
	for _, ev := range hub.Tracer.Events() {
		if ev.TID != tid {
			continue
		}
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			named = true
		}
	}
	if spans != yields {
		t.Errorf("thread spans = %d, want %d", spans, yields)
	}
	if !named {
		t.Error("missing thread_name metadata for doppio thread track")
	}
}

func TestRuntimeTelemetryBatching(t *testing.T) {
	hub := telemetry.NewHub()
	loop, rt := newTestRuntime(chromeOpts(), Config{
		Timeslice:   time.Millisecond,
		BatchBudget: 50 * time.Millisecond,
		Telemetry:   hub,
	})
	for i := 0; i < 3; i++ {
		n := 0
		rt.Spawn("w", RunnableFunc(func(th *Thread) RunResult {
			n++
			if n < 4 {
				return Yield
			}
			return Done
		}))
	}
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	reg := hub.Registry
	batches := reg.Histogram("core", "batch_slices")
	if batches.Count() == 0 {
		t.Fatal("batch_slices never observed")
	}
	// 3 threads x 4 slices inside a 50 ms budget: the first batch packs
	// everything, so the per-batch slice count must exceed 1.
	if got := batches.Stats().Max; got < 2 {
		t.Errorf("batch_slices max = %d, want > 1", got)
	}
	if got := reg.Gauge("core", "runq_depth_max").Value(); got < 2 {
		t.Errorf("runq_depth_max = %d, want >= 2", got)
	}
	if got := reg.Gauge("core", "runq_depth").Value(); got != 0 {
		t.Errorf("runq_depth after drain = %d, want 0", got)
	}
}

func TestRuntimeTelemetryContextSwitches(t *testing.T) {
	hub := telemetry.NewHub()
	// Two same-priority threads round-robin deterministically.
	loop, rt := newTestRuntime(chromeOpts(), Config{
		Timeslice: time.Millisecond,
		Telemetry: hub,
	})
	for i := 0; i < 2; i++ {
		n := 0
		rt.Spawn("t", RunnableFunc(func(th *Thread) RunResult {
			n++
			if n < 3 {
				return Yield
			}
			return Done
		}))
	}
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Registry.Counter("core", "context_switches").Value(); got == 0 {
		t.Error("context_switches = 0, want > 0")
	}
}

func TestRuntimeWithoutTelemetry(t *testing.T) {
	// A runtime with no hub must leave rt.tel nil and still run.
	loop, rt := newTestRuntime(chromeOpts(), Config{})
	if rt.tel != nil {
		t.Fatal("telemetry must be disabled by default")
	}
	done := false
	rt.Spawn("t", RunnableFunc(func(th *Thread) RunResult {
		done = true
		return Done
	}))
	rt.Start()
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread did not run")
	}
}

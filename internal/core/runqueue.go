package core

// runQueue is the scheduler's ready pool: one intrusive doubly-linked
// list per priority level (§4.3). Enqueue, dequeue and removal are all
// O(1) — the links live inside the Thread itself, so Kill of a ready
// thread never scans a slice. Within one level threads run round-robin
// (pop from the head, re-enqueue at the tail); across levels the
// highest-priority non-empty list wins, except that a lower-priority
// head left waiting for agingThreshold consecutive picks preempts once
// (starvation aging), which keeps low-priority threads live without
// giving up strict priority in the common case.
//
// Priorities are JVM-style: 1 is the lowest level, levels() the
// highest, and a larger number is more urgent.
type runQueue struct {
	levels []listHead
	size   int

	// seq counts pop() calls; each enqueue stamps the thread with the
	// current value, so (seq - enqSeq) is the number of scheduling
	// decisions a queued thread has sat through — the deterministic
	// "age" that starvation aging compares against agingThreshold.
	seq            uint64
	agingThreshold uint64 // 0 disables aging
}

type listHead struct {
	head, tail *Thread
}

func newRunQueue(levels int, aging uint64) *runQueue {
	return &runQueue{levels: make([]listHead, levels), agingThreshold: aging}
}

// numLevels returns the number of priority levels.
func (q *runQueue) numLevels() int { return len(q.levels) }

// clampPrio forces p into the valid 1..levels range.
func (q *runQueue) clampPrio(p int) int {
	if p < 1 {
		return 1
	}
	if p > len(q.levels) {
		return len(q.levels)
	}
	return p
}

// push appends t to the tail of its priority level's list.
func (q *runQueue) push(t *Thread) {
	if t.inQueue {
		panic("core: thread " + t.Name + " enqueued twice")
	}
	l := &q.levels[t.prio-1]
	t.inQueue = true
	t.enqSeq = q.seq
	t.qprev = l.tail
	t.qnext = nil
	if l.tail != nil {
		l.tail.qnext = t
	} else {
		l.head = t
	}
	l.tail = t
	q.size++
}

// remove unlinks t from its level in O(1); a no-op if t is not queued.
func (q *runQueue) remove(t *Thread) {
	if !t.inQueue {
		return
	}
	l := &q.levels[t.prio-1]
	if t.qprev != nil {
		t.qprev.qnext = t.qnext
	} else {
		l.head = t.qnext
	}
	if t.qnext != nil {
		t.qnext.qprev = t.qprev
	} else {
		l.tail = t.qprev
	}
	t.qprev, t.qnext = nil, nil
	t.inQueue = false
	q.size--
}

// pop removes and returns the next thread to run: the head of the
// highest non-empty priority level, unless some lower level's head has
// aged past agingThreshold, in which case the most-starved such head
// (smallest enqueue sequence) runs instead. Deterministic: no clocks,
// no randomness — only enqueue order and pick counts.
func (q *runQueue) pop() *Thread {
	if q.size == 0 {
		return nil
	}
	q.seq++
	var best *Thread    // head of the highest non-empty level
	var starved *Thread // most-starved aged head at a lower level
	for lvl := len(q.levels) - 1; lvl >= 0; lvl-- {
		h := q.levels[lvl].head
		if h == nil {
			continue
		}
		if best == nil {
			best = h
			if q.agingThreshold == 0 {
				break
			}
			continue
		}
		if q.seq-h.enqSeq >= q.agingThreshold && (starved == nil || h.enqSeq < starved.enqSeq) {
			starved = h
		}
	}
	pick := best
	if starved != nil {
		pick = starved
	}
	q.remove(pick)
	return pick
}

// depth returns the number of queued threads.
func (q *runQueue) depth() int { return q.size }

// levelDepths counts the queued threads per priority level (index 0 is
// priority 1, the least urgent) — post-mortem and /debug/threads data.
func (q *runQueue) levelDepths() []int {
	out := make([]int, len(q.levels))
	for lvl := range q.levels {
		for t := q.levels[lvl].head; t != nil; t = t.qnext {
			out[lvl]++
		}
	}
	return out
}

package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"doppio/internal/eventloop"
	"doppio/internal/vfs/retry"
)

// Completion is the runtime's single-fire carrier for the result of an
// asynchronous operation — the one choke point through which every
// blocking site (§4.2's synchronous-over-asynchronous bridge) goes.
//
// It encapsulates the ordering contract that subsystems previously
// hand-rolled out of Thread.Block + loop.AddPending / InvokeExternal /
// DonePending:
//
//   - Resolver() reserves the loop's pending slot *now*, so Run cannot
//     exit while the operation is in flight, and delivers the eventual
//     result as a macrotask labelled with the completion's label.
//   - Resolve settles the completion exactly once; later resolutions
//     (a late I/O result racing a deadline, a duplicate close event)
//     are ignored rather than panicking.
//   - Await parks the calling thread with the completion's label, so
//     blocked-thread accounting and deadlock reports name the
//     operation a thread is stuck on.
//   - WithDeadline arms a timer that settles the completion with a
//     *DeadlineError, which vfs.Classify maps to ETIMEDOUT — a
//     transient errno under the retry.Policy classification, so
//     deadline expiry is retryable where genuine failures are final.
//
// A Completion must be created and settled on the event-loop
// goroutine; only the function returned by Resolver may be called from
// other goroutines.
type Completion struct {
	loop  *eventloop.Loop
	label string

	settled bool
	value   interface{}
	err     error

	cbs    []func(v interface{}, err error)
	resume func()

	timerArmed bool
	timer      eventloop.TimerID
}

// NewCompletion creates an unsettled completion. The label names the
// operation in macrotask diagnostics, blocked-thread state, and
// deadlock reports.
func NewCompletion(loop *eventloop.Loop, label string) *Completion {
	return &Completion{loop: loop, label: label}
}

// Label returns the completion's operation label.
func (c *Completion) Label() string { return c.label }

// Settled reports whether the completion has a result.
func (c *Completion) Settled() bool { return c.settled }

// Value returns the settled result (nil before settlement).
func (c *Completion) Value() interface{} { return c.value }

// Err returns the settled error (nil before settlement).
func (c *Completion) Err() error { return c.err }

// Resolve settles the completion with a value and error, runs the
// registered callbacks, and resumes the awaiting thread, in that
// order. It must be called on the event-loop goroutine. The first call
// wins; later calls report false and change nothing.
func (c *Completion) Resolve(v interface{}, err error) bool {
	if c.settled {
		return false
	}
	c.settled = true
	c.value, c.err = v, err
	if c.timerArmed {
		c.timerArmed = false
		c.loop.ClearTimeout(c.timer)
	}
	cbs := c.cbs
	c.cbs = nil
	for _, cb := range cbs {
		cb(v, err)
	}
	if r := c.resume; r != nil {
		c.resume = nil
		r()
	}
	return true
}

// Resolver returns a settle function that is safe to call from any
// goroutine. The loop's pending count is incremented immediately —
// before the operation's goroutine even starts — so the event loop
// stays alive until the first call delivers the result as a macrotask
// (labelled with the completion's label) and releases the slot. As
// with Resolve, only the first call has any effect.
func (c *Completion) Resolver() func(v interface{}, err error) {
	c.loop.AddPending()
	var fired uint32
	return func(v interface{}, err error) {
		if !atomic.CompareAndSwapUint32(&fired, 0, 1) {
			return
		}
		c.loop.InvokeExternal(c.label, func() {
			defer c.loop.DonePending()
			c.Resolve(v, err)
		})
	}
}

// Then registers cb to run (on the event loop) when the completion
// settles; if it already has, cb runs immediately. Callbacks run in
// registration order, before any awaiting thread resumes, so a
// callback can deposit the result where the resumed thread will read
// it. Returns c for chaining.
func (c *Completion) Then(cb func(v interface{}, err error)) *Completion {
	if c.settled {
		cb(c.value, c.err)
		return c
	}
	c.cbs = append(c.cbs, cb)
	return c
}

// Await parks t until the completion settles and reports whether it
// actually blocked: false means the operation completed synchronously
// and the result is already readable — the caller continues without
// yielding; true means t is blocked on this completion (its label
// shows up in Thread.BlockedOn and deadlock reports) and the Runnable
// must return Block.
func (c *Completion) Await(t *Thread) bool {
	if c.settled {
		return false
	}
	c.resume = t.Block(c.label)
	return true
}

// WithDeadline arms a timer (subject to the browser's minimum-delay
// clamp) that settles the completion with a *DeadlineError after d. A
// real result arriving first clears the timer; the deadline firing
// first wins the single-fire race and the late result is dropped.
// Non-positive d is a no-op. Returns c for chaining.
func (c *Completion) WithDeadline(d time.Duration) *Completion {
	if c.settled || d <= 0 {
		return c
	}
	c.timerArmed = true
	c.timer = c.loop.SetTimeout(func() {
		c.timerArmed = false
		c.Resolve(nil, &DeadlineError{Label: c.label, After: d})
	}, d)
	return c
}

// WithPolicyDeadline arms WithDeadline from a retry policy's Deadline
// field, tying completion expiry to the same budget the retry layer
// enforces for backoff sequences.
func (c *Completion) WithPolicyDeadline(pol retry.Policy) *Completion {
	return c.WithDeadline(pol.Deadline)
}

// DeadlineError is the error a Completion settles with when its
// deadline fires first. It implements Timeout/Temporary so transport
// code — and vfs.Classify, which maps it to ETIMEDOUT — treats expiry
// as transient under the retry classification rather than final.
type DeadlineError struct {
	Label string
	After time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("core: completion %q deadline expired after %v", e.Label, e.After)
}

// Timeout marks the error as a timeout (net.Error convention).
func (e *DeadlineError) Timeout() bool { return true }

// Temporary marks the error as retryable.
func (e *DeadlineError) Temporary() bool { return true }

// After runs fn on the event loop after at least d of real time,
// holding the loop's pending slot for the duration — the scheduling
// primitive behind retry backoff and reconnect redial delays. Unlike
// loop.SetTimeout it uses a wall-clock timer off the loop, so the
// delay is not subject to the browser's minimum-delay clamp. The
// returned completion settles just before fn runs.
func After(loop *eventloop.Loop, label string, d time.Duration, fn func()) *Completion {
	c := NewCompletion(loop, label)
	c.Then(func(interface{}, error) { fn() })
	resolve := c.Resolver()
	if d <= 0 {
		// Nothing to wait for; still deliver through the loop so fn
		// runs as a macrotask like every other completion.
		resolve(nil, nil)
		return c
	}
	time.AfterFunc(d, func() { resolve(nil, nil) })
	return c
}

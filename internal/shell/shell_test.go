package shell_test

import (
	"bytes"
	"strings"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/proc"
	"doppio/internal/shell"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// newShell builds a kernel + shell on an in-memory VFS. Compiling the
// embedded userland (notably the MiniJava half) is the slow part, so
// tests share one shell where they can.
func newShell(t *testing.T) (*shell.Shell, *browser.Window, *bytes.Buffer) {
	t.Helper()
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(telemetry.NewHub().EnableFlight(0))
	k := proc.NewKernel(win, vfs.NewInMemory())
	var out bytes.Buffer
	sh, err := shell.New(k, &out)
	if err != nil {
		t.Fatal(err)
	}
	return sh, win, &out
}

// run executes one command line to completion and returns its status.
func run(t *testing.T, sh *shell.Shell, win *browser.Window, line string) int32 {
	t.Helper()
	var status int32 = -1
	fired := false
	win.Loop.Post("dsh-test", func() {
		sh.Run(line, func(code int32) {
			status = code
			fired = true
		})
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatalf("%q: loop: %v", line, err)
	}
	if !fired {
		t.Fatalf("%q: pipeline never completed", line)
	}
	return status
}

func TestEchoAndStatus(t *testing.T) {
	sh, win, out := newShell(t)
	if code := run(t, sh, win, `echo hello doppio world`); code != 0 {
		t.Fatalf("status = %d", code)
	}
	if got := out.String(); got != "hello doppio world\n" {
		t.Errorf("out = %q", got)
	}
}

func TestMinicPipelineSeqGrepWc(t *testing.T) {
	sh, win, out := newShell(t)
	// 1..20 contains "7" in 7 and 17.
	if code := run(t, sh, win, `seq 20 | grep 7 | wc`); code != 0 {
		t.Fatalf("status = %d", code)
	}
	if got := strings.TrimSpace(out.String()); got != "2 2 5" {
		t.Errorf("wc = %q, want \"2 2 5\" (2 lines, 2 words, 5 bytes)", got)
	}
}

// TestMixedJVMAndMinicPipeline is the acceptance pipeline: a MiniC
// cat feeding a JVM grep feeding a MiniC wc, bytes crossing two
// kernel pipes and two VM flavors.
func TestMixedJVMAndMinicPipeline(t *testing.T) {
	sh, win, out := newShell(t)
	if code := run(t, sh, win, `write /data.txt one seven two`); code != 0 {
		t.Fatalf("write status = %d", code)
	}
	run(t, sh, win, `write /more.txt seven eight`)
	out.Reset()

	// cat streams both files; jgrep (JVM) keeps lines containing
	// "seven"; wc (MiniC) counts 2 lines, 5 words, 26 bytes
	// ("one seven two\n" = 14 + "seven eight\n" = 12).
	if code := run(t, sh, win, `cat /data.txt /more.txt | jgrep seven | wc`); code != 0 {
		t.Fatalf("status = %d, out = %q", code, out.String())
	}
	if got := strings.TrimSpace(out.String()); got != "2 5 26" {
		t.Errorf("wc = %q, want \"2 5 26\"", got)
	}
}

func TestExitCodePropagatesFromLastStage(t *testing.T) {
	sh, win, _ := newShell(t)
	// grep with no match exits 1; the pipeline reports the last stage.
	if code := run(t, sh, win, `seq 3 | grep nope`); code != 1 {
		t.Errorf("no-match grep status = %d, want 1", code)
	}
	if code := run(t, sh, win, `seq 3 | jgrep nope`); code != 1 {
		t.Errorf("no-match jgrep status = %d, want 1", code)
	}
}

func TestRedirections(t *testing.T) {
	sh, win, out := newShell(t)
	if code := run(t, sh, win, `seq 1 3 > /nums.txt`); code != 0 {
		t.Fatalf("redirect out status = %d", code)
	}
	out.Reset()
	if code := run(t, sh, win, `jupper < /nums.txt`); code != 0 {
		t.Fatalf("redirect in status = %d", code)
	}
	if got := out.String(); got != "1\n2\n3\n" {
		t.Errorf("jupper out = %q", got)
	}
	out.Reset()
	if code := run(t, sh, win, `wc < /nums.txt > /counts.txt`); code != 0 {
		t.Fatalf("both redirects status = %d", code)
	}
	out.Reset()
	run(t, sh, win, `cat /counts.txt`)
	if got := strings.TrimSpace(out.String()); got != "3 3 6" {
		t.Errorf("counts = %q", got)
	}
}

func TestCommandNotFound(t *testing.T) {
	sh, win, out := newShell(t)
	if code := run(t, sh, win, `frobnicate | wc`); code != 127 {
		t.Errorf("status = %d, want 127", code)
	}
	if !strings.Contains(out.String(), "command not found") {
		t.Errorf("out = %q", out.String())
	}
}

func TestBuiltins(t *testing.T) {
	sh, win, out := newShell(t)
	run(t, sh, win, `pwd`)
	if got := out.String(); got != "/\n" {
		t.Errorf("pwd = %q", got)
	}
	out.Reset()
	run(t, sh, win, `write /d/x.txt hi`)
	if code := run(t, sh, win, `cd /d`); code != 0 {
		t.Skipf("cd unsupported on this backend: %s", out.String())
	}
	out.Reset()
	run(t, sh, win, `pwd`)
	if got := out.String(); got != "/d\n" {
		t.Errorf("pwd after cd = %q", got)
	}

	out.Reset()
	if code := run(t, sh, win, `exit 7`); code != 7 {
		t.Errorf("exit status = %d", code)
	}
	if exited, code := sh.Exited(); !exited || code != 7 {
		t.Errorf("Exited() = %v, %d", exited, code)
	}
}

// TestChildrenInheritCwd: children started after `cd` must resolve
// relative paths against the shell's working directory, not "/" —
// the spawn path passes the shell's cwd through proc.SpawnSpec.Cwd.
func TestChildrenInheritCwd(t *testing.T) {
	sh, win, out := newShell(t)
	run(t, sh, win, `write /d/data.txt seven words here`)
	if code := run(t, sh, win, `cd /d`); code != 0 {
		t.Skipf("cd unsupported on this backend: %s", out.String())
	}
	out.Reset()
	// Relative argv path: cat must find /d/data.txt as "data.txt".
	if code := run(t, sh, win, `cat data.txt`); code != 0 {
		t.Fatalf("cat data.txt after cd: status %d, out %q", code, out.String())
	}
	if got := out.String(); got != "seven words here\n" {
		t.Errorf("cat out = %q", got)
	}
	out.Reset()
	// Through a pipeline too — every stage inherits the cwd.
	if code := run(t, sh, win, `cat data.txt | wc`); code != 0 {
		t.Fatalf("cat | wc after cd: status %d, out %q", code, out.String())
	}
	if got := strings.TrimSpace(out.String()); got != "1 3 17" {
		t.Errorf("wc = %q, want \"1 3 17\"", got)
	}
}

// TestSigpipeTerminatesYes: `yes | wc` would never end if the writer
// ignored its broken pipe. wc sees EOF... never — so instead drive
// `yes` into a dead pipe: spawn the pipeline, kill the reader, and
// the writer must die of SIGPIPE (141), ending the pipeline.
func TestSigpipeTerminatesYes(t *testing.T) {
	sh, win, _ := newShell(t)
	var status int32 = -1
	fired := false
	win.Loop.Post("dsh-test", func() {
		sh.Run(`yes | grep nope`, func(code int32) {
			status = code
			fired = true
		})
		// grep never matches and never exits on its own; kill it once
		// the pipeline is rolling. yes then writes into a closed pipe
		// and dies of SIGPIPE.
		win.Loop.SetTimeout(func() {
			for _, p := range sh.K.Snapshot() {
				if p.Name == "grep" {
					sh.K.Kill(p.PID, proc.SIGKILL)
				}
			}
		}, 2)
	})
	if err := win.Loop.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("pipeline never completed")
	}
	// Last stage was SIGKILLed: 128+9.
	if status != proc.SIGKILL.ExitStatus() {
		t.Errorf("status = %d, want %d", status, proc.SIGKILL.ExitStatus())
	}
	// And nothing is left in the table.
	if rows := sh.K.Snapshot(); len(rows) != 0 {
		t.Errorf("process table not empty after pipeline: %+v", rows)
	}
}

// Package shell is dsh's engine: a small Unix shell over the proc
// kernel. It parses `a | b | c` pipelines with `<`/`>` redirections,
// spawns each stage as a process — MiniC stages on minic VMs, JVM
// stages on Doppio JVMs, mixed freely in one pipeline — bridges
// adjacent stages with kernel pipes, and waits for every stage with
// labelled Waitpid completions. The pipeline's status is its last
// stage's exit code, shell-style.
package shell

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"doppio/internal/jvm/rt"
	"doppio/internal/minic"
	"doppio/internal/proc"
	"doppio/internal/vfs"
)

// Shell holds the compiled userland and the shell's own VFS front end
// (cwd for builtins and redirections). All methods run on the
// kernel's event loop.
type Shell struct {
	K  *proc.Kernel
	FS *vfs.FS

	out      io.Writer
	progs    map[string]*minic.Program
	jvmMains map[string]string
	classes  map[string][]byte

	exitReq  bool
	exitCode int32
}

// New compiles the embedded userland (MiniC and MiniJava utilities)
// and binds the shell to a process kernel. out receives builtin
// output, error reports, and un-redirected pipeline stdout.
func New(k *proc.Kernel, out io.Writer) (*Shell, error) {
	s := &Shell{
		K:        k,
		FS:       k.NewFS(),
		out:      out,
		progs:    make(map[string]*minic.Program),
		jvmMains: make(map[string]string),
	}
	for name, src := range minicUtils {
		prog, err := minic.CompileC(src)
		if err != nil {
			return nil, fmt.Errorf("dsh: compile %s: %w", name, err)
		}
		s.progs[name] = prog
	}
	srcs := make(map[string]string)
	for name, u := range mjUtils {
		srcs[u.Main+".mj"] = u.Src
		s.jvmMains[name] = u.Main
	}
	classes, err := rt.CompileWith(srcs)
	if err != nil {
		return nil, fmt.Errorf("dsh: compile jvm userland: %w", err)
	}
	s.classes = classes
	return s, nil
}

// Exited reports whether the exit builtin ran, and its code.
func (s *Shell) Exited() (bool, int32) { return s.exitReq, s.exitCode }

// Commands lists every runnable command name, sorted — builtins
// first, then the userland.
func (s *Shell) Commands() []string {
	names := []string{"cd", "exit", "help", "kill", "ps", "pwd", "write"}
	for n := range s.progs {
		names = append(names, n)
	}
	for n := range s.jvmMains {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one command line and calls done with its status once
// every process it started has been waited for. Must be called on the
// event loop; done also runs there.
func (s *Shell) Run(line string, done func(status int32)) {
	stages, err := parseLine(line)
	if err != nil {
		fmt.Fprintf(s.out, "%v\n", err)
		done(2)
		return
	}
	if len(stages) == 0 {
		done(0)
		return
	}
	if len(stages) == 1 {
		if handled := s.runBuiltin(stages[0], done); handled {
			return
		}
	}
	s.runPipeline(stages, done)
}

// runBuiltin handles shell-resident commands; it reports false for
// names that belong to the spawned userland.
func (s *Shell) runBuiltin(st Stage, done func(int32)) bool {
	argv := st.Argv
	switch argv[0] {
	case "cd":
		dir := "/"
		if len(argv) > 1 {
			dir = argv[1]
		}
		s.FS.Chdir(dir, func(err error) {
			if err != nil {
				fmt.Fprintf(s.out, "cd: %v\n", err)
				done(1)
				return
			}
			done(0)
		})
	case "pwd":
		fmt.Fprintln(s.out, s.FS.Cwd())
		done(0)
	case "exit":
		code := 0
		if len(argv) > 1 {
			code, _ = strconv.Atoi(argv[1])
		}
		s.exitReq = true
		s.exitCode = int32(code)
		done(int32(code))
	case "ps":
		s.writePS()
		done(0)
	case "write":
		if len(argv) < 3 {
			fmt.Fprintln(s.out, "usage: write path word...")
			done(2)
			return true
		}
		data := strings.Join(argv[2:], " ") + "\n"
		s.FS.WriteFile(argv[1], []byte(data), func(err error) {
			if err != nil {
				fmt.Fprintf(s.out, "write: %v\n", err)
				done(1)
				return
			}
			done(0)
		})
	case "kill":
		s.runKill(argv, done)
	case "help":
		fmt.Fprintf(s.out, "commands: %s\n", strings.Join(s.Commands(), " "))
		fmt.Fprintln(s.out, "pipelines: a | b | c, with < in and > out redirections")
		done(0)
	default:
		return false
	}
	return true
}

func (s *Shell) writePS() {
	fmt.Fprintf(s.out, "%5s %5s %-10s %-8s %s\n", "PID", "PPID", "NAME", "STATE", "BLOCKED-ON")
	for _, p := range s.K.Snapshot() {
		fmt.Fprintf(s.out, "%5d %5d %-10s %-8s %s\n", p.PID, p.PPID, p.Name, p.State, p.Blocked)
	}
}

var killSigs = map[string]proc.Signal{
	"-INT": proc.SIGINT, "-KILL": proc.SIGKILL, "-PIPE": proc.SIGPIPE,
}

func (s *Shell) runKill(argv []string, done func(int32)) {
	sig := proc.SIGKILL
	args := argv[1:]
	if len(args) > 0 {
		if v, ok := killSigs[strings.ToUpper(args[0])]; ok {
			sig = v
			args = args[1:]
		}
	}
	if len(args) != 1 {
		fmt.Fprintln(s.out, "usage: kill [-INT|-KILL|-PIPE] pid")
		done(2)
		return
	}
	pid, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintf(s.out, "kill: bad pid %q\n", args[0])
		done(2)
		return
	}
	if err := s.K.Kill(int32(pid), sig); err != nil {
		fmt.Fprintf(s.out, "kill: %v\n", err)
		done(1)
		return
	}
	done(0)
}

// spawner resolves a command name to its VM flavor before anything is
// created, so "command not found" aborts the whole pipeline cleanly.
type spawner func(spec proc.SpawnSpec) (*proc.Process, error)

func (s *Shell) resolve(name string) (spawner, bool) {
	if prog, ok := s.progs[name]; ok {
		return func(spec proc.SpawnSpec) (*proc.Process, error) {
			return s.K.SpawnMinic(prog, spec)
		}, true
	}
	if main, ok := s.jvmMains[name]; ok {
		return func(spec proc.SpawnSpec) (*proc.Process, error) {
			return s.K.SpawnJVM(main, s.classes, spec)
		}, true
	}
	return nil, false
}

// runPipeline spawns every stage wired through kernel pipes, then
// waits for all of them; the pipeline status is the last stage's.
func (s *Shell) runPipeline(stages []Stage, done func(int32)) {
	n := len(stages)
	spawners := make([]spawner, n)
	for i, st := range stages {
		sp, ok := s.resolve(st.Argv[0])
		if !ok {
			fmt.Fprintf(s.out, "dsh: %s: command not found\n", st.Argv[0])
			done(127)
			return
		}
		spawners[i] = sp
	}

	pipes := make([]*proc.Pipe, n-1)
	for i := range pipes {
		pipes[i] = s.K.NewPipe(proc.DefaultPipeCap)
	}
	pids := make([]int32, 0, n)
	for i, st := range stages {
		spec := proc.SpawnSpec{
			Name:   st.Argv[0],
			Args:   st.Argv[1:],
			Cwd:    s.FS.Cwd(),
			Stderr: &proc.WriterStream{W: s.out},
		}
		switch {
		case i > 0:
			spec.Stdin = &proc.PipeReader{P: pipes[i-1]}
		case st.In != "":
			spec.Stdin = &proc.FileReader{FS: s.FS, Path: st.In}
		}
		switch {
		case i < n-1:
			spec.Stdout = &proc.PipeWriter{P: pipes[i]}
		case st.Out != "":
			spec.Stdout = &proc.FileWriter{FS: s.FS, Path: st.Out, OnErr: func(err error) {
				fmt.Fprintf(s.out, "dsh: %s: %v\n", st.Out, err)
			}}
		default:
			spec.Stdout = &proc.WriterStream{W: s.out}
		}
		p, err := spawners[i](spec)
		if err != nil {
			fmt.Fprintf(s.out, "dsh: %s: %v\n", st.Argv[0], err)
			// Tear down what already started; reap via waitpid so no
			// zombies outlive the failed pipeline.
			for _, pid := range pids {
				s.K.Kill(pid, proc.SIGKILL)
				s.K.Waitpid(nil, pid).Then(func(interface{}, error) {})
			}
			done(127)
			return
		}
		pids = append(pids, p.PID)
	}

	remaining := len(pids)
	var last int32
	for idx, pid := range pids {
		isLast := idx == len(pids)-1
		s.K.Waitpid(nil, pid).Then(func(v interface{}, err error) {
			code := int32(127)
			if err == nil {
				code = v.(int32)
			}
			if isLast {
				last = code
			}
			remaining--
			if remaining == 0 {
				done(last)
			}
		})
	}
}

package shell

// The shell's userland. MiniC sources compile to minic bytecode and
// run on minic VMs; MiniJava sources compile (with the bundled rt
// class library) to real class files and run on Doppio JVMs. A
// pipeline can mix the two freely — both ends of every pipe speak
// Completion.

// minicUtils are the C coreutils.
var minicUtils = map[string]string{
	"cat": `
int main() {
    char buf[512];
    char path[128];
    int n = argc();
    if (n > 1) {
        for (int i = 1; i < n; i++) {
            getarg(i, path, 128);
            if (exists(path) == 0) {
                puts("cat: ");
                puts(path);
                puts(": no such file\n");
                return 1;
            }
            char *data = readfile(path);
            puts(data);
        }
        return 0;
    }
    while (getline(buf, 512) >= 0) {
        puts(buf);
        putchar('\n');
    }
    return 0;
}`,

	"wc": `
int main() {
    char buf[512];
    int lines = 0;
    int words = 0;
    int bytes = 0;
    int n = getline(buf, 512);
    while (n >= 0) {
        lines = lines + 1;
        bytes = bytes + n + 1;
        int inword = 0;
        for (int i = 0; i < n; i++) {
            if (buf[i] == ' ' || buf[i] == 9) {
                inword = 0;
            } else {
                if (inword == 0) {
                    words = words + 1;
                    inword = 1;
                }
            }
        }
        n = getline(buf, 512);
    }
    putint(lines);
    putchar(' ');
    putint(words);
    putchar(' ');
    putint(bytes);
    putchar('\n');
    return 0;
}`,

	"grep": `
int match(char *s, char *pat) {
    int n = strlen(s);
    int m = strlen(pat);
    for (int i = 0; i + m <= n; i++) {
        int ok = 1;
        for (int j = 0; j < m; j++) {
            if (s[i + j] != pat[j]) {
                ok = 0;
            }
        }
        if (ok == 1) {
            return 1;
        }
    }
    return 0;
}
int main() {
    char buf[512];
    char pat[128];
    if (argc() < 2) {
        puts("usage: grep pattern\n");
        return 2;
    }
    getarg(1, pat, 128);
    int found = 0;
    while (getline(buf, 512) >= 0) {
        if (match(buf, pat) == 1) {
            puts(buf);
            putchar('\n');
            found = 1;
        }
    }
    if (found == 1) {
        return 0;
    }
    return 1;
}`,

	"seq": `
int main() {
    char a[32];
    int lo = 1;
    int hi = 10;
    int n = argc();
    if (n == 2) {
        getarg(1, a, 32);
        hi = atoi(a);
    }
    if (n >= 3) {
        getarg(1, a, 32);
        lo = atoi(a);
        getarg(2, a, 32);
        hi = atoi(a);
    }
    for (int i = lo; i <= hi; i++) {
        putint(i);
        putchar('\n');
    }
    return 0;
}`,

	"echo": `
int main() {
    char a[256];
    int n = argc();
    for (int i = 1; i < n; i++) {
        if (i > 1) {
            putchar(' ');
        }
        getarg(i, a, 256);
        puts(a);
    }
    putchar('\n');
    return 0;
}`,

	"yes": `
int main() {
    while (1 == 1) {
        if (puts("y\n") < 0) {
            return 0;
        }
    }
    return 0;
}`,
}

// mjUtils are the JVM coreutils: name → (main class, source). Both
// read System.in byte-wise through ConsoleIn, which the process layer
// feeds from the stage's stdin stream.
var mjUtils = map[string]struct {
	Main string
	Src  string
}{
	"jgrep": {"JGrep", `
public class JGrep {
    static int flush(StringBuilder b, String pat, int matched) {
        String line = b.toString();
        if (line.contains(pat)) {
            System.out.println(line);
            return 0;
        }
        return matched;
    }
    public static void main(String[] args) {
        if (args.length < 1) {
            System.out.println("usage: jgrep pattern");
            System.exit(2);
        }
        String pat = args[0];
        StringBuilder b = new StringBuilder();
        int matched = 1;
        int c = System.in.read();
        while (c >= 0) {
            if (c == '\n') {
                matched = flush(b, pat, matched);
                b = new StringBuilder();
            } else {
                b.append((char) c);
            }
            c = System.in.read();
        }
        if (b.length() > 0) {
            matched = flush(b, pat, matched);
        }
        System.exit(matched);
    }
}`},

	"jupper": {"JUpper", `
public class JUpper {
    public static void main(String[] args) {
        StringBuilder b = new StringBuilder();
        int c = System.in.read();
        while (c >= 0) {
            b.append((char) c);
            c = System.in.read();
        }
        System.out.print(b.toString().toUpperCase());
    }
}`},
}

package shell

import "fmt"

// Stage is one pipeline element: an argv plus optional redirections.
// Only the first stage may take `< file` and only the last `> file`;
// interior stages are fed by their neighbours' pipes.
type Stage struct {
	Argv []string
	In   string
	Out  string
}

// parseLine splits a command line into pipeline stages. The grammar is
// the dsh subset: words (double quotes group spaces), `|` between
// stages, `<`/`>` redirections. No globbing, no variables, no
// subshells — the point is the process plumbing, not the language.
func parseLine(line string) ([]Stage, error) {
	toks, err := tokenize(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, nil
	}
	var stages []Stage
	cur := Stage{}
	flush := func() error {
		if len(cur.Argv) == 0 {
			return fmt.Errorf("dsh: empty pipeline stage")
		}
		stages = append(stages, cur)
		cur = Stage{}
		return nil
	}
	for i := 0; i < len(toks); i++ {
		switch toks[i] {
		case "|":
			if err := flush(); err != nil {
				return nil, err
			}
		case "<", ">":
			op := toks[i]
			if i+1 >= len(toks) {
				return nil, fmt.Errorf("dsh: missing file after %q", op)
			}
			i++
			if op == "<" {
				cur.In = toks[i]
			} else {
				cur.Out = toks[i]
			}
		default:
			cur.Argv = append(cur.Argv, toks[i])
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for i, st := range stages {
		if st.In != "" && i != 0 {
			return nil, fmt.Errorf("dsh: `<` only on the first stage")
		}
		if st.Out != "" && i != len(stages)-1 {
			return nil, fmt.Errorf("dsh: `>` only on the last stage")
		}
	}
	return stages, nil
}

func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '|' || c == '<' || c == '>':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j == len(line) {
				return nil, fmt.Errorf("dsh: unterminated quote")
			}
			toks = append(toks, line[i+1:j])
			i = j + 1
		case c == '#':
			return toks, nil // comment to end of line
		default:
			j := i
			for j < len(line) {
				c := line[j]
				if c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
					c == '|' || c == '<' || c == '>' || c == '"' {
					break
				}
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

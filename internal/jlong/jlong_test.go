package jlong

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripInt64(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64,
		math.MaxInt32, math.MinInt32, 1 << 40, -(1 << 40), 0xDEADBEEF}
	for _, v := range cases {
		if got := FromInt64(v).Int64(); got != v {
			t.Errorf("FromInt64(%d).Int64() = %d", v, got)
		}
	}
}

func TestFromInt32SignExtension(t *testing.T) {
	if got := FromInt32(-1); got != NegOne {
		t.Errorf("FromInt32(-1) = %+v, want NegOne", got)
	}
	if got := FromInt32(-5).Int64(); got != -5 {
		t.Errorf("FromInt32(-5).Int64() = %d", got)
	}
	if got := FromInt32(7).Int64(); got != 7 {
		t.Errorf("FromInt32(7).Int64() = %d", got)
	}
}

func TestAddProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return FromInt64(a).Add(FromInt64(b)).Int64() == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return FromInt64(a).Sub(FromInt64(b)).Int64() == a-b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return FromInt64(a).Mul(FromInt64(b)).Int64() == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			return true
		}
		if a == math.MinInt64 && b == -1 {
			// Wraps, handled in TestDivEdgeCases.
			return true
		}
		return FromInt64(a).Div(FromInt64(b)).Int64() == a/b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRemProperty(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true
		}
		return FromInt64(a).Rem(FromInt64(b)).Int64() == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDivEdgeCases(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{math.MinInt64, -1, math.MinInt64}, // JVM wrap
		{math.MinInt64, 1, math.MinInt64},
		{math.MinInt64, math.MinInt64, 1},
		{math.MinInt64, 2, math.MinInt64 / 2},
		{math.MinInt64, -2, math.MinInt64 / -2},
		{math.MinInt64, 3, math.MinInt64 / 3},
		{math.MaxInt64, math.MinInt64, 0},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MaxInt64, 2, math.MaxInt64 / 2},
		{-7, 2, -3},
		{7, -2, -3},
		{-7, -2, 3},
		{1, math.MaxInt64, 0},
	}
	for _, c := range cases {
		if got := FromInt64(c.a).Div(FromInt64(c.b)).Int64(); got != c.want {
			t.Errorf("Div(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != ErrDivByZero {
			t.Errorf("recovered %v, want ErrDivByZero", r)
		}
	}()
	FromInt64(5).Div(Zero)
}

func TestShiftProperties(t *testing.T) {
	shl := func(a int64, n uint8) bool {
		return FromInt64(a).Shl(uint(n)).Int64() == a<<(n&63)
	}
	shr := func(a int64, n uint8) bool {
		return FromInt64(a).Shr(uint(n)).Int64() == a>>(n&63)
	}
	ushr := func(a int64, n uint8) bool {
		return FromInt64(a).Ushr(uint(n)).Int64() == int64(uint64(a)>>(n&63))
	}
	for name, f := range map[string]interface{}{"shl": shl, "shr": shr, "ushr": ushr} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBitwiseProperties(t *testing.T) {
	f := func(a, b int64) bool {
		la, lb := FromInt64(a), FromInt64(b)
		return la.And(lb).Int64() == a&b &&
			la.Or(lb).Int64() == a|b &&
			la.Xor(lb).Int64() == a^b &&
			la.Not().Int64() == ^a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpProperty(t *testing.T) {
	f := func(a, b int64) bool {
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return FromInt64(a).Cmp(FromInt64(b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegProperty(t *testing.T) {
	f := func(a int64) bool {
		return FromInt64(a).Neg().Int64() == -a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatConversions(t *testing.T) {
	cases := []struct {
		f    float64
		want int64
	}{
		{0, 0}, {1.5, 1}, {-1.5, -1}, {1e18, 1000000000000000000},
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e30, math.MaxInt64},
		{-1e30, math.MinInt64},
		{4294967296, 1 << 32},
		{-4294967297, -(1<<32 + 1)},
	}
	for _, c := range cases {
		if got := FromFloat64(c.f).Int64(); got != c.want {
			t.Errorf("FromFloat64(%g) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestFloat64RoundTripSmall(t *testing.T) {
	// Values below 2^53 round-trip exactly through float64.
	f := func(a int32, b uint16) bool {
		v := int64(a)*int64(b) + int64(b)
		return FromFloat64(FromInt64(v).Float64()).Int64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinFloat64(t *testing.T) {
	if got := Min.Float64(); got != -9.223372036854776e18 {
		t.Errorf("Min.Float64() = %g", got)
	}
}

func TestParseAndString(t *testing.T) {
	cases := []string{"0", "1", "-1", "9223372036854775807", "-9223372036854775808", "123456789012345"}
	for _, s := range cases {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if l.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, l.String())
		}
	}
	for _, bad := range []string{"", "-", "12a", "+"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestInt32Truncation(t *testing.T) {
	f := func(a int64) bool {
		return FromInt64(a).Int32() == int32(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSoftwareLongMul(b *testing.B) {
	x, y := FromInt64(0x123456789ABCDEF), FromInt64(0xFEDCBA987)
	for i := 0; i < b.N; i++ {
		x = x.Mul(y).Add(One)
	}
	sink = x
}

func BenchmarkNativeLongMul(b *testing.B) {
	x, y := int64(0x123456789ABCDEF), int64(0xFEDCBA987)
	for i := 0; i < b.N; i++ {
		x = x*y + 1
	}
	sinkI = x
}

var (
	sink  Long
	sinkI int64
)

// Package jlong implements 64-bit two's-complement integers in software,
// using a pair of 32-bit halves.
//
// The Doppio paper (§8, "Numeric support") notes that JavaScript has no
// 64-bit integer type, so DoppioJVM carries "a comprehensive software
// implementation of 64-bit integers" for the JVM long type, and that it
// is "extremely slow when compared to normal numeric operations". This
// package is a faithful port of that representation: every operation is
// carried out on 32-bit halves exactly as a JavaScript implementation
// must, so that the DoppioJVM engine pays the same algorithmic costs.
//
// The native baseline engine uses Go's int64 directly; the two agree bit
// for bit (see the property tests), which is what lets the benchmark
// comparison isolate representation cost.
package jlong

import (
	"fmt"
	"math"
)

// Long is a 64-bit two's-complement integer stored as two 32-bit halves.
// The zero value is the number 0.
type Long struct {
	// Hi holds bits 32..63, Lo holds bits 0..31. Both are stored as
	// uint32 bit patterns; the sign lives in Hi's top bit.
	Hi, Lo uint32
}

// Common constants.
var (
	Zero   = Long{0, 0}
	One    = Long{0, 1}
	NegOne = Long{0xFFFFFFFF, 0xFFFFFFFF}
	Min    = Long{0x80000000, 0} // -2^63
	Max    = Long{0x7FFFFFFF, 0xFFFFFFFF}
)

// FromInt64 converts a Go int64 to a Long.
func FromInt64(v int64) Long {
	u := uint64(v)
	return Long{Hi: uint32(u >> 32), Lo: uint32(u)}
}

// FromInt32 sign-extends a 32-bit integer into a Long (the JVM i2l
// instruction).
func FromInt32(v int32) Long {
	var hi uint32
	if v < 0 {
		hi = 0xFFFFFFFF
	}
	return Long{Hi: hi, Lo: uint32(v)}
}

// FromUint32 zero-extends a 32-bit pattern into a Long.
func FromUint32(v uint32) Long {
	return Long{Hi: 0, Lo: v}
}

// FromFloat64 converts a float64 to a Long using JVM d2l semantics:
// NaN maps to 0, values beyond the representable range saturate.
func FromFloat64(f float64) Long {
	switch {
	case math.IsNaN(f):
		return Zero
	case f >= 9.223372036854776e18: // >= 2^63
		return Max
	case f <= -9.223372036854776e18:
		return Min
	}
	neg := f < 0
	if neg {
		f = -f
	}
	f = math.Trunc(f)
	hi := uint32(math.Trunc(f / 4294967296.0))
	lo := uint32(math.Mod(f, 4294967296.0))
	l := Long{Hi: hi, Lo: lo}
	if neg {
		l = l.Neg()
	}
	return l
}

// Int64 converts the Long to a Go int64.
func (l Long) Int64() int64 {
	return int64(uint64(l.Hi)<<32 | uint64(l.Lo))
}

// Float64 converts the Long to the nearest float64 (the JVM l2d
// instruction). Large magnitudes lose precision exactly as in JS.
func (l Long) Float64() float64 {
	if l.IsNeg() {
		if l == Min {
			return -9.223372036854776e18
		}
		return -l.Neg().Float64()
	}
	return float64(l.Hi)*4294967296.0 + float64(l.Lo)
}

// Int32 truncates the Long to its low 32 bits (the JVM l2i instruction).
func (l Long) Int32() int32 { return int32(l.Lo) }

// IsZero reports whether the Long is zero.
func (l Long) IsZero() bool { return l.Hi == 0 && l.Lo == 0 }

// IsNeg reports whether the Long is negative.
func (l Long) IsNeg() bool { return l.Hi&0x80000000 != 0 }

// IsOdd reports whether the lowest bit is set.
func (l Long) IsOdd() bool { return l.Lo&1 == 1 }

// Neg returns the two's-complement negation.
func (l Long) Neg() Long {
	return l.Not().Add(One)
}

// Not returns the bitwise complement.
func (l Long) Not() Long {
	return Long{Hi: ^l.Hi, Lo: ^l.Lo}
}

// Add returns l + o, wrapping on overflow.
//
// The addition is performed on 16-bit limbs, exactly as a JavaScript
// implementation (which has no 32-bit carry flag) must do it.
func (l Long) Add(o Long) Long {
	a48 := l.Hi >> 16
	a32 := l.Hi & 0xFFFF
	a16 := l.Lo >> 16
	a00 := l.Lo & 0xFFFF

	b48 := o.Hi >> 16
	b32 := o.Hi & 0xFFFF
	b16 := o.Lo >> 16
	b00 := o.Lo & 0xFFFF

	c00 := a00 + b00
	c16 := a16 + b16 + c00>>16
	c00 &= 0xFFFF
	c32 := a32 + b32 + c16>>16
	c16 &= 0xFFFF
	c48 := (a48 + b48 + c32>>16) & 0xFFFF
	c32 &= 0xFFFF
	return Long{Hi: c48<<16 | c32, Lo: c16<<16 | c00}
}

// Sub returns l - o, wrapping on overflow.
func (l Long) Sub(o Long) Long { return l.Add(o.Neg()) }

// Mul returns l * o, wrapping on overflow, computed on 16-bit limbs.
func (l Long) Mul(o Long) Long {
	if l.IsZero() || o.IsZero() {
		return Zero
	}
	a48 := l.Hi >> 16
	a32 := l.Hi & 0xFFFF
	a16 := l.Lo >> 16
	a00 := l.Lo & 0xFFFF

	b48 := o.Hi >> 16
	b32 := o.Hi & 0xFFFF
	b16 := o.Lo >> 16
	b00 := o.Lo & 0xFFFF

	c00 := a00 * b00
	c16 := c00 >> 16
	c00 &= 0xFFFF
	c16 += a16 * b00
	c32 := c16 >> 16
	c16 &= 0xFFFF
	c16 += a00 * b16
	c32 += c16 >> 16
	c16 &= 0xFFFF
	c32 += a32 * b00
	c48 := c32 >> 16
	c32 &= 0xFFFF
	c32 += a16 * b16
	c48 += c32 >> 16
	c32 &= 0xFFFF
	c32 += a00 * b32
	c48 += c32 >> 16
	c32 &= 0xFFFF
	c48 += a48*b00 + a32*b16 + a16*b32 + a00*b48
	c48 &= 0xFFFF
	return Long{Hi: c48<<16 | c32, Lo: c16<<16 | c00}
}

// Div returns the quotient l / o truncated toward zero (JVM ldiv).
// Division by zero panics with ErrDivByZero; MinValue / -1 wraps to
// MinValue, matching the JVM.
func (l Long) Div(o Long) Long {
	if o.IsZero() {
		panic(ErrDivByZero)
	}
	if l.IsZero() {
		return Zero
	}
	if l == Min {
		if o == One || o == NegOne {
			return Min
		}
		if o == Min {
			return One
		}
		// |l| cannot be represented; peel one bit off, divide, refine.
		half := l.Shr(1)
		approx := half.Div(o).Shl(1)
		if approx.IsZero() {
			if o.IsNeg() {
				return One
			}
			return NegOne
		}
		rem := l.Sub(o.Mul(approx))
		return approx.Add(rem.Div(o))
	}
	if o == Min {
		return Zero
	}
	if l.IsNeg() {
		if o.IsNeg() {
			return l.Neg().Div(o.Neg())
		}
		return l.Neg().Div(o).Neg()
	}
	if o.IsNeg() {
		return l.Div(o.Neg()).Neg()
	}
	// Both operands positive: estimate with float math and correct,
	// exactly as the JS implementation does.
	res := Zero
	rem := l
	for rem.Cmp(o) >= 0 {
		approx := math.Max(1, math.Floor(rem.Float64()/o.Float64()))
		// Adjust the approximation downward until it is not too large.
		logf := math.Ceil(math.Log2(approx))
		var delta float64
		if logf <= 48 {
			delta = 1
		} else {
			delta = math.Pow(2, logf-48)
		}
		approxL := FromFloat64(approx)
		approxRem := approxL.Mul(o)
		for approxRem.IsNeg() || approxRem.Cmp(rem) > 0 {
			approx -= delta
			approxL = FromFloat64(approx)
			approxRem = approxL.Mul(o)
		}
		if approxL.IsZero() {
			approxL = One
		}
		res = res.Add(approxL)
		rem = rem.Sub(approxL.Mul(o))
	}
	return res
}

// Rem returns the remainder l % o (JVM lrem), with the sign of l.
func (l Long) Rem(o Long) Long {
	return l.Sub(l.Div(o).Mul(o))
}

// And returns the bitwise AND.
func (l Long) And(o Long) Long { return Long{Hi: l.Hi & o.Hi, Lo: l.Lo & o.Lo} }

// Or returns the bitwise OR.
func (l Long) Or(o Long) Long { return Long{Hi: l.Hi | o.Hi, Lo: l.Lo | o.Lo} }

// Xor returns the bitwise XOR.
func (l Long) Xor(o Long) Long { return Long{Hi: l.Hi ^ o.Hi, Lo: l.Lo ^ o.Lo} }

// Shl returns l << n. Only the low 6 bits of n are used (JVM lshl).
func (l Long) Shl(n uint) Long {
	n &= 63
	switch {
	case n == 0:
		return l
	case n < 32:
		return Long{Hi: l.Hi<<n | l.Lo>>(32-n), Lo: l.Lo << n}
	default:
		return Long{Hi: l.Lo << (n - 32), Lo: 0}
	}
}

// Shr returns the arithmetic right shift l >> n (JVM lshr).
func (l Long) Shr(n uint) Long {
	n &= 63
	switch {
	case n == 0:
		return l
	case n < 32:
		return Long{Hi: uint32(int32(l.Hi) >> n), Lo: l.Hi<<(32-n) | l.Lo>>n}
	default:
		return Long{Hi: uint32(int32(l.Hi) >> 31), Lo: uint32(int32(l.Hi) >> (n - 32))}
	}
}

// Ushr returns the logical right shift l >>> n (JVM lushr).
func (l Long) Ushr(n uint) Long {
	n &= 63
	switch {
	case n == 0:
		return l
	case n < 32:
		return Long{Hi: l.Hi >> n, Lo: l.Hi<<(32-n) | l.Lo>>n}
	case n == 32:
		return Long{Hi: 0, Lo: l.Hi}
	default:
		return Long{Hi: 0, Lo: l.Hi >> (n - 32)}
	}
}

// Cmp compares l and o as signed integers, returning -1, 0 or +1
// (the JVM lcmp instruction).
func (l Long) Cmp(o Long) int {
	if l == o {
		return 0
	}
	ln, on := l.IsNeg(), o.IsNeg()
	if ln && !on {
		return -1
	}
	if !ln && on {
		return 1
	}
	// Same sign: unsigned comparison of the raw halves decides.
	if l.Hi != o.Hi {
		if l.Hi < o.Hi {
			return -1
		}
		return 1
	}
	if l.Lo < o.Lo {
		return -1
	}
	return 1
}

// String renders the Long in decimal.
func (l Long) String() string {
	return fmt.Sprintf("%d", l.Int64())
}

// Parse parses a decimal string (with optional leading '-') into a Long.
func Parse(s string) (Long, error) {
	if s == "" {
		return Zero, fmt.Errorf("jlong: empty string")
	}
	neg := false
	i := 0
	if s[0] == '-' || s[0] == '+' {
		neg = s[0] == '-'
		i++
		if i == len(s) {
			return Zero, fmt.Errorf("jlong: invalid number %q", s)
		}
	}
	ten := FromInt32(10)
	acc := Zero
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return Zero, fmt.Errorf("jlong: invalid digit %q in %q", c, s)
		}
		acc = acc.Mul(ten).Add(FromInt32(int32(c - '0')))
	}
	if neg {
		acc = acc.Neg()
	}
	return acc, nil
}

// ErrDivByZero is the panic value raised on division by zero; the JVM
// engine recovers it and throws java/lang/ArithmeticException.
var ErrDivByZero = fmt.Errorf("jlong: division by zero")

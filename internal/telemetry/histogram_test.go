package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// within asserts |got-want| <= tol*want (relative tolerance).
func within(t *testing.T, label string, got, want int64, tol float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > tol*float64(want) {
		t.Errorf("%s: got %d, want %d ±%.0f%%", label, got, want, tol*100)
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	h := newHistogram()
	const n = 100_000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	within(t, "p50", h.Quantile(0.50), n/2, 0.10)
	within(t, "p95", h.Quantile(0.95), n*95/100, 0.10)
	within(t, "p99", h.Quantile(0.99), n*99/100, 0.10)
	s := h.Stats()
	if s.Min != 1 {
		t.Errorf("min = %d, want 1", s.Min)
	}
	if s.Max != n {
		t.Errorf("max = %d, want %d", s.Max, n)
	}
	within(t, "mean", s.Mean, (n+1)/2, 0.01)
}

func TestHistogramQuantilesExponential(t *testing.T) {
	// A latency-shaped distribution: compare bucket estimates against
	// the exact empirical quantiles of the same sample.
	rng := rand.New(rand.NewSource(42))
	h := newHistogram()
	sample := make([]int64, 50_000)
	for i := range sample {
		v := int64(rng.ExpFloat64() * float64(250*time.Microsecond))
		sample[i] = v
		h.Observe(v)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	exact := func(q float64) int64 {
		idx := int(q*float64(len(sample))) - 1
		if idx < 0 {
			idx = 0
		}
		return sample[idx]
	}
	within(t, "p50", h.Quantile(0.50), exact(0.50), 0.10)
	within(t, "p95", h.Quantile(0.95), exact(0.95), 0.10)
	within(t, "p99", h.Quantile(0.99), exact(0.99), 0.10)
}

func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram()
	h.Observe(12_345)
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		// With one sample, min/max clamping makes every quantile exact.
		if got := h.Quantile(q); got != 12_345 {
			t.Errorf("Quantile(%v) = %d, want 12345", q, got)
		}
	}
}

func TestHistogramSmallExactBuckets(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.99); got != 3 {
		t.Errorf("Quantile(0.99) = %d, want exactly 3 (unit bucket)", got)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 || h.Stats().Count != 0 {
		t.Errorf("empty histogram should report zeros, got %+v", h.Stats())
	}
	h.Observe(-5) // clamps to 0
	if s := h.Stats(); s.Min != 0 || s.Max != 0 || s.Count != 1 {
		t.Errorf("negative observation should clamp to 0: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram should be a no-op")
	}
}

func TestHistogramReset(t *testing.T) {
	h := newHistogram()
	h.Observe(1000)
	h.Reset()
	if s := h.Stats(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("after reset: %+v", s)
	}
	h.Observe(7)
	if s := h.Stats(); s.Min != 7 || s.Max != 7 {
		t.Errorf("min tracking broken after reset: %+v", s)
	}
}

func TestBucketLayoutContinuity(t *testing.T) {
	// Bucket bounds must tile the value space with no gaps or overlaps,
	// and bucketIndex must agree with the bounds.
	prevHi := int64(0)
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo = %d, want %d (gap/overlap)", i, lo, prevHi)
		}
		if hi <= lo && i != histNumBuckets-1 {
			t.Fatalf("bucket %d: empty range [%d,%d)", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if hi-1 > lo {
			if got := bucketIndex(hi - 1); got != i {
				t.Fatalf("bucketIndex(%d) = %d, want %d", hi-1, got, i)
			}
		}
		prevHi = hi
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(int64(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketSum int64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, workers*per)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Unix(0, 0)
	f.setClock(func() time.Time { return base })

	f.Record("sched", "batch", "", 3)
	f.RecordNote("vfs", "open", "/tmp/x", "ENOENT", 0)

	if got := f.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	if got := f.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("Events len = %d, want 2", len(evs))
	}
	if evs[0].Cat != "sched" || evs[0].Event != "batch" || evs[0].Arg != 3 {
		t.Fatalf("first event mismatch: %+v", evs[0])
	}
	if evs[1].Label != "/tmp/x" || evs[1].Note != "ENOENT" {
		t.Fatalf("second event mismatch: %+v", evs[1])
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seq mismatch: %d, %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record("sched", "batch", "", int64(i))
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := f.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4 (capacity)", len(evs))
	}
	for i, ev := range evs {
		want := int64(6 + i)
		if ev.Arg != want || ev.Seq != uint64(want) {
			t.Fatalf("event %d = %+v, want arg/seq %d", i, ev, want)
		}
	}
}

func TestFlightRecorderTail(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		f.Record("c", "e", "", int64(i))
	}
	tail := f.Tail(2)
	if len(tail) != 2 || tail[0].Arg != 3 || tail[1].Arg != 4 {
		t.Fatalf("Tail(2) = %+v, want args 3,4", tail)
	}
	// Asking for more than retained returns everything retained.
	if got := f.Tail(100); len(got) != 5 {
		t.Fatalf("Tail(100) len = %d, want 5", len(got))
	}
	if got := f.Tail(0); len(got) != 5 {
		t.Fatalf("Tail(0) len = %d, want 5", len(got))
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record("c", "e", "l", 1) // must not panic
	f.RecordNote("c", "e", "l", "n", 1)
	if f.Tail(5) != nil || f.Events() != nil {
		t.Fatal("nil recorder should return nil slices")
	}
	if f.Total() != 0 || f.Dropped() != 0 || f.Cap() != 0 {
		t.Fatal("nil recorder counters should be zero")
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Cap(); got != DefaultFlightCapacity {
		t.Fatalf("Cap = %d, want %d", got, DefaultFlightCapacity)
	}
	if got := NewFlightRecorder(-3).Cap(); got != DefaultFlightCapacity {
		t.Fatalf("Cap = %d, want %d", got, DefaultFlightCapacity)
	}
}

// TestFlightRecorderConcurrent exercises concurrent Record/Tail under
// the race detector.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record("c", "e", "worker", int64(g))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			f.Tail(16)
			f.Dropped()
		}
	}()
	wg.Wait()
	if got := f.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	// Seqs must be contiguous after concurrent writes.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFormatFlight(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Unix(1000, 0)
	n := 0
	f.setClock(func() time.Time { n++; return base.Add(time.Duration(n) * time.Millisecond) })
	f.RecordNote("vfs", "read", "/a/b", "EIO", 42)
	f.Record("comp", "block", "monitorenter:Queue", 2)

	text := FormatFlight(f.Events())
	for _, want := range []string{"vfs", "read", "/a/b", "[EIO]", "(42)", "comp", "block", "monitorenter:Queue"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, text)
		}
	}
	if got := FormatFlight(nil); !strings.Contains(got, "no events") {
		t.Fatalf("empty format = %q", got)
	}
}

func TestWriteFlightJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record("sock", "frame", "client->target", 128)
	var buf bytes.Buffer
	if err := WriteFlightJSON(&buf, f.Events()); err != nil {
		t.Fatal(err)
	}
	var out []FlightEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(out) != 1 || out[0].Cat != "sock" || out[0].Arg != 128 {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
	// nil events still produce a valid (empty) array.
	buf.Reset()
	if err := WriteFlightJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil events = %q, want []", buf.String())
	}
}

func TestHubEnableFlight(t *testing.T) {
	h := NewHub().EnableFlight(16)
	if h.Flight == nil || h.Flight.Cap() != 16 {
		t.Fatalf("EnableFlight did not attach a 16-slot recorder: %+v", h.Flight)
	}
	// A plain hub leaves Flight nil so hot paths pay only a nil check.
	if NewHub().Flight != nil {
		t.Fatal("NewHub should not attach a flight recorder")
	}
}

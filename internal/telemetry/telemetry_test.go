package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test", "hits")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestConcurrentRegistryLookup(t *testing.T) {
	// Concurrent get-or-create of the same metric must hand every
	// goroutine the same instance.
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("sub", "c").Inc()
				r.Histogram("sub", "h").Observe(int64(i))
				r.Gauge("sub", "g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("sub", "c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("sub", "h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	g.Add(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

func TestSnapshotSortedAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", "z").Add(2)
	r.Counter("a", "y").Add(1)
	r.Counter("a", "x").Add(3)
	r.Gauge("g", "depth").Set(7)
	r.Histogram("h", "lat").Observe(1500)

	s := r.Snapshot()
	order := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		order[i] = c.Subsystem + "/" + c.Name
	}
	want := []string{"a/x", "a/y", "b/z"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", order, want)
		}
	}
	if s.Histograms[0].Count != 1 || s.Histograms[0].Min != 1500 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms[0])
	}

	r.Reset()
	s = r.Snapshot()
	if len(s.Counters) != 3 {
		t.Fatalf("reset must keep metrics registered, got %d counters", len(s.Counters))
	}
	for _, c := range s.Counters {
		if c.Value != 0 {
			t.Fatalf("counter %s/%s = %d after reset", c.Subsystem, c.Name, c.Value)
		}
	}
	if s.Histograms[0].Count != 0 {
		t.Fatalf("histogram count = %d after reset", s.Histograms[0].Count)
	}
}

func TestSnapshotFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jvm", "op.iadd").Add(42)
	r.Gauge("core", "quantum").Set(512)
	h := r.Histogram("eventloop", "dispatch")
	for i := 0; i < 100; i++ {
		h.Observe(2_000_000) // 2ms
	}
	out := r.Snapshot().Format()
	for _, want := range []string{"jvm/op.iadd", "42", "core/quantum", "512", "eventloop/dispatch", "p95", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestHubDefaults(t *testing.T) {
	h := NewHub()
	if h.Registry == nil {
		t.Fatal("NewHub must create a registry")
	}
	if h.Tracer != nil {
		t.Fatal("tracing must be off by default")
	}
	h.EnableTracing()
	if h.Tracer == nil {
		t.Fatal("EnableTracing must attach a tracer")
	}
}

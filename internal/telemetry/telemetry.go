// Package telemetry is the runtime's observability subsystem: a
// zero-dependency metrics registry, a Chrome trace_event recorder, and
// the conventions the rest of the codebase uses to hook into both.
//
// The paper's evaluation is built on observing the system from the
// inside — event-loop responsiveness under load (§7.1.3), per-backend
// file system operation latency (Figure 6), and suspend/resume
// overhead (§7.1.1). This package generalizes those one-off
// measurements into three pillars:
//
//   - a metrics registry of lock-cheap counters, gauges, and log-scale
//     latency histograms (p50/p95/p99) keyed by subsystem,
//   - a trace-event recorder that emits Chrome trace_event JSON, so a
//     run opens directly in chrome://tracing or Perfetto, with one
//     track per emulated thread,
//   - profiling hooks: instrumented packages hold a nil pointer until
//     telemetry is enabled, so a disabled build adds zero allocations
//     and nothing but a nil check to hot paths.
//
// All metric mutation is safe for concurrent use; trace recording is
// mutex-serialized (tracing is expected to be enabled only when the
// cost is acceptable).
package telemetry

// Well-known trace track IDs (tids). Emulated threads of the core
// runtime use their positive thread IDs; these constants reserve
// tracks for the singleton actors.
const (
	// TIDEventLoop is the browser's single JavaScript thread.
	TIDEventLoop = 0
	// TIDNetwork is the socket layer's reader/writer pump.
	TIDNetwork = 900
)

// TIDCoreThread maps a core-runtime thread ID onto its trace track,
// offset past the reserved singleton tracks. Layers that run inside a
// core thread (e.g. the JVM interpreter) use the same mapping so their
// spans land on that thread's track.
func TIDCoreThread(id int) int { return 100 + id }

// Hub bundles the two telemetry sinks a subsystem may report into.
// A nil *Hub (or a Hub with a nil Tracer) disables the corresponding
// pillar; instrumented packages must tolerate both.
type Hub struct {
	// Registry collects counters, gauges, and histograms. Never nil on
	// a Hub built with NewHub.
	Registry *Registry
	// Tracer records trace events, or nil when tracing is off.
	Tracer *Tracer
	// Flight is the always-on event ring buffer, or nil when flight
	// recording is off. Instrumented packages hold this pointer and
	// call Record unconditionally (nil receiver is a no-op).
	Flight *FlightRecorder
	// MethodSpans opts into per-method-invocation trace spans in the
	// JVM interpreter. Off by default: a busy run produces millions of
	// invocations, which overwhelms trace viewers.
	MethodSpans bool
}

// NewHub creates a metrics-only hub.
func NewHub() *Hub {
	return &Hub{Registry: NewRegistry()}
}

// EnableTracing attaches a fresh Tracer and returns the hub. The
// tracer's event ring is bounded (DefaultTraceEventCap; adjust with
// Tracer.SetEventCap) and overflow is counted in the
// telemetry.trace_dropped counter.
func (h *Hub) EnableTracing() *Hub {
	h.Tracer = NewTracer()
	if h.Registry != nil {
		h.Tracer.SetDropCounter(h.Registry.Counter("telemetry", "trace_dropped"))
	}
	return h
}

// EnableFlight attaches a flight recorder retaining the last capacity
// events (DefaultFlightCapacity when non-positive) and returns the hub.
func (h *Hub) EnableFlight(capacity int) *Hub {
	h.Flight = NewFlightRecorder(capacity)
	return h
}

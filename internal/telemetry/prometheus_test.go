package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition bytes for a
// deterministic registry. Run with -update (shared with the trace
// golden test) after an intended format change.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("core", "context_switches").Add(42)
	r.Counter("vfs.osfs", "open-calls").Add(7) // '.' and '-' must fold to '_'
	r.Gauge("core", "runq_depth").Set(3)
	// A single-sample histogram: every quantile clamps to the one
	// observation, so the output is exact and stable.
	r.Histogram("vfs.osfs", "read").Observe(1_500_000) // 1.5ms
	r.Histogram("loop", "empty")                       // registered, never observed

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition format drifted from golden.\n-- got --\n%s\n-- want --\n%s", buf.Bytes(), want)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[[2]string]string{
		{"core", "slices"}:           "doppio_core_slices",
		{"vfs.osfs", "read"}:         "doppio_vfs_osfs_read",
		{"vfs-retry", "give ups"}:    "doppio_vfs_retry_give_ups",
		{"sockets", "bytes_in"}:      "doppio_sockets_bytes_in",
		{"jvm", "op/invokevirtual"}:  "doppio_jvm_op_invokevirtual",
		{"telemetry", "trace_drop—"}: "doppio_telemetry_trace_drop_",
	}
	for in, want := range cases {
		if got := promName(in[0], in[1]); got != want {
			t.Errorf("promName(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}

func TestPromSeconds(t *testing.T) {
	cases := map[int64]string{
		0:             "0.0",
		1:             "0.000000001",
		1_500_000:     "0.0015",
		1_000_000_000: "1.0",
		2_250_000_000: "2.25",
	}
	for ns, want := range cases {
		if got := promSeconds(ns); got != want {
			t.Errorf("promSeconds(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestHistogramEmptyQuantiles: every quantile of an empty histogram is
// 0, including through a nil receiver and through Stats.
func TestHistogramEmptyQuantiles(t *testing.T) {
	h := newHistogram()
	for _, q := range []float64{0.001, 0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if s := h.Stats(); s != (HistogramStats{}) {
		t.Errorf("empty Stats = %+v, want zero", s)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil Quantile = %d, want 0", got)
	}
}

// TestHistogramSingleSampleP99: with one observation every quantile —
// p99 included — must report exactly that observation (the min/max
// clamp, not a bucket midpoint).
func TestHistogramSingleSampleP99(t *testing.T) {
	for _, v := range []int64{1, 777, 123_456_789} {
		h := newHistogram()
		h.Observe(v)
		for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single-sample(%d) Quantile(%g) = %d, want %d", v, q, got, v)
			}
		}
		if s := h.Stats(); s.P99 != v || s.Min != v || s.Max != v || s.Count != 1 {
			t.Errorf("single-sample(%d) Stats = %+v", v, s)
		}
	}
}

// TestSnapshotDuringMutationRace hammers the registry from writer
// goroutines while snapshots (and Prometheus renders) run concurrently
// — the -race job's coverage for snapshot-during-mutation.
func TestSnapshotDuringMutationRace(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("race", "ops")
			g := r.Gauge("race", "depth")
			h := r.Histogram("race", "lat")
			for i := 0; ; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i % 1000))
				// Late registration while snapshots iterate the maps.
				if i%64 == 0 {
					r.Counter("race", string(rune('a'+w))).Inc()
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	var buf bytes.Buffer
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		buf.Reset()
		if err := s.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if s.Format() == "" {
			t.Fatal("empty format")
		}
	}
	close(stop)
	wg.Wait()
	if got := r.Counter("race", "ops").Value(); got == 0 {
		t.Fatal("writers never ran")
	}
}

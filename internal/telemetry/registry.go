package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous level (queue depth, adaptive quantum).
// The zero value is ready to use; all methods are safe for concurrent
// use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n is greater — a high-watermark.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if n <= old || g.v.CompareAndSwap(old, n) {
			return
		}
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// metricKey identifies a metric within the registry. The label is
// empty for plain process-wide metrics; multi-tenant hosts (the fleet
// supervisor) use it to attribute a metric to one tenant.
type metricKey struct {
	subsystem, name, label string
}

// Registry is the process-wide metric store: named counters, gauges,
// and histograms keyed by (subsystem, name). Lookup takes a mutex;
// instrumented hot paths should resolve their metrics once and hold
// the returned pointers, whose operations are lock-free atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[metricKey]*Counter),
		gauges:     make(map[metricKey]*Gauge),
		histograms: make(map[metricKey]*Histogram),
	}
}

// Counter returns the counter for (subsystem, name), creating it on
// first use.
func (r *Registry) Counter(subsystem, name string) *Counter {
	return r.LabeledCounter(subsystem, name, "")
}

// LabeledCounter returns the counter for (subsystem, name) attributed
// to label — a tenant name in fleet hosting — creating it on first
// use. An empty label is the plain Counter.
func (r *Registry) LabeledCounter(subsystem, name, label string) *Counter {
	k := metricKey{subsystem, name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for (subsystem, name), creating it on first
// use.
func (r *Registry) Gauge(subsystem, name string) *Gauge {
	return r.LabeledGauge(subsystem, name, "")
}

// LabeledGauge returns the gauge for (subsystem, name) attributed to
// label, creating it on first use. An empty label is the plain Gauge.
func (r *Registry) LabeledGauge(subsystem, name, label string) *Gauge {
	k := metricKey{subsystem, name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the latency histogram for (subsystem, name),
// creating it on first use.
func (r *Registry) Histogram(subsystem, name string) *Histogram {
	return r.LabeledHistogram(subsystem, name, "")
}

// LabeledHistogram returns the latency histogram for (subsystem,
// name) attributed to label, creating it on first use. An empty label
// is the plain Histogram.
func (r *Registry) LabeledHistogram(subsystem, name, label string) *Histogram {
	k := metricKey{subsystem, name, label}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[k]
	if !ok {
		h = newHistogram()
		r.histograms[k] = h
	}
	return h
}

// Unregister removes every metric attributed to label (metrics with
// an empty label are never removed). Fleet eviction reclaims a dead
// tenant's per-tenant series with it.
func (r *Registry) Unregister(label string) {
	if label == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.counters {
		if k.label == label {
			delete(r.counters, k)
		}
	}
	for k := range r.gauges {
		if k.label == label {
			delete(r.gauges, k)
		}
	}
	for k := range r.histograms {
		if k.label == label {
			delete(r.histograms, k)
		}
	}
}

// Reset zeroes every registered metric (the metrics stay registered).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// CounterValue is one counter in a snapshot. Label is empty for plain
// metrics, or the tenant the metric is attributed to.
type CounterValue struct {
	Subsystem, Name, Label string
	Value                  int64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Subsystem, Name, Label string
	Value                  int64
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Subsystem, Name, Label string
	HistogramStats
}

// Snapshot is a point-in-time copy of every metric, sorted by
// subsystem then name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot captures the current value of every metric. Individual
// metrics are read atomically; the snapshot as a whole is not a
// consistent cut across metrics (none of the consumers need one).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{k.subsystem, k.name, k.label, c.Value()})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{k.subsystem, k.name, k.label, g.Value()})
	}
	for k, h := range r.histograms {
		s.Histograms = append(s.Histograms, HistogramValue{k.subsystem, k.name, k.label, h.Stats()})
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		return metricLess(a.Subsystem, a.Name, a.Label, b.Subsystem, b.Name, b.Label)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		return metricLess(a.Subsystem, a.Name, a.Label, b.Subsystem, b.Name, b.Label)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		a, b := s.Histograms[i], s.Histograms[j]
		return metricLess(a.Subsystem, a.Name, a.Label, b.Subsystem, b.Name, b.Label)
	})
	return s
}

func metricLess(sa, na, la, sb, nb, lb string) bool {
	if sa != sb {
		return sa < sb
	}
	if na != nb {
		return na < nb
	}
	return la < lb
}

// metricName renders "subsystem/name" with a "{label}" suffix for
// labeled (per-tenant) series.
func metricName(subsystem, name, label string) string {
	s := subsystem + "/" + name
	if label != "" {
		s += "{" + label + "}"
	}
	return s
}

// Format renders the snapshot as a human-readable table (the -metrics
// output of doppio-bench and doppio-jvm).
func (s Snapshot) Format() string {
	var b strings.Builder
	b.WriteString("== telemetry metrics ==\n")
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-44s %12d\n", metricName(c.Subsystem, c.Name, c.Label), c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-44s %12d\n", metricName(g.Subsystem, g.Name, g.Label), g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("latency histograms:\n")
		fmt.Fprintf(&b, "  %-44s %9s %10s %10s %10s %10s %10s\n",
			"", "count", "mean", "p50", "p95", "p99", "max")
		for _, h := range s.Histograms {
			if h.Count == 0 {
				fmt.Fprintf(&b, "  %-44s %9d\n", metricName(h.Subsystem, h.Name, h.Label), 0)
				continue
			}
			fmt.Fprintf(&b, "  %-44s %9d %10s %10s %10s %10s %10s\n",
				metricName(h.Subsystem, h.Name, h.Label), h.Count,
				fmtNanos(h.Mean), fmtNanos(h.P50), fmtNanos(h.P95), fmtNanos(h.P99), fmtNanos(h.Max))
		}
	}
	return b.String()
}

// fmtNanos renders a nanosecond reading compactly.
func fmtNanos(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

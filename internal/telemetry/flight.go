package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// DefaultFlightCapacity is the ring size used when EnableFlight is
// given a non-positive capacity. At ~100 bytes per event the default
// window costs well under a megabyte.
const DefaultFlightCapacity = 4096

// FlightEvent is one entry of the flight recorder: a structured,
// fixed-shape record of something the runtime just did. Events carry
// no maps or nested structures so recording never allocates beyond
// the ring itself.
type FlightEvent struct {
	// Seq is the global record sequence number (monotonic, never
	// reset); gaps never occur, so Seq - oldest retained Seq tells a
	// reader how far back the window reaches.
	Seq uint64 `json:"seq"`
	// TS is the wall-clock capture time.
	TS time.Time `json:"ts"`
	// Cat is the emitting subsystem: "sched", "comp", "loop", "vfs",
	// "fault", "breaker", "sock".
	Cat string `json:"cat"`
	// Event names what happened within the category ("batch", "block",
	// "settle", "open", "inject", ...).
	Event string `json:"event"`
	// Label carries the operation's identity: a completion label, a
	// path, a peer address.
	Label string `json:"label,omitempty"`
	// Note carries a short outcome qualifier, typically an errno
	// string or fault kind; empty means success / not applicable.
	Note string `json:"note,omitempty"`
	// Arg is the event's numeric payload (slice count, byte count,
	// thread ID, ...); meaning depends on (Cat, Event).
	Arg int64 `json:"arg,omitempty"`
}

// FlightRecorder is a fixed-capacity ring buffer of recent runtime
// events — the black box every post-mortem report ends with. Recording
// is cheap (one short critical section, no allocation) and the ring
// overwrites the oldest entry when full, so an always-on recorder has
// bounded memory forever.
//
// Following the package's nil-hook convention, a nil *FlightRecorder
// is a valid no-op receiver: instrumented packages hold the (possibly
// nil) pointer from Hub.Flight and call Record unconditionally, so a
// build without flight recording pays only a nil check.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next uint64 // total events ever recorded; buf[(next-1)%cap] is newest
	now  func() time.Time
}

// NewFlightRecorder creates a recorder retaining the last capacity
// events (DefaultFlightCapacity when non-positive).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]FlightEvent, capacity), now: time.Now}
}

// setClock replaces the time source (tests only, before recording).
func (f *FlightRecorder) setClock(now func() time.Time) { f.now = now }

// Record appends an event to the ring, overwriting the oldest entry
// when the ring is full. Safe for concurrent use; a no-op on a nil
// recorder.
func (f *FlightRecorder) Record(cat, event, label string, arg int64) {
	f.RecordNote(cat, event, label, "", arg)
}

// RecordNote is Record with an outcome note (typically an errno string
// or fault kind).
func (f *FlightRecorder) RecordNote(cat, event, label, note string, arg int64) {
	if f == nil {
		return
	}
	at := f.now()
	f.mu.Lock()
	f.buf[f.next%uint64(len(f.buf))] = FlightEvent{
		Seq: f.next, TS: at,
		Cat: cat, Event: event, Label: label, Note: note, Arg: arg,
	}
	f.next++
	f.mu.Unlock()
}

// Cap returns the ring capacity (0 on a nil recorder).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// Total returns the number of events ever recorded.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Dropped returns how many events the ring has overwritten.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next <= uint64(len(f.buf)) {
		return 0
	}
	return f.next - uint64(len(f.buf))
}

// Tail returns a copy of the newest n retained events, oldest first.
// n <= 0 (or n larger than the retained window) returns everything
// retained. Returns nil on a nil recorder.
func (f *FlightRecorder) Tail(n int) []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	retained := f.next
	if retained > uint64(len(f.buf)) {
		retained = uint64(len(f.buf))
	}
	if n <= 0 || uint64(n) > retained {
		n = int(retained)
	}
	out := make([]FlightEvent, 0, n)
	for i := f.next - uint64(n); i < f.next; i++ {
		out = append(out, f.buf[i%uint64(len(f.buf))])
	}
	return out
}

// Events returns the full retained window, oldest first.
func (f *FlightRecorder) Events() []FlightEvent { return f.Tail(0) }

// FormatFlight renders events as a human-readable table, one line per
// event, oldest first — the form post-mortem reports and the ops
// server's /debug/flight endpoint print.
func FormatFlight(events []FlightEvent) string {
	var b strings.Builder
	b.WriteString("== flight recorder ==\n")
	if len(events) == 0 {
		b.WriteString("(no events recorded)\n")
		return b.String()
	}
	start := events[0].TS
	for _, ev := range events {
		fmt.Fprintf(&b, "%8d %+10.3fms %-8s %-12s", ev.Seq,
			float64(ev.TS.Sub(start).Microseconds())/1000, ev.Cat, ev.Event)
		if ev.Label != "" {
			fmt.Fprintf(&b, " %s", ev.Label)
		}
		if ev.Note != "" {
			fmt.Fprintf(&b, " [%s]", ev.Note)
		}
		if ev.Arg != 0 {
			fmt.Fprintf(&b, " (%d)", ev.Arg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFlightJSON serializes events as a JSON array.
func WriteFlightJSON(w io.Writer, events []FlightEvent) error {
	if events == nil {
		events = []FlightEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}

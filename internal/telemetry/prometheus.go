package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), the payload the ops server
// serves at /metrics.
//
// Mapping conventions:
//   - metric names are doppio_<subsystem>_<name> with non-alphanumeric
//     runes folded to '_' (Prometheus names cannot contain '.' or '-'),
//   - counters gain the conventional _total suffix,
//   - histograms are exported as summaries: quantile-labeled samples
//     (p50/p95/p99) plus _sum and _count, with nanosecond readings
//     converted to seconds as Prometheus base units require.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Subsystem, c.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Subsystem, g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Subsystem, h.Name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			ns    int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, q.label, promSeconds(q.ns)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promSeconds(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName builds a legal Prometheus metric name from a (subsystem,
// name) pair: the doppio_ namespace prefix, with every rune outside
// [a-zA-Z0-9] folded to '_'.
func promName(subsystem, name string) string {
	return "doppio_" + promSanitize(subsystem) + "_" + promSanitize(name)
}

func promSanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders a nanosecond reading as seconds without
// float-formatting noise (trailing zeros trimmed, integer seconds
// keep one decimal so the sample is unambiguously a float).
func promSeconds(ns int64) string {
	s := fmt.Sprintf("%.9f", float64(ns)/1e9)
	s = strings.TrimRight(s, "0")
	if strings.HasSuffix(s, ".") {
		s += "0"
	}
	return s
}

package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), the payload the ops server
// serves at /metrics.
//
// Mapping conventions:
//   - metric names are doppio_<subsystem>_<name> with non-alphanumeric
//     runes folded to '_' (Prometheus names cannot contain '.' or '-'),
//   - counters gain the conventional _total suffix,
//   - histograms are exported as summaries: quantile-labeled samples
//     (p50/p95/p99) plus _sum and _count, with nanosecond readings
//     converted to seconds as Prometheus base units require,
//   - labeled (per-tenant) series carry a tenant="..." label pair;
//     unlabeled series render exactly as before labels existed.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// Same-name labeled series are adjacent after the snapshot sort;
	// the TYPE header is emitted once per name, as the format requires.
	lastType := ""
	for _, c := range s.Counters {
		name := promName(c.Subsystem, c.Name) + "_total"
		if name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
				return err
			}
			lastType = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(c.Label), c.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, g := range s.Gauges {
		name := promName(g.Subsystem, g.Name)
		if name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			lastType = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(g.Label), g.Value); err != nil {
			return err
		}
	}
	lastType = ""
	for _, h := range s.Histograms {
		name := promName(h.Subsystem, h.Name) + "_seconds"
		if name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
				return err
			}
			lastType = name
		}
		for _, q := range []struct {
			label string
			ns    int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			qls := fmt.Sprintf("{quantile=%q}", q.label)
			if h.Label != "" {
				qls = fmt.Sprintf("{tenant=%q,quantile=%q}", h.Label, q.label)
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, qls, promSeconds(q.ns)); err != nil {
				return err
			}
		}
		ls := promLabels(h.Label)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, ls, promSeconds(h.Sum), name, ls, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders the tenant label pair, or nothing for unlabeled
// series.
func promLabels(label string) string {
	if label == "" {
		return ""
	}
	return fmt.Sprintf("{tenant=%q}", label)
}

// promName builds a legal Prometheus metric name from a (subsystem,
// name) pair: the doppio_ namespace prefix, with every rune outside
// [a-zA-Z0-9] folded to '_'.
func promName(subsystem, name string) string {
	return "doppio_" + promSanitize(subsystem) + "_" + promSanitize(name)
}

func promSanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders a nanosecond reading as seconds without
// float-formatting noise (trailing zeros trimmed, integer seconds
// keep one decimal so the sample is unambiguously a float).
func promSeconds(ns int64) string {
	s := fmt.Sprintf("%.9f", float64(ns)/1e9)
	s = strings.TrimRight(s, "0")
	if strings.HasSuffix(s, ".") {
		s += "0"
	}
	return s
}

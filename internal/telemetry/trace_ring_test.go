package telemetry

import (
	"testing"
	"time"
)

func ringTracer(cap int) *Tracer {
	tr := NewTracer()
	base := time.Unix(0, 0)
	n := 0
	tr.setClock(func() time.Time { n++; return base.Add(time.Duration(n) * time.Microsecond) })
	tr.SetEventCap(cap)
	return tr
}

// instantArgs extracts the non-metadata instant names, in order.
func instantNames(evs []TraceEvent) []string {
	var out []string
	for _, ev := range evs {
		if ev.Ph != "M" {
			out = append(out, ev.Name)
		}
	}
	return out
}

func TestTracerRingWrap(t *testing.T) {
	tr := ringTracer(4)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		tr.Instant(0, "test", n)
	}
	if got := tr.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	got := instantNames(tr.Events())
	want := []string{"c", "d", "e", "f"}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
}

func TestTracerDropCounter(t *testing.T) {
	reg := NewRegistry()
	tr := ringTracer(2)
	tr.SetDropCounter(reg.Counter("telemetry", "trace_dropped"))
	for i := 0; i < 5; i++ {
		tr.Instant(0, "test", "x")
	}
	if got := reg.Counter("telemetry", "trace_dropped").Value(); got != 3 {
		t.Fatalf("trace_dropped = %d, want 3", got)
	}
}

func TestHubEnableTracingWiresDropCounter(t *testing.T) {
	h := NewHub().EnableTracing()
	h.Tracer.SetEventCap(1)
	h.Tracer.Instant(0, "test", "a")
	h.Tracer.Instant(0, "test", "b")
	if got := h.Registry.Counter("telemetry", "trace_dropped").Value(); got != 1 {
		t.Fatalf("trace_dropped = %d, want 1", got)
	}
}

func TestTracerUnlimitedCap(t *testing.T) {
	tr := ringTracer(-1)
	for i := 0; i < 100; i++ {
		tr.Instant(0, "test", "x")
	}
	if got := len(instantNames(tr.Events())); got != 100 {
		t.Fatalf("retained %d, want 100 (unlimited)", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerSetEventCapShrinksRetained(t *testing.T) {
	tr := ringTracer(-1)
	for _, n := range []string{"a", "b", "c", "d"} {
		tr.Instant(0, "test", n)
	}
	tr.SetEventCap(2)
	got := instantNames(tr.Events())
	if len(got) != 2 || got[0] != "c" || got[1] != "d" {
		t.Fatalf("after shrink retained %v, want [c d]", got)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
}

func TestTracerEventsSince(t *testing.T) {
	tr := ringTracer(4)
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		tr.Instant(0, "test", n)
	}
	// Global seqs 0..5; retained are 2..5 (c..f).
	cases := []struct {
		seq  uint64
		want []string
	}{
		{0, []string{"c", "d", "e", "f"}}, // older than retained: whole window
		{3, []string{"d", "e", "f"}},
		{5, []string{"f"}},
		{6, nil},
	}
	for _, c := range cases {
		got := instantNames(tr.EventsSince(c.seq))
		if len(got) != len(c.want) {
			t.Fatalf("EventsSince(%d) = %v, want %v", c.seq, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("EventsSince(%d) = %v, want %v", c.seq, got, c.want)
			}
		}
	}
}

func TestTracerEventsSinceKeepsMetadata(t *testing.T) {
	tr := ringTracer(4)
	tr.ThreadName(0, "event-loop")
	for i := 0; i < 6; i++ {
		tr.Instant(0, "test", "x")
	}
	evs := tr.EventsSince(5)
	if len(evs) == 0 || evs[0].Ph != "M" {
		t.Fatalf("windowed capture must keep thread_name metadata, got %+v", evs)
	}
}

func TestTracerNilRingAccessors(t *testing.T) {
	var tr *Tracer
	tr.SetEventCap(4)
	tr.SetDropCounter(nil)
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.EventsSince(0) != nil {
		t.Fatal("nil tracer accessors should be zero-valued")
	}
}

package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, like HdrHistogram and the Go
// runtime's internal time histogram. Each power-of-two octave is split
// into 2^histSubBits linear sub-buckets, giving a worst-case quantile
// error of one sub-bucket width (≈ 1/2^histSubBits relative, ~12% at
// 3 sub-bits — in practice well under 10% because estimates use bucket
// midpoints). Values below 2^histSubBits get exact unit buckets.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// Octaves histSubBits..62 each contribute histSubBuckets buckets on
	// top of the exact small-value buckets (int64 values never reach
	// octave 63).
	histNumBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets
)

// Histogram is a lock-free log-scale latency histogram recording
// nanosecond durations. Create one through Registry.Histogram (the
// zero value's minimum tracking is not initialized).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histNumBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value (nanoseconds). Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Quantile estimates the q'th quantile (0 < q <= 1) in nanoseconds.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if cum >= target {
			lo, hi := bucketBounds(i)
			est := lo + (hi-lo)/2
			// Clamp to the observed range for accuracy at the tails.
			if mn := h.min.Load(); est < mn {
				est = mn
			}
			if mx := h.max.Load(); est > mx {
				est = mx
			}
			return est
		}
	}
	return h.max.Load()
}

// HistogramStats is a point-in-time summary of a histogram.
type HistogramStats struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	Mean  int64
	P50   int64
	P95   int64
	P99   int64
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	s := HistogramStats{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Mean = s.Sum / s.Count
	}
	return s
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := int((u >> (uint(exp) - histSubBits)) & (histSubBuckets - 1))
	idx := histSubBuckets + (exp-histSubBits)*histSubBuckets + sub
	if idx >= histNumBuckets {
		idx = histNumBuckets - 1
	}
	return idx
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i + 1)
	}
	oct := uint((i-histSubBuckets)/histSubBuckets + histSubBits)
	sub := uint64((i - histSubBuckets) % histSubBuckets)
	width := uint64(1) << (oct - histSubBits)
	ulo := uint64(1)<<oct + sub*width
	uhi := ulo + width
	if ulo > math.MaxInt64 {
		ulo = math.MaxInt64
	}
	if uhi > math.MaxInt64 {
		uhi = math.MaxInt64
	}
	return int64(ulo), int64(uhi)
}

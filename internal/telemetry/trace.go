package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one entry of the Chrome trace_event format
// (the "Trace Event Format" document; the JSON Array/Object formats
// consumed by chrome://tracing and Perfetto). Timestamps and durations
// are in microseconds, as the format requires.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "M" metadata,
	// "C" counter.
	Ph  string `json:"ph"`
	TS  int64  `json:"ts"`
	Dur int64  `json:"dur,omitempty"`
	PID int    `json:"pid"`
	TID int    `json:"tid"`
	// S scopes instant events ("t" thread, "p" process, "g" global).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format wrapper.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the synthetic process id; everything the runtime records
// belongs to one emulated browser process.
const tracePID = 1

// DefaultTraceEventCap bounds how many trace events a Tracer retains
// before the ring starts overwriting the oldest — long -trace runs
// keep the newest window instead of growing without limit. Override
// with SetEventCap (the cmds expose it as -trace-cap).
const DefaultTraceEventCap = 1 << 18

// Tracer accumulates trace events in memory and serializes them as
// Chrome trace_event JSON. Retention is bounded: once the event ring
// reaches its cap (DefaultTraceEventCap unless SetEventCap was
// called), the oldest events are overwritten and counted as dropped.
// All methods are safe for concurrent use; a nil *Tracer is a valid
// no-op receiver, so call sites can hold an optional tracer without
// guarding.
type Tracer struct {
	mu          sync.Mutex
	start       time.Time
	now         func() time.Time
	events      []TraceEvent
	threadNames map[int]string
	cap         int    // ring capacity; < 0 means unlimited
	head        int    // index of oldest event once the ring is full
	total       uint64 // events ever recorded
	dropCtr     *Counter
}

// NewTracer creates an empty tracer; event timestamps are relative to
// this call.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now, threadNames: make(map[int]string), cap: DefaultTraceEventCap}
	t.start = t.now()
	return t
}

// SetEventCap changes the retention cap: n > 0 keeps the newest n
// events, n < 0 removes the bound (unlimited growth, the pre-cap
// behavior), n == 0 restores DefaultTraceEventCap. Call before
// recording begins; lowering the cap mid-run discards oldest events.
func (t *Tracer) SetEventCap(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case n < 0:
		t.cap = -1
	case n == 0:
		t.cap = DefaultTraceEventCap
	default:
		t.cap = n
	}
	if t.cap > 0 && len(t.events) > t.cap {
		ordered := t.orderedLocked()
		drop := len(ordered) - t.cap
		t.events = append([]TraceEvent(nil), ordered[drop:]...)
		t.head = 0
		t.dropCtr.Add(int64(drop))
	}
}

// SetDropCounter wires a counter incremented once per overwritten
// event (Hub.EnableTracing points it at telemetry.trace_dropped).
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropCtr = c
	t.mu.Unlock()
}

// setClock replaces the time source (tests only, before recording).
func (t *Tracer) setClock(now func() time.Time) {
	t.now = now
	t.start = now()
}

func (t *Tracer) micros(at time.Time) int64 {
	return at.Sub(t.start).Microseconds()
}

func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	if t.cap > 0 && len(t.events) >= t.cap {
		t.events[t.head] = ev
		t.head = (t.head + 1) % t.cap
		t.dropCtr.Add(1)
	} else {
		t.events = append(t.events, ev)
	}
	t.total++
	t.mu.Unlock()
}

// orderedLocked returns retained events oldest-first; t.mu must be
// held. The returned slice aliases t.events only when the ring has
// not wrapped.
func (t *Tracer) orderedLocked() []TraceEvent {
	if t.head == 0 {
		return t.events
	}
	out := make([]TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	return append(out, t.events[:t.head]...)
}

// Total returns the number of events ever recorded, including those
// the ring has since overwritten. The ops server uses it to delimit
// windowed captures.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.events))
}

// EventsSince returns the retained events whose global sequence number
// (0-based recording order, as counted by Total) is >= seq, oldest
// first, prefixed by the thread-name metadata events. Events older
// than the retained window are simply absent. It powers the ops
// server's windowed /debug/trace?sec=N capture: snapshot Total, wait,
// then collect EventsSince(snapshot).
func (t *Tracer) EventsSince(seq uint64) []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ordered := t.orderedLocked()
	oldest := t.total - uint64(len(ordered))
	if seq > oldest {
		skip := seq - oldest
		if skip >= uint64(len(ordered)) {
			ordered = nil
		} else {
			ordered = ordered[skip:]
		}
	}
	return append(t.metadataEvents(), append([]TraceEvent(nil), ordered...)...)
}

// ThreadName names a track; it is emitted as a thread_name metadata
// event so trace viewers label the row.
func (t *Tracer) ThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threadNames[tid] = name
	t.mu.Unlock()
}

// Span is an in-progress duration span started by Begin. The zero Span
// (from a nil Tracer) is a no-op.
type Span struct {
	t     *Tracer
	tid   int
	cat   string
	name  string
	start time.Time
}

// Begin starts a duration span on the given track. Call End on the
// returned Span to record it (as a "X" complete event).
func (t *Tracer) Begin(tid int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, tid: tid, cat: cat, name: name, start: t.now()}
}

// End records the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.add(TraceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.t.micros(s.start), Dur: end.Sub(s.start).Microseconds(),
		PID: tracePID, TID: s.tid,
	})
}

// Instant records a point-in-time event on the given track.
func (t *Tracer) Instant(tid int, cat, name string) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: t.micros(t.now()), PID: tracePID, TID: tid,
	})
}

// CounterEvent records a counter sample (rendered as an area chart).
func (t *Tracer) CounterEvent(tid int, name string, value int64) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Ph: "C",
		TS: t.micros(t.now()), PID: tracePID, TID: tid,
		Args: map[string]any{"value": value},
	})
}

// Events returns a copy of the retained events (metadata events
// included, first), in recording order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(t.metadataEvents(), append([]TraceEvent(nil), t.orderedLocked()...)...)
}

// metadataEvents builds the thread_name events; t.mu must be held.
func (t *Tracer) metadataEvents() []TraceEvent {
	tids := make([]int, 0, len(t.threadNames))
	for tid := range t.threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	out := make([]TraceEvent, 0, len(tids))
	for _, tid := range tids {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": t.threadNames[tid]},
		})
	}
	return out
}

// WriteJSON serializes the trace in the Chrome trace_event JSON Object
// Format, loadable by chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteTraceJSON(w, t.Events())
}

// WriteTraceJSON serializes an arbitrary event slice in the Chrome
// trace_event JSON Object Format — the ops server uses it to emit
// windowed captures assembled with EventsSince.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data parses as a valid Chrome
// trace_event JSON document: the JSON Object Format with a traceEvents
// array whose entries carry the required fields with legal values —
// the contract chrome://tracing and Perfetto load. Tests and commands
// use it to validate -trace output files.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return errors.New("trace missing traceEvents array")
	}
	validPhases := map[string]bool{"X": true, "B": true, "E": true, "i": true, "I": true, "M": true, "C": true}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		if !validPhases[ph] {
			return fmt.Errorf("event %d has invalid phase %q", i, ph)
		}
		if ph != "M" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("event %d has invalid ts: %v", i, ev["ts"])
			}
		}
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				return fmt.Errorf("event %d has negative dur", i)
			}
		}
		if ph == "M" {
			if name, _ := ev["name"].(string); name == "thread_name" {
				args, ok := ev["args"].(map[string]any)
				if !ok {
					return fmt.Errorf("thread_name event %d missing args", i)
				}
				if _, ok := args["name"].(string); !ok {
					return fmt.Errorf("thread_name event %d missing args.name", i)
				}
			}
		}
	}
	return nil
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceEvent is one entry of the Chrome trace_event format
// (the "Trace Event Format" document; the JSON Array/Object formats
// consumed by chrome://tracing and Perfetto). Timestamps and durations
// are in microseconds, as the format requires.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete, "i" instant, "M" metadata,
	// "C" counter.
	Ph  string `json:"ph"`
	TS  int64  `json:"ts"`
	Dur int64  `json:"dur,omitempty"`
	PID int    `json:"pid"`
	TID int    `json:"tid"`
	// S scopes instant events ("t" thread, "p" process, "g" global).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format wrapper.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the synthetic process id; everything the runtime records
// belongs to one emulated browser process.
const tracePID = 1

// Tracer accumulates trace events in memory and serializes them as
// Chrome trace_event JSON. All methods are safe for concurrent use; a
// nil *Tracer is a valid no-op receiver, so call sites can hold an
// optional tracer without guarding.
type Tracer struct {
	mu          sync.Mutex
	start       time.Time
	now         func() time.Time
	events      []TraceEvent
	threadNames map[int]string
}

// NewTracer creates an empty tracer; event timestamps are relative to
// this call.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now, threadNames: make(map[int]string)}
	t.start = t.now()
	return t
}

// setClock replaces the time source (tests only, before recording).
func (t *Tracer) setClock(now func() time.Time) {
	t.now = now
	t.start = now()
}

func (t *Tracer) micros(at time.Time) int64 {
	return at.Sub(t.start).Microseconds()
}

func (t *Tracer) add(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// ThreadName names a track; it is emitted as a thread_name metadata
// event so trace viewers label the row.
func (t *Tracer) ThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threadNames[tid] = name
	t.mu.Unlock()
}

// Span is an in-progress duration span started by Begin. The zero Span
// (from a nil Tracer) is a no-op.
type Span struct {
	t     *Tracer
	tid   int
	cat   string
	name  string
	start time.Time
}

// Begin starts a duration span on the given track. Call End on the
// returned Span to record it (as a "X" complete event).
func (t *Tracer) Begin(tid int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, tid: tid, cat: cat, name: name, start: t.now()}
}

// End records the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.add(TraceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.t.micros(s.start), Dur: end.Sub(s.start).Microseconds(),
		PID: tracePID, TID: s.tid,
	})
}

// Instant records a point-in-time event on the given track.
func (t *Tracer) Instant(tid int, cat, name string) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: t.micros(t.now()), PID: tracePID, TID: tid,
	})
}

// CounterEvent records a counter sample (rendered as an area chart).
func (t *Tracer) CounterEvent(tid int, name string, value int64) {
	if t == nil {
		return
	}
	t.add(TraceEvent{
		Name: name, Ph: "C",
		TS: t.micros(t.now()), PID: tracePID, TID: tid,
		Args: map[string]any{"value": value},
	})
}

// Events returns a copy of the recorded events (metadata events
// included, first), in recording order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(t.metadataEvents(), append([]TraceEvent(nil), t.events...)...)
}

// metadataEvents builds the thread_name events; t.mu must be held.
func (t *Tracer) metadataEvents() []TraceEvent {
	tids := make([]int, 0, len(t.threadNames))
	for tid := range t.threadNames {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	out := make([]TraceEvent, 0, len(tids))
	for _, tid := range tids {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": t.threadNames[tid]},
		})
	}
	return out
}

// WriteJSON serializes the trace in the Chrome trace_event JSON Object
// Format, loadable by chrome://tracing and Perfetto.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data parses as a valid Chrome
// trace_event JSON document: the JSON Object Format with a traceEvents
// array whose entries carry the required fields with legal values —
// the contract chrome://tracing and Perfetto load. Tests and commands
// use it to validate -trace output files.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return errors.New("trace missing traceEvents array")
	}
	validPhases := map[string]bool{"X": true, "B": true, "E": true, "i": true, "I": true, "M": true, "C": true}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				return fmt.Errorf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		if !validPhases[ph] {
			return fmt.Errorf("event %d has invalid phase %q", i, ph)
		}
		if ph != "M" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				return fmt.Errorf("event %d has invalid ts: %v", i, ev["ts"])
			}
		}
		if ph == "X" {
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				return fmt.Errorf("event %d has negative dur", i)
			}
		}
		if ph == "M" {
			if name, _ := ev["name"].(string); name == "thread_name" {
				args, ok := ev["args"].(map[string]any)
				if !ok {
					return fmt.Errorf("thread_name event %d missing args", i)
				}
				if _, ok := args["name"].(string); !ok {
					return fmt.Errorf("thread_name event %d missing args.name", i)
				}
			}
		}
	}
	return nil
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

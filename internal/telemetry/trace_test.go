package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a deterministic time source advancing a fixed step per
// reading.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(1_000_000, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func buildDeterministicTrace() *Tracer {
	tr := NewTracer()
	tr.setClock(fakeClock(250 * time.Microsecond))
	tr.ThreadName(TIDEventLoop, "event loop")
	tr.ThreadName(1, "main")
	sp := tr.Begin(TIDEventLoop, "eventloop", "timer")
	inner := tr.Begin(1, "core", "main slice")
	inner.End()
	sp.End()
	tr.Instant(1, "core", "suspend")
	tr.CounterEvent(TIDEventLoop, "queue_depth", 3)
	return tr
}

func TestTraceGoldenFile(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceChromeFormatValidity asserts the emitted JSON is a valid
// Chrome trace_event document: the JSON Object Format with a
// traceEvents array whose entries carry the required fields with
// legal values. This is the contract chrome://tracing and Perfetto
// load.
func TestTraceChromeFormatValidity(t *testing.T) {
	var buf bytes.Buffer
	if err := buildDeterministicTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	AssertValidChromeTrace(t, buf.Bytes())
}

func TestTraceSpanDurations(t *testing.T) {
	tr := NewTracer()
	tr.setClock(fakeClock(1 * time.Millisecond))
	sp := tr.Begin(0, "c", "outer") // reads clock at t=1ms
	sp.End()                        // reads clock at t=2ms
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Ph != "X" || evs[0].Dur != 1000 || evs[0].TS != 1000 {
		t.Errorf("span event = %+v, want X ts=1000 dur=1000", evs[0])
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(0, "c", "x")
	sp.End()
	tr.Instant(0, "c", "y")
	tr.ThreadName(0, "z")
	tr.CounterEvent(0, "n", 1)
	if err := tr.WriteJSON(os.NewFile(0, "")); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer must record nothing")
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin(tid, "t", "work")
				sp.End()
				tr.Instant(tid, "t", "tick")
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 8*1000 {
		t.Fatalf("got %d events, want %d", got, 8*1000)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	AssertValidChromeTrace(t, buf.Bytes())
}

// AssertValidChromeTrace fails the test unless data parses as a valid
// Chrome trace_event JSON document (see ValidateChromeTrace).
func AssertValidChromeTrace(t *testing.T, data []byte) {
	t.Helper()
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
}

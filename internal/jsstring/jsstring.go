// Package jsstring models JavaScript strings: sequences of arbitrary
// 16-bit code units, including lone surrogates.
//
// Doppio's Buffer packs two bytes of binary data into each UTF-16
// character of a JavaScript string (§5.1, "Binary Data in the
// Browser"); many of the resulting code units are unpaired surrogates,
// which is legal in engines that "do not perform validity checks".
// Go strings are conventionally UTF-8, which cannot represent lone
// surrogates, so this package stores JS strings in Go strings using
// WTF-8: UTF-8 extended with three-byte encodings of the surrogate
// range. Units and Decode understand that extension.
package jsstring

// Encode converts a sequence of UTF-16 code units to its WTF-8
// representation in a Go string. Every uint16 value is representable.
func Encode(units []uint16) string {
	buf := make([]byte, 0, len(units)*3)
	for _, u := range units {
		switch {
		case u < 0x80:
			buf = append(buf, byte(u))
		case u < 0x800:
			buf = append(buf, 0xC0|byte(u>>6), 0x80|byte(u&0x3F))
		default:
			buf = append(buf, 0xE0|byte(u>>12), 0x80|byte(u>>6&0x3F), 0x80|byte(u&0x3F))
		}
	}
	return string(buf)
}

// Decode converts a WTF-8 Go string back into UTF-16 code units.
// Supplementary-plane code points (from ordinary UTF-8 input) expand to
// surrogate pairs, exactly as JavaScript represents them. Malformed
// bytes decode to U+FFFD, one unit per byte.
func Decode(s string) []uint16 {
	units := make([]uint16, 0, len(s))
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c < 0x80:
			units = append(units, uint16(c))
			i++
		case c < 0xC0: // stray continuation byte
			units = append(units, 0xFFFD)
			i++
		case c < 0xE0:
			if i+1 >= len(s) || s[i+1]&0xC0 != 0x80 {
				units = append(units, 0xFFFD)
				i++
				continue
			}
			units = append(units, uint16(c&0x1F)<<6|uint16(s[i+1]&0x3F))
			i += 2
		case c < 0xF0:
			if i+2 >= len(s) || s[i+1]&0xC0 != 0x80 || s[i+2]&0xC0 != 0x80 {
				units = append(units, 0xFFFD)
				i++
				continue
			}
			units = append(units, uint16(c&0x0F)<<12|uint16(s[i+1]&0x3F)<<6|uint16(s[i+2]&0x3F))
			i += 3
		default: // 4-byte sequence: supplementary plane → surrogate pair
			if i+3 >= len(s) || s[i+1]&0xC0 != 0x80 || s[i+2]&0xC0 != 0x80 || s[i+3]&0xC0 != 0x80 {
				units = append(units, 0xFFFD)
				i++
				continue
			}
			cp := uint32(c&0x07)<<18 | uint32(s[i+1]&0x3F)<<12 | uint32(s[i+2]&0x3F)<<6 | uint32(s[i+3]&0x3F)
			cp -= 0x10000
			units = append(units, uint16(0xD800|cp>>10), uint16(0xDC00|cp&0x3FF))
			i += 4
		}
	}
	return units
}

// Units reports the number of UTF-16 code units in the WTF-8 string —
// what JavaScript's String.length would return, and the unit browsers
// charge against storage quotas (two bytes each).
func Units(s string) int {
	n := 0
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c < 0x80:
			i++
			n++
		case c < 0xC0:
			i++
			n++ // malformed byte: one replacement unit
		case c < 0xE0:
			if !contAt(s, i+1, 1) {
				i++
			} else {
				i += 2
			}
			n++
		case c < 0xF0:
			if !contAt(s, i+1, 2) {
				i++
			} else {
				i += 3
			}
			n++
		default:
			if !contAt(s, i+1, 3) {
				i++
				n++
			} else {
				i += 4
				n += 2 // surrogate pair
			}
		}
	}
	return n
}

// contAt reports whether k continuation bytes start at index i.
func contAt(s string, i, k int) bool {
	if i+k > len(s) {
		return false
	}
	for j := 0; j < k; j++ {
		if s[i+j]&0xC0 != 0x80 {
			return false
		}
	}
	return true
}

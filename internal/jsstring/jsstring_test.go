package jsstring

import (
	"testing"
	"testing/quick"
)

func TestRoundTripArbitraryUnits(t *testing.T) {
	f := func(units []uint16) bool {
		got := Decode(Encode(units))
		if len(got) != len(units) {
			return false
		}
		for i := range got {
			if got[i] != units[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoneSurrogatesSurvive(t *testing.T) {
	units := []uint16{0xD800, 0xDFFF, 0xDC00, 0x0041}
	got := Decode(Encode(units))
	for i := range units {
		if got[i] != units[i] {
			t.Fatalf("unit %d: got %#04x, want %#04x", i, got[i], units[i])
		}
	}
}

func TestUnitsMatchesDecode(t *testing.T) {
	f := func(units []uint16) bool {
		return Units(Encode(units)) == len(units)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrdinaryUTF8Interop(t *testing.T) {
	// A regular Go string (valid UTF-8) must decode as JS would see it.
	s := "héllo, 日本" // BMP only: one unit per rune
	units := Decode(s)
	if len(units) != 9 {
		t.Errorf("Units = %d, want 9 (got %v)", len(units), units)
	}
	if Units(s) != 9 {
		t.Errorf("Units(s) = %d", Units(s))
	}
}

func TestSupplementaryPlaneMakesSurrogatePair(t *testing.T) {
	s := "\U0001F600" // emoji, U+1F600
	units := Decode(s)
	if len(units) != 2 || units[0] != 0xD83D || units[1] != 0xDE00 {
		t.Errorf("Decode(emoji) = %#v", units)
	}
	if Units(s) != 2 {
		t.Errorf("Units(emoji) = %d, want 2 (JS String.length semantics)", Units(s))
	}
}

func TestMalformedBytes(t *testing.T) {
	// A stray continuation byte decodes to one replacement unit.
	units := Decode("\x80")
	if len(units) != 1 || units[0] != 0xFFFD {
		t.Errorf("Decode(0x80) = %#v", units)
	}
	// A truncated 3-byte sequence: one replacement unit per bad byte.
	units = Decode("\xE0\xA0")
	if len(units) != 2 || units[0] != 0xFFFD || units[1] != 0xFFFD {
		t.Errorf("Decode(truncated) = %#v", units)
	}
}

func TestEmpty(t *testing.T) {
	if len(Decode("")) != 0 || Units("") != 0 || Encode(nil) != "" {
		t.Error("empty string round trip failed")
	}
}

// Package ops is the runtime's live-operations layer: a stdlib-only
// HTTP server exposing the telemetry hub, scheduler state, flight
// recorder, and pprof while a workload runs, plus the post-mortem
// report the runtime emits automatically when a JVM deadlocks, the
// watchdog kills the script, or stall detection trips.
//
// The paper's evaluation (§7) observes the system only after the fact;
// the ROADMAP's production north star needs the Browsix-style ability
// to inspect the runtime *while it runs* and a black-box record when
// it dies. Both views are assembled from the same Source descriptors.
//
// Concurrency: core.Runtime, the VFS decorator stack, and the
// unmanaged heap all execute on the single event-loop goroutine.
// Collect therefore must run either on that goroutine (the server's
// handlers arrange this via Loop.Post with a timeout) or after
// Loop.Run has returned (the post-mortem paths). The telemetry hub's
// registry, tracer, and flight recorder are internally synchronized
// and safe from any goroutine.
package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/jvm"
	"doppio/internal/proc"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/umheap"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
)

// Source names one inspectable runtime instance: the event loop it
// runs on and whichever subsystems it actually has. Nil fields are
// simply absent from reports.
type Source struct {
	// Name distinguishes sources when several browsers run in one
	// process (doppio-bench's Browsers > 1).
	Name string
	// Loop is the event loop everything below executes on. Required
	// for live collection; may be nil for post-Run collection.
	Loop *eventloop.Loop
	// Runtime is the Doppio scheduler, for thread dumps.
	Runtime *core.Runtime
	// Backend is the outermost layer of the VFS decorator stack; cache,
	// retry/breaker, and fault-injector state are discovered by walking
	// its Unwrap chain.
	Backend vfs.Backend
	// Heap is the JVM's unmanaged heap, for the free-list map.
	Heap *umheap.Heap
	// Proc is the process kernel, for the ps-style table
	// (/debug/proc). Nil when the source runs no process layer.
	Proc *proc.Kernel
	// JVM lists the source's bytecode engines for the quickening
	// counters (/debug/jvm); empty when no JVM runs here.
	JVM []JVMEngine
	// Prof is the source's guest profiler, feeding /debug/profile,
	// /debug/guest-pprof, and the post-mortem hot-stack section. Nil
	// when the workload runs unprofiled. The profiler is internally
	// synchronized, so (unlike the loop-affine fields above) it is
	// safe to snapshot from any goroutine.
	Prof *profile.Profiler
}

// JVMEngine names one bytecode engine exposing quickening counters.
type JVMEngine struct {
	// Engine distinguishes the interpreters ("doppio", "native").
	Engine string
	Stats  jvm.QuickStatser
}

// JVMEngineState is one engine's quickening slice of a report.
type JVMEngineState struct {
	Engine string `json:"engine"`
	jvm.QuickStats
}

// VFSState is the VFS slice of a report.
type VFSState struct {
	Backend string          `json:"backend,omitempty"`
	Cache   *vfs.CacheStats `json:"cache,omitempty"`
	Retry   *vfs.RetryStats `json:"retry,omitempty"`
	Faults  *faultfs.Stats  `json:"faults,omitempty"`
}

// HeapState is the unmanaged-heap slice of a report.
type HeapState struct {
	Size       int             `json:"size"`
	Allocated  int             `json:"allocated"`
	AllocCount int             `json:"alloc_count"`
	FreeList   []umheap.Extent `json:"free_list"`
}

// FlightTail is how many flight-recorder events a post-mortem keeps.
const FlightTail = 200

// Report is one diagnostics capture: the jstack-style post-mortem the
// runtime emits on deadlock/watchdog/stall, and the payload behind the
// server's debug endpoints. Nil sections were unavailable at capture.
type Report struct {
	Reason    string                  `json:"reason"`
	Detail    string                  `json:"detail,omitempty"`
	Source    string                  `json:"source,omitempty"`
	Scheduler *core.SchedulerDump     `json:"scheduler,omitempty"`
	VFS       *VFSState               `json:"vfs,omitempty"`
	Heap      *HeapState              `json:"heap,omitempty"`
	Procs     []proc.ProcInfo         `json:"procs,omitempty"`
	JVM       []JVMEngineState        `json:"jvm,omitempty"`
	// HotStacks is the head of the guest CPU profile at capture time
	// (collapsed stacks, Value in sampled nanoseconds) — where the
	// workload was spending its guest time when it died.
	HotStacks []profile.Entry         `json:"hot_stacks,omitempty"`
	Flight    []telemetry.FlightEvent `json:"flight,omitempty"`
	// FlightDropped counts events the ring had already overwritten —
	// how much history beyond Flight is gone.
	FlightDropped uint64 `json:"flight_dropped,omitempty"`
}

// Collect assembles a report from whatever the source has. It reads
// scheduler, VFS, and heap state directly — call it on the event-loop
// goroutine or after Loop.Run has returned (see the package comment).
func Collect(hub *telemetry.Hub, src Source, reason, detail string) *Report {
	r := &Report{Reason: reason, Detail: detail, Source: src.Name}
	if src.Runtime != nil {
		d := src.Runtime.Dump()
		r.Scheduler = &d
	}
	if src.Backend != nil {
		r.VFS = collectVFS(src.Backend)
	}
	if src.Heap != nil {
		r.Heap = &HeapState{
			Size:       src.Heap.Size(),
			Allocated:  src.Heap.AllocatedBytes(),
			AllocCount: src.Heap.AllocCount(),
			FreeList:   src.Heap.FreeList(),
		}
	}
	if src.Proc != nil {
		r.Procs = src.Proc.Snapshot()
	}
	for _, e := range src.JVM {
		if e.Stats == nil {
			continue
		}
		r.JVM = append(r.JVM, JVMEngineState{Engine: e.Engine, QuickStats: e.Stats.QuickStats()})
	}
	if src.Prof != nil {
		const hotStackCount = 10
		snap := src.Prof.Snapshot(profile.CPU)
		if len(snap.Entries) > hotStackCount {
			snap.Entries = snap.Entries[:hotStackCount]
		}
		r.HotStacks = snap.Entries
	}
	if hub != nil && hub.Flight != nil {
		r.Flight = hub.Flight.Tail(FlightTail)
		r.FlightDropped = hub.Flight.Dropped()
	}
	return r
}

// FormatProcs renders the process table ps-style.
func FormatProcs(procs []proc.ProcInfo) string {
	var b strings.Builder
	b.WriteString("== processes ==\n")
	fmt.Fprintf(&b, "%5s %5s %-12s %-8s %4s %-28s %s\n",
		"PID", "PPID", "NAME", "STATE", "EXIT", "BLOCKED-ON", "CHILDREN")
	for _, p := range procs {
		kids := ""
		for i, c := range p.Children {
			if i > 0 {
				kids += ","
			}
			kids += fmt.Sprint(c)
		}
		fmt.Fprintf(&b, "%5d %5d %-12s %-8s %4d %-28s %s\n",
			p.PID, p.PPID, p.Name, p.State, p.ExitCode, p.Blocked, kids)
	}
	return b.String()
}

func collectVFS(b vfs.Backend) *VFSState {
	st := &VFSState{Backend: b.Name()}
	if cs, ok := vfs.Find[vfs.CacheStatser](b); ok {
		s := cs.CacheStats()
		st.Cache = &s
	}
	if rs, ok := vfs.Find[vfs.RetryStatser](b); ok {
		s := rs.RetryStats()
		st.Retry = &s
	}
	if fs, ok := vfs.Find[vfs.FaultStatser](b); ok {
		s := fs.FaultStats()
		st.Faults = &s
	}
	return st
}

// Text renders the report as the human-readable post-mortem.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== doppio post-mortem: %s ====\n", r.Reason)
	if r.Detail != "" {
		fmt.Fprintf(&b, "%s\n", r.Detail)
	}
	if r.Source != "" {
		fmt.Fprintf(&b, "source: %s\n", r.Source)
	}
	if r.Scheduler != nil {
		b.WriteString(r.Scheduler.Format())
		if blocked := r.Scheduler.Blocked(); len(blocked) > 0 {
			fmt.Fprintf(&b, "blocked threads (%d):\n", len(blocked))
			for _, t := range blocked {
				fmt.Fprintf(&b, "  %s#%d on %s\n", t.Name, t.ID, t.BlockedOn)
			}
		}
	}
	if r.VFS != nil {
		fmt.Fprintf(&b, "== vfs (%s) ==\n", r.VFS.Backend)
		if c := r.VFS.Cache; c != nil {
			fmt.Fprintf(&b, "cache: hits=%d misses=%d stat-hits=%d negative-hits=%d degraded=%d bytes=%d dirty=%d\n",
				c.Hits, c.Misses, c.StatHits, c.NegativeHits, c.DegradedServes, c.BytesUsed, c.DirtyEntries)
		}
		if rt := r.VFS.Retry; rt != nil {
			fmt.Fprintf(&b, "retry: ops=%d attempts=%d retries=%d recovered=%d fastfails=%d breaker=%s\n",
				rt.Ops, rt.Attempts, rt.Retries, rt.Recovered, rt.FastFails, rt.BreakerState)
		}
		if f := r.VFS.Faults; f != nil {
			fmt.Fprintf(&b, "faults: ops=%d err-pre=%d err-post=%d shorts=%d delays=%d\n",
				f.Ops, f.ErrsPre, f.ErrsPost, f.Shorts, f.Delays)
		}
	}
	if len(r.Procs) > 0 {
		b.WriteString(FormatProcs(r.Procs))
	}
	if len(r.JVM) > 0 {
		b.WriteString("== jvm quickening ==\n")
		for _, e := range r.JVM {
			if !e.Enabled {
				fmt.Fprintf(&b, "%s: quickening off\n", e.Engine)
				continue
			}
			fmt.Fprintf(&b, "%s: sites=%d ic-hits=%d ic-misses=%d deopts=%d fusions=%d fused-exec=%d\n",
				e.Engine, e.Sites, e.ICHits, e.ICMisses, e.Deopts, e.Fusions, e.FusedExec)
		}
	}
	if r.Heap != nil {
		fmt.Fprintf(&b, "== unmanaged heap ==\nsize=%d allocated=%d live-allocs=%d free-blocks=%d\nfree list:\n",
			r.Heap.Size, r.Heap.Allocated, r.Heap.AllocCount, len(r.Heap.FreeList))
		for _, e := range r.Heap.FreeList {
			fmt.Fprintf(&b, "  [%8d, %8d) %d bytes\n", e.Addr, e.Addr+e.Size, e.Size)
		}
	}
	if len(r.HotStacks) > 0 {
		b.WriteString("== guest hot stacks (cpu) ==\n")
		for _, e := range r.HotStacks {
			fmt.Fprintf(&b, "  %8.1fms  %s\n",
				float64(e.Value)/1e6, strings.Join(e.Stack, ";"))
		}
	}
	if r.Flight != nil {
		if r.FlightDropped > 0 {
			fmt.Fprintf(&b, "(flight recorder: %d older events overwritten)\n", r.FlightDropped)
		}
		b.WriteString(telemetry.FormatFlight(r.Flight))
	}
	return b.String()
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// CollectOnLoop runs Collect on the source's event-loop goroutine and
// waits up to timeout for it — the safe way to capture a report while
// the loop is running. When the loop is nil the collection happens
// inline (legal only post-Run). A timeout returns the error along
// with a degraded report carrying just the reason and the flight tail
// (the flight recorder is goroutine-safe, so the black box survives
// even an unresponsive loop).
func CollectOnLoop(hub *telemetry.Hub, src Source, reason, detail string, timeout time.Duration) (*Report, error) {
	if src.Loop == nil {
		return Collect(hub, src, reason, detail), nil
	}
	done := make(chan *Report, 1)
	src.Loop.Post("ops-collect", func() {
		done <- Collect(hub, src, reason, detail)
	})
	select {
	case r := <-done:
		return r, nil
	case <-time.After(timeout):
		r := &Report{Reason: reason, Detail: detail, Source: src.Name}
		if hub != nil && hub.Flight != nil {
			r.Flight = hub.Flight.Tail(FlightTail)
			r.FlightDropped = hub.Flight.Dropped()
		}
		return r, fmt.Errorf("ops: event loop unresponsive after %v", timeout)
	}
}

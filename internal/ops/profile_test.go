package ops_test

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doppio/internal/ops"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
)

// profServer builds a server over a pre-folded guest profiler (no
// live VM needed — the handlers only read snapshots).
func profServer(t *testing.T, prof *profile.Profiler) *httptest.Server {
	t.Helper()
	s := ops.NewServer(nil)
	s.Register(ops.Source{Name: "guest", Prof: prof})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestProfileEndpoints(t *testing.T) {
	prof := profile.New(profile.Options{})
	prof.SampleCPU([]string{"Main.main", "Work.churn:12"}, 3*time.Millisecond)
	prof.SampleCPU([]string{"Main.main", "Work.churn:12"}, 2*time.Millisecond)
	prof.SampleCPU([]string{"Main.main:40"}, time.Millisecond)
	prof.SampleAlloc([]string{"Main.main", "Work.churn:5"}, 128)
	prof.SampleBlock([]string{"Main.main", "monitor(Work)"}, 4*time.Millisecond)
	ts := profServer(t, prof)

	// Collapsed stacks, cumulative window (sec=0 skips the sleep).
	code, body := get(t, ts.URL+"/debug/profile?sec=0")
	if code != http.StatusOK {
		t.Fatalf("/debug/profile status = %d: %s", code, body)
	}
	if !strings.Contains(body, "Main.main;Work.churn:12 5000000") {
		t.Errorf("collapsed output missing folded stack:\n%s", body)
	}

	// JSON form round-trips and carries the kind.
	code, body = get(t, ts.URL+"/debug/profile?sec=0&format=json")
	if code != http.StatusOK {
		t.Fatalf("json status = %d", code)
	}
	var snap struct {
		Kind    string `json:"kind"`
		Entries []struct {
			Stack []string `json:"stack"`
			Value int64    `json:"value"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json decode: %v\n%s", err, body)
	}
	if snap.Kind != "cpu" || len(snap.Entries) != 2 {
		t.Errorf("json snapshot kind=%q entries=%d, want cpu/2", snap.Kind, len(snap.Entries))
	}

	// The other two profile kinds are reachable by name.
	if _, body = get(t, ts.URL+"/debug/profile?sec=0&kind=alloc"); !strings.Contains(body, "Work.churn:5") {
		t.Errorf("alloc profile missing site:\n%s", body)
	}
	if _, body = get(t, ts.URL+"/debug/profile?sec=0&kind=block"); !strings.Contains(body, "monitor(Work)") {
		t.Errorf("block profile missing wait label:\n%s", body)
	}
	if code, _ = get(t, ts.URL+"/debug/profile?sec=0&kind=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown kind status = %d, want 400", code)
	}

	// The pprof endpoint serves a gzipped protobuf whose string table
	// carries the guest method names.
	resp, err := http.Get(ts.URL + "/debug/guest-pprof?sec=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/guest-pprof status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content-type %q", ct)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	for _, want := range []string{"Main.main", "Work.churn", "nanoseconds", "(guest)"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("pprof payload missing %q", want)
		}
	}
}

// TestProfileEndpointDisabled pins the no-profiler path: 404 with a
// hint, not an empty 200 an operator would misread as "idle guest".
func TestProfileEndpointDisabled(t *testing.T) {
	s := ops.NewServer(nil)
	s.Register(ops.Source{Name: "guest"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/profile", "/debug/guest-pprof"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusNotFound || !strings.Contains(body, "-prof") {
			t.Errorf("%s: status %d body %q, want 404 with -prof hint", path, code, body)
		}
	}
}

// TestMetricsFlightGauges pins the flight-recorder health gauges on
// /metrics: totals, drops, and capacity are exported whenever the
// ring exists.
func TestMetricsFlightGauges(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(128)
	for i := 0; i < 3; i++ {
		hub.Flight.Record("test", "event", "x", int64(i))
	}
	s := ops.NewServer(hub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"doppio_telemetry_flight_events_total 3",
		"doppio_telemetry_flight_dropped_total 0",
		"doppio_telemetry_flight_capacity 128",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

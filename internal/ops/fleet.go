package ops

import (
	"encoding/json"
	"fmt"
	"net/http"

	"doppio/internal/fleet"
)

// fleetSource is one registered fleet supervisor.
type fleetSource struct {
	name string
	sup  *fleet.Supervisor
}

// RegisterFleet adds (or, matching by name, replaces) a fleet
// supervisor behind /debug/fleet. Supervisor snapshots are built from
// published atomics and the supervisor's own bookkeeping — never by
// posting to shard loops — so the endpoint stays responsive even when
// a tenant has wedged a shard.
func (s *Server) RegisterFleet(name string, sup *fleet.Supervisor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.fleets {
		if s.fleets[i].name == name {
			s.fleets[i].sup = sup
			return
		}
	}
	s.fleets = append(s.fleets, fleetSource{name: name, sup: sup})
}

// fleetReport is one fleet's JSON document on /debug/fleet.
type fleetReport struct {
	Name string              `json:"name"`
	Snap fleet.FleetSnapshot `json:"fleet"`
}

func (s *Server) snapshotFleets() []fleetSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]fleetSource(nil), s.fleets...)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	fleets := s.snapshotFleets()
	if r.URL.Query().Get("format") == "json" {
		reports := make([]fleetReport, 0, len(fleets))
		for _, f := range fleets {
			reports = append(reports, fleetReport{Name: f.name, Snap: f.sup.Snapshot()})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(reports)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(fleets) == 0 {
		fmt.Fprintln(w, "(no fleet supervisors registered)")
		return
	}
	for _, f := range fleets {
		if f.name != "" {
			fmt.Fprintf(w, "== %s ==\n", f.name)
		}
		snap := f.sup.Snapshot()
		fmt.Fprint(w, snap.Format())
	}
}

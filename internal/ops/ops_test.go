package ops_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/eventloop"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/ops"
	"doppio/internal/sockets"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// deadlockProgram parks a worker in Object.wait with nobody to notify
// it, then joins it from main: both threads block forever and the
// runtime's deadlock detector fires after the event loop drains.
const deadlockProgram = `
class Waiter extends Thread {
    static Object lock = new Object();
    public void run() {
        synchronized (lock) {
            lock.wait();
        }
    }
}

public class Main {
    public static void main(String[] args) {
        Waiter w = new Waiter();
        w.start();
        w.join();
    }
}`

// TestDeadlockPostMortem is the acceptance test for the post-mortem
// path: a deliberately deadlocked JVM program must yield a report that
// names every blocked thread with its Completion label and carries the
// flight-recorder tail, in both the text and JSON renderings.
func TestDeadlockPostMortem(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(4096)
	classes, cerr := rt.CompileWith(map[string]string{"Main.mj": deadlockProgram})
	if cerr != nil {
		t.Fatalf("compile: %v", cerr)
	}
	win := browser.NewWindow(browser.Chrome28)
	win.EnableTelemetry(hub)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		Timeslice:        2 * time.Millisecond,
	})
	err := vm.RunMain("Main", nil)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("RunMain = %v, want deadlock error", err)
	}

	rep := ops.Collect(hub, ops.Source{
		Name:    "jvm",
		Runtime: vm.Runtime(),
		Heap:    vm.Heap(),
	}, "deadlock", err.Error())

	if rep.Scheduler == nil {
		t.Fatal("report has no scheduler dump")
	}
	blocked := rep.Scheduler.Blocked()
	if len(blocked) < 2 {
		t.Fatalf("blocked threads = %d, want >= 2 (waiter + joiner):\n%s",
			len(blocked), rep.Scheduler.Format())
	}
	labels := map[string]bool{}
	for _, b := range blocked {
		if b.BlockedOn == "" {
			t.Errorf("blocked thread %q#%d has no Completion label", b.Name, b.ID)
		}
		labels[b.BlockedOn] = true
	}
	for _, want := range []string{"jvm.native(java/lang/Object.wait(J)V)", "jvm.native(java/lang/Thread.join()V)"} {
		if !labels[want] {
			t.Errorf("no blocked thread labelled %q; labels: %v", want, labels)
		}
	}

	text := rep.Text()
	if !strings.Contains(text, "doppio post-mortem: deadlock") {
		t.Errorf("text missing post-mortem header:\n%s", text)
	}
	// Every blocked thread must appear by name, id, and label.
	for _, b := range blocked {
		line := fmt.Sprintf("%s#%d on %s", b.Name, b.ID, b.BlockedOn)
		if !strings.Contains(text, line) {
			t.Errorf("text missing blocked thread line %q:\n%s", line, text)
		}
	}
	if !strings.Contains(text, "== flight recorder ==") {
		t.Errorf("text missing flight tail:\n%s", text)
	}
	if !strings.Contains(text, "== unmanaged heap ==") {
		t.Errorf("text missing heap section:\n%s", text)
	}

	// The flight tail must include the block events for the deadlocked
	// completions — that is the black box that explains the hang.
	if len(rep.Flight) == 0 {
		t.Fatal("report flight tail is empty")
	}
	flightBlocks := map[string]bool{}
	for _, ev := range rep.Flight {
		if ev.Cat == "comp" && ev.Event == "block" {
			flightBlocks[ev.Label] = true
		}
	}
	if !flightBlocks["jvm.native(java/lang/Object.wait(J)V)"] {
		t.Errorf("flight tail has no comp/block for Object.wait; blocks: %v", flightBlocks)
	}

	// JSON rendering round-trips with the same content.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Reason    string `json:"reason"`
		Scheduler *struct {
			Threads []struct {
				Name      string `json:"name"`
				State     string `json:"state"`
				BlockedOn string `json:"blocked_on"`
			} `json:"threads"`
		} `json:"scheduler"`
		Flight []telemetry.FlightEvent `json:"flight"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if decoded.Reason != "deadlock" || decoded.Scheduler == nil || len(decoded.Flight) == 0 {
		t.Fatalf("JSON report incomplete: reason=%q scheduler=%v flight=%d",
			decoded.Reason, decoded.Scheduler, len(decoded.Flight))
	}
	jsonBlocked := 0
	for _, th := range decoded.Scheduler.Threads {
		if th.State == "blocked" && th.BlockedOn != "" {
			jsonBlocked++
		}
	}
	if jsonBlocked != len(blocked) {
		t.Errorf("JSON blocked threads = %d, want %d", jsonBlocked, len(blocked))
	}
}

func TestCollectVFSSection(t *testing.T) {
	hub := telemetry.NewHub()
	b := vfs.Stack(vfs.NewInMemory(),
		vfs.WithCache(vfs.CacheOptions{}),
		vfs.WithRetry(vfs.RetryOptions{}),
		vfs.WithTelemetry(hub))
	// Touch the stack so the stats are non-trivial.
	b.Stat("/", func(vfs.Stats, error) {})
	b.Stat("/", func(vfs.Stats, error) {})

	rep := ops.Collect(hub, ops.Source{Name: "fs", Backend: b}, "vfs", "")
	if rep.VFS == nil {
		t.Fatal("report has no VFS section")
	}
	if rep.VFS.Cache == nil || rep.VFS.Retry == nil {
		t.Fatalf("VFS section missing layers: cache=%v retry=%v", rep.VFS.Cache, rep.VFS.Retry)
	}
	if rep.VFS.Retry.Ops == 0 {
		t.Errorf("retry layer saw no ops")
	}
	text := rep.Text()
	if !strings.Contains(text, "== vfs (") || !strings.Contains(text, "breaker=") {
		t.Errorf("text missing vfs section:\n%s", text)
	}
}

// liveServer builds an ops server over a running event loop and
// returns the test HTTP server plus a shutdown func.
func liveServer(t *testing.T, hub *telemetry.Hub) (*httptest.Server, *eventloop.Loop, func()) {
	t.Helper()
	loop := eventloop.New(eventloop.Options{})
	rtc := core.NewRuntime(loop, core.Config{Telemetry: hub})

	s := ops.NewServer(hub)
	s.Register(ops.Source{Name: "browser-0", Loop: loop, Runtime: rtc})

	loop.AddPending() // keep the loop alive while handlers collect
	done := make(chan error, 1)
	go func() { done <- loop.Run() }()

	ts := httptest.NewServer(s.Handler())
	stop := func() {
		ts.Close()
		loop.DonePending()
		if err := <-done; err != nil {
			t.Errorf("loop.Run: %v", err)
		}
	}
	return ts, loop, stop
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerLiveEndpoints drives the HTTP endpoints against a running
// event loop: thread dumps are collected on the loop goroutine while
// it runs.
func TestServerLiveEndpoints(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(128)
	hub.Registry.Counter("core", "slices").Add(7)
	hub.Flight.Record("sched", "spawn", "worker", 1)

	ts, _, stop := liveServer(t, hub)
	defer stop()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "doppio_core_slices_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, ts.URL+"/debug/threads")
	if code != http.StatusOK {
		t.Fatalf("/debug/threads status = %d", code)
	}
	for _, want := range []string{"browser-0", "thread dump", "mechanism="} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/threads missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight status = %d", code)
	}
	if !strings.Contains(body, "spawn") || !strings.Contains(body, "worker") {
		t.Errorf("/debug/flight missing recorded event:\n%s", body)
	}

	_, body = get(t, ts.URL+"/debug/flight?format=json")
	var events []telemetry.FlightEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/debug/flight?format=json invalid: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0].Event != "spawn" {
		t.Errorf("flight JSON = %+v", events)
	}

	_, body = get(t, ts.URL+"/debug/threads?format=json")
	var reports []json.RawMessage
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatalf("/debug/threads?format=json invalid: %v\n%s", err, body)
	}
	if len(reports) != 1 {
		t.Errorf("threads JSON reports = %d, want 1", len(reports))
	}

	code, body = get(t, ts.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "browser-0") {
		t.Errorf("index status=%d body:\n%s", code, body)
	}

	// Source has no heap or VFS backend; endpoints degrade per-source
	// instead of failing.
	code, body = get(t, ts.URL+"/debug/heap")
	if code != http.StatusOK || !strings.Contains(body, "no unmanaged heap") {
		t.Errorf("/debug/heap status=%d body:\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/debug/vfs")
	if code != http.StatusOK || !strings.Contains(body, "no vfs backend") {
		t.Errorf("/debug/vfs status=%d body:\n%s", code, body)
	}
}

func TestServerDisabledFacilities(t *testing.T) {
	s := ops.NewServer(telemetry.NewHub()) // no flight, no tracer
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/debug/flight"); code != http.StatusNotFound {
		t.Errorf("/debug/flight without recorder: status = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without tracer: status = %d, want 404", code)
	}
	if code, body := get(t, ts.URL+"/debug/threads"); code != http.StatusOK ||
		!strings.Contains(body, "no sources registered") {
		t.Errorf("/debug/threads with no sources: status=%d body=%q", code, body)
	}
	// Prometheus endpoint serves an empty document, not an error.
	if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
}

// TestCollectOnLoopTimeout covers the wedged-loop path: the loop never
// runs the posted collection, so the caller gets an error plus a
// degraded report that still carries the flight tail.
func TestCollectOnLoopTimeout(t *testing.T) {
	hub := telemetry.NewHub().EnableFlight(16)
	hub.Flight.Record("loop", "watchdog", "stuck-task", 0)
	loop := eventloop.New(eventloop.Options{}) // never started: posts sit in the queue

	rep, err := ops.CollectOnLoop(hub, ops.Source{Name: "wedged", Loop: loop},
		"stall", "", 30*time.Millisecond)
	if err == nil {
		t.Fatal("CollectOnLoop on a dead loop returned no error")
	}
	if rep == nil || rep.Reason != "stall" {
		t.Fatalf("degraded report = %+v", rep)
	}
	if rep.Scheduler != nil {
		t.Error("degraded report has a scheduler dump despite the timeout")
	}
	if len(rep.Flight) == 0 || rep.Flight[0].Label != "stuck-task" {
		t.Errorf("degraded report lost the flight tail: %+v", rep.Flight)
	}
}

// TestTraceWindow exercises /debug/trace's windowed capture against a
// live tracer.
func TestTraceWindow(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	hub.Tracer.Instant(0, "test", "before-window")
	s := ops.NewServer(hub)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Record an event while the window is open.
	go func() {
		time.Sleep(200 * time.Millisecond)
		hub.Tracer.Instant(0, "test", "in-window")
	}()
	code, body := get(t, ts.URL+"/debug/trace?sec=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", code)
	}
	if err := telemetry.ValidateChromeTrace([]byte(body)); err != nil {
		t.Fatalf("trace window invalid: %v", err)
	}
	if !strings.Contains(body, "in-window") {
		t.Errorf("trace window missing event recorded during capture:\n%s", body)
	}
	if strings.Contains(body, "before-window") {
		t.Errorf("trace window leaked event recorded before capture:\n%s", body)
	}
}

// TestDebugFleetEndpoint registers a fleet supervisor and reads it
// back through /debug/fleet in both text and JSON form. Snapshots are
// lock-free with respect to shard loops, so the endpoint answers even
// while tenants run.
func TestDebugFleetEndpoint(t *testing.T) {
	sup := fleet.NewSupervisor(fleet.Config{Shards: 2, Profile: fleet.DefaultProfile()})
	defer sup.Close()
	ref, err := sup.Submit(fleet.Tenant{
		Label: "probe",
		Start: func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			rt := core.NewRuntime(env.Win.Loop, core.Config{})
			rt.Spawn("probe", core.RunnableFunc(func(th *core.Thread) core.RunResult {
				return core.Done
			}))
			rt.OnIdle(func() { done(nil) })
			rt.Start()
			return &fleet.Handle{Runtime: rt}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ref.Done()

	s := ops.NewServer(nil)
	s.RegisterFleet("test-fleet", sup)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/debug/fleet")
	if code != http.StatusOK {
		t.Fatalf("/debug/fleet status = %d", code)
	}
	for _, want := range []string{"test-fleet", "FLEET", "probe", "done"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/fleet missing %q:\n%s", want, body)
		}
	}

	_, body = get(t, ts.URL+"/debug/fleet?format=json")
	var reports []struct {
		Name string              `json:"name"`
		Snap fleet.FleetSnapshot `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatalf("/debug/fleet?format=json invalid: %v\n%s", err, body)
	}
	if len(reports) != 1 || reports[0].Name != "test-fleet" {
		t.Fatalf("fleet JSON = %+v", reports)
	}
	if reports[0].Snap.Completed != 1 || len(reports[0].Snap.Tenants) != 1 {
		t.Errorf("fleet snapshot = %+v", reports[0].Snap)
	}

	// Index advertises the endpoint.
	_, body = get(t, ts.URL+"/")
	if !strings.Contains(body, "/debug/fleet") {
		t.Errorf("index missing /debug/fleet:\n%s", body)
	}
}

// TestDebugSockEndpoint registers a live gateway, runs one multiplexed
// echo stream through it, and reads the result back via /debug/sock in
// both text and JSON form. Gateway snapshots are goroutine-safe, so
// the endpoint answers while the session is still open.
func TestDebugSockEndpoint(t *testing.T) {
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echoLn.Close()
	go func() {
		c, err := echoLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 1024)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				c.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	gw, err := sockets.NewGateway("127.0.0.1:0", echoLn.Addr().String(), sockets.GatewayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// One raw mux session with one echoed stream, kept open while the
	// endpoint is queried.
	conn, err := net.Dial("tcp", gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br, err := sockets.ClientHandshake(conn, "ops-test", sockets.MuxPath)
	if err != nil {
		t.Fatal(err)
	}
	m := sockets.NewMux(sockets.MuxConfig{
		Send: func(hdr, payload []byte) error {
			return sockets.WriteBinaryFrame(conn, hdr, payload)
		},
	})
	defer m.CloseSession(nil)
	go func() {
		for {
			f, err := sockets.ReadFrame(br)
			if err != nil {
				m.CloseSession(err)
				return
			}
			if f.Op == sockets.OpBinary {
				m.HandleFrame(f.Payload)
			}
		}
	}()
	st, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WaitOpen(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteBlocking([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	for off := 0; off < len(got); {
		n, err := st.ReadBlocking(got[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if string(got) != "ping" {
		t.Fatalf("echo = %q", got)
	}

	s := ops.NewServer(nil)
	s.RegisterGateway(gw)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/debug/sock")
	if code != http.StatusOK {
		t.Fatalf("/debug/sock status = %d", code)
	}
	for _, want := range []string{"gateway ->", "conns: plain=0 mux=1", "stream 1:", "open"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/sock missing %q:\n%s", want, body)
		}
	}

	_, body = get(t, ts.URL+"/debug/sock?format=json")
	var snaps []sockets.GatewaySnapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("/debug/sock?format=json invalid: %v\n%s", err, body)
	}
	if len(snaps) != 1 || snaps[0].MuxConns != 1 {
		t.Fatalf("sock JSON = %+v", snaps)
	}
	if snaps[0].Stats.DataIn == 0 || snaps[0].Stats.DataOut == 0 {
		t.Errorf("gateway data counters flat: %+v", snaps[0].Stats)
	}
	if len(snaps[0].Sessions) != 1 || len(snaps[0].Sessions[0].Streams) != 1 {
		t.Errorf("session snapshot = %+v", snaps[0].Sessions)
	}

	// Index advertises the endpoint.
	_, body = get(t, ts.URL+"/")
	if !strings.Contains(body, "/debug/sock") {
		t.Errorf("index missing /debug/sock:\n%s", body)
	}
}

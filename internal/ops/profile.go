// Guest-profile endpoints: /debug/profile serves the sampling
// profiler's folded stacks (collapsed-stack text by default — the
// flamegraph.pl / speedscope interchange format — or JSON), and
// /debug/guest-pprof serves the same data as a gzipped pprof protobuf
// so `go tool pprof` inspects guest code unmodified.
//
// Both endpoints window with ?sec=N by snapshot-delta: snapshot every
// registered profiler, sleep the window, snapshot again, and serve
// the difference merged across sources. ?sec=0 skips the wait and
// serves the cumulative profile since the profiler was created.
package ops

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"doppio/internal/profile"
)

// maxProfileWindow caps ?sec= so a handler cannot be parked for
// minutes holding a connection open.
const maxProfileWindow = 60

// parseProfileKind maps the ?kind= query value onto a profile kind.
func parseProfileKind(q string) (profile.Kind, bool) {
	switch q {
	case "", "cpu":
		return profile.CPU, true
	case "alloc":
		return profile.Alloc, true
	case "block":
		return profile.Block, true
	}
	return "", false
}

// profWindow captures the merged profile of every profiled source:
// the delta over a sec-second window, or the cumulative profile when
// sec is 0. The bool reports whether any source has a profiler at
// all. The wait aborts early if the client goes away.
func (s *Server) profWindow(r *http.Request, kind profile.Kind, sec int) (profile.Snapshot, bool) {
	srcs := s.snapshotSources()
	profs := make([]*profile.Profiler, 0, len(srcs))
	for _, src := range srcs {
		if src.Prof != nil {
			profs = append(profs, src.Prof)
		}
	}
	if len(profs) == 0 {
		return profile.Snapshot{Kind: kind}, false
	}
	if sec <= 0 {
		snaps := make([]profile.Snapshot, len(profs))
		for i, p := range profs {
			snaps[i] = p.Snapshot(kind)
		}
		return profile.Merge(snaps...), true
	}
	prev := make([]profile.Snapshot, len(profs))
	for i, p := range profs {
		prev[i] = p.Snapshot(kind)
	}
	select {
	case <-time.After(time.Duration(sec) * time.Second):
	case <-r.Context().Done():
	}
	deltas := make([]profile.Snapshot, len(profs))
	for i, p := range profs {
		deltas[i] = profile.Delta(prev[i], p.Snapshot(kind))
	}
	return profile.Merge(deltas...), true
}

// profileWindowSeconds parses ?sec= with a default and the shared cap.
func profileWindowSeconds(r *http.Request, def int) int {
	sec := def
	if q := r.URL.Query().Get("sec"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v >= 0 {
			sec = v
		}
	}
	if sec > maxProfileWindow {
		sec = maxProfileWindow
	}
	return sec
}

// handleProfile serves the folded guest profile:
// /debug/profile?sec=N&kind=cpu|alloc|block[&format=json].
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	kind, ok := parseProfileKind(r.URL.Query().Get("kind"))
	if !ok {
		http.Error(w, "unknown kind (want cpu, alloc, or block)", http.StatusBadRequest)
		return
	}
	sec := profileWindowSeconds(r, 1)
	snap, found := s.profWindow(r, kind, sec)
	if !found {
		http.Error(w, "guest profiling not enabled (run with -prof)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.WriteCollapsed(w)
}

// handleGuestPprof serves the guest profile as a gzipped pprof
// protobuf: /debug/guest-pprof?kind=cpu|alloc|block&sec=N. The
// default is the cumulative profile (sec=0), matching how pprof
// fetches heap-style endpoints; pass sec to capture a window.
func (s *Server) handleGuestPprof(w http.ResponseWriter, r *http.Request) {
	kind, ok := parseProfileKind(r.URL.Query().Get("kind"))
	if !ok {
		http.Error(w, "unknown kind (want cpu, alloc, or block)", http.StatusBadRequest)
		return
	}
	sec := profileWindowSeconds(r, 0)
	snap, found := s.profWindow(r, kind, sec)
	if !found {
		http.Error(w, "guest profiling not enabled (run with -prof)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=doppio-guest-%s.pb.gz", kind))
	snap.WritePprof(w, time.Duration(sec)*time.Second)
}

package ops

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"doppio/internal/sockets"
	"doppio/internal/telemetry"
)

// collectTimeout bounds how long a live handler waits for the event
// loop to run its collection task. A busy-but-healthy loop answers
// within a batch budget (~10 ms); a loop that cannot answer in this
// long is wedged, and the handler reports that instead of blocking.
const collectTimeout = 500 * time.Millisecond

// Server is the live ops endpoint: it serves the hub's metrics in
// Prometheus text exposition, thread dumps, the flight recorder,
// windowed Chrome-trace captures, VFS and heap state, and net/http/
// pprof — everything needed to inspect a running workload with curl.
// Register sources as they are created; all handlers tolerate having
// zero sources (the process-level endpoints still work).
type Server struct {
	hub *telemetry.Hub

	mu       sync.Mutex
	sources  []Source
	fleets   []fleetSource
	gateways []*sockets.Websockify
}

// NewServer creates a server over the hub (which may be nil; metric
// endpoints then serve empty documents).
func NewServer(hub *telemetry.Hub) *Server {
	return &Server{hub: hub}
}

// Hub returns the server's telemetry hub.
func (s *Server) Hub() *telemetry.Hub { return s.hub }

// Register adds (or, matching by name, replaces) an inspectable
// source. Safe to call while the server runs — doppio-bench registers
// each browser's runtime as the workload builds it.
func (s *Server) Register(src Source) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.sources {
		if s.sources[i].Name == src.Name {
			s.sources[i] = src
			return
		}
	}
	s.sources = append(s.sources, src)
}

func (s *Server) snapshotSources() []Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Source(nil), s.sources...)
}

// Handler returns the ops mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/threads", s.handleThreads)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/vfs", s.handleVFS)
	mux.HandleFunc("/debug/heap", s.handleHeap)
	mux.HandleFunc("/debug/proc", s.handleProc)
	mux.HandleFunc("/debug/jvm", s.handleJVM)
	mux.HandleFunc("/debug/fleet", s.handleFleet)
	mux.HandleFunc("/debug/sock", s.handleSock)
	mux.HandleFunc("/debug/profile", s.handleProfile)
	mux.HandleFunc("/debug/guest-pprof", s.handleGuestPprof)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the HTTP listener on addr (e.g. ":6060"; use
// "127.0.0.1:0" for an ephemeral port in tests) and serves in a
// background goroutine. It returns the bound address.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "doppio ops server")
	fmt.Fprintln(w, "  /metrics            Prometheus text exposition of the registry")
	fmt.Fprintln(w, "  /debug/threads      jstack-style thread dump (?format=json)")
	fmt.Fprintln(w, "  /debug/flight       flight-recorder tail (?n=100&format=json)")
	fmt.Fprintln(w, "  /debug/trace?sec=N  windowed Chrome-trace capture")
	fmt.Fprintln(w, "  /debug/vfs          cache / retry / breaker / fault state")
	fmt.Fprintln(w, "  /debug/heap         unmanaged-heap free-list map")
	fmt.Fprintln(w, "  /debug/proc         ps-style process table (pid, state, blocked-on)")
	fmt.Fprintln(w, "  /debug/jvm          per-engine quickening counters: sites, IC hits/misses, fusions, deopts (?format=json)")
	fmt.Fprintln(w, "  /debug/fleet        fleet supervisor: shards, tenants, evictions (?format=json)")
	fmt.Fprintln(w, "  /debug/sock         websockify gateway: stream windows, shed/reset counters (?format=json)")
	fmt.Fprintln(w, "  /debug/profile      guest profile, collapsed stacks (?sec=N&kind=cpu|alloc|block&format=json)")
	fmt.Fprintln(w, "  /debug/guest-pprof  guest profile as pprof protobuf, for `go tool pprof` (?kind=&sec=)")
	fmt.Fprintln(w, "  /debug/pprof/       Go runtime profiles")
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "sources (%d):\n", len(s.sources))
	for _, src := range s.sources {
		fmt.Fprintf(w, "  %s\n", src.Name)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.hub == nil {
		return
	}
	s.hub.Registry.Snapshot().WritePrometheus(w)
	// The flight recorder lives outside the registry (it is a ring,
	// not a metric), but its health — events seen, events already
	// overwritten, capacity — is exactly what an operator alerts on,
	// so it is exported alongside the registry series.
	if f := s.hub.Flight; f != nil {
		fmt.Fprintf(w, "# TYPE doppio_telemetry_flight_events_total counter\n")
		fmt.Fprintf(w, "doppio_telemetry_flight_events_total %d\n", f.Total())
		fmt.Fprintf(w, "# TYPE doppio_telemetry_flight_dropped_total counter\n")
		fmt.Fprintf(w, "doppio_telemetry_flight_dropped_total %d\n", f.Dropped())
		fmt.Fprintf(w, "# TYPE doppio_telemetry_flight_capacity gauge\n")
		fmt.Fprintf(w, "doppio_telemetry_flight_capacity %d\n", f.Cap())
	}
}

// Reports captures one report per registered source — what the debug
// endpoints serve, available programmatically for signal-dump paths.
func (s *Server) Reports(reason string) []*Report {
	return s.collectAll(reason)
}

// collectAll captures a report per source, each on its own loop.
// Collection errors become degraded reports, not handler failures —
// a wedged loop is exactly when the endpoints matter most.
func (s *Server) collectAll(reason string) []*Report {
	srcs := s.snapshotSources()
	out := make([]*Report, 0, len(srcs))
	for _, src := range srcs {
		r, err := CollectOnLoop(s.hub, src, reason, "", collectTimeout)
		if err != nil {
			r.Detail = err.Error()
		}
		out = append(out, r)
	}
	return out
}

func writeReports(w http.ResponseWriter, r *http.Request, reports []*Report, text func(*Report) string) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, "[")
		for i, rep := range reports {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			rep.WriteJSON(w)
		}
		fmt.Fprint(w, "]")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(reports) == 0 {
		fmt.Fprintln(w, "(no sources registered)")
		return
	}
	for _, rep := range reports {
		fmt.Fprint(w, text(rep))
	}
}

func (s *Server) handleThreads(w http.ResponseWriter, r *http.Request) {
	writeReports(w, r, s.collectAll("threads"), func(rep *Report) string {
		if rep.Scheduler == nil {
			return fmt.Sprintf("== %s ==\n(no runtime: %s)\n", rep.Source, rep.Detail)
		}
		head := ""
		if rep.Source != "" {
			head = "== " + rep.Source + " ==\n"
		}
		return head + rep.Scheduler.Format()
	})
}

func (s *Server) handleVFS(w http.ResponseWriter, r *http.Request) {
	writeReports(w, r, s.collectAll("vfs"), func(rep *Report) string {
		stub := &Report{Source: rep.Source, VFS: rep.VFS}
		if rep.VFS == nil {
			return fmt.Sprintf("== %s ==\n(no vfs backend: %s)\n", rep.Source, rep.Detail)
		}
		return stub.Text()
	})
}

func (s *Server) handleHeap(w http.ResponseWriter, r *http.Request) {
	writeReports(w, r, s.collectAll("heap"), func(rep *Report) string {
		stub := &Report{Source: rep.Source, Heap: rep.Heap}
		if rep.Heap == nil {
			return fmt.Sprintf("== %s ==\n(no unmanaged heap: %s)\n", rep.Source, rep.Detail)
		}
		return stub.Text()
	})
}

func (s *Server) handleJVM(w http.ResponseWriter, r *http.Request) {
	writeReports(w, r, s.collectAll("jvm"), func(rep *Report) string {
		if len(rep.JVM) == 0 {
			return fmt.Sprintf("== %s ==\n(no jvm engines registered: %s)\n", rep.Source, rep.Detail)
		}
		stub := &Report{Source: rep.Source, JVM: rep.JVM}
		return stub.Text()
	})
}

func (s *Server) handleProc(w http.ResponseWriter, r *http.Request) {
	writeReports(w, r, s.collectAll("proc"), func(rep *Report) string {
		if rep.Procs == nil {
			return fmt.Sprintf("== %s ==\n(no process kernel: %s)\n", rep.Source, rep.Detail)
		}
		head := ""
		if rep.Source != "" {
			head = "== " + rep.Source + " ==\n"
		}
		return head + FormatProcs(rep.Procs)
	})
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil || s.hub.Flight == nil {
		http.Error(w, "flight recorder not enabled (run with -flight)", http.StatusNotFound)
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, _ = strconv.Atoi(q)
	}
	events := s.hub.Flight.Tail(n)
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteFlightJSON(w, events)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "total=%d dropped=%d cap=%d\n",
		s.hub.Flight.Total(), s.hub.Flight.Dropped(), s.hub.Flight.Cap())
	fmt.Fprint(w, telemetry.FormatFlight(events))
}

// handleTrace captures a trace window: it notes the tracer's current
// sequence number, waits ?sec=N seconds (default 1, capped at 60),
// and returns every event recorded since — still inside the ring's
// retention — as a standalone Chrome-trace document.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil || s.hub.Tracer == nil {
		http.Error(w, "tracing not enabled (run with -trace)", http.StatusNotFound)
		return
	}
	sec := 1
	if q := r.URL.Query().Get("sec"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			sec = v
		}
	}
	if sec > 60 {
		sec = 60
	}
	start := s.hub.Tracer.Total()
	select {
	case <-time.After(time.Duration(sec) * time.Second):
	case <-r.Context().Done():
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=doppio-trace-%ds.json", sec))
	telemetry.WriteTraceJSON(w, s.hub.Tracer.EventsSince(start))
}

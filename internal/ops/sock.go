package ops

import (
	"encoding/json"
	"fmt"
	"net/http"

	"doppio/internal/sockets"
)

// RegisterGateway attaches a websockify gateway to the /debug/sock
// endpoint. Unlike runtime sources, a gateway snapshot needs no event
// loop — Websockify.Snapshot is safe from any goroutine — so the
// handler reads it directly. Multiple gateways may register (the soak
// harness runs one per transport); each appears as its own section.
func (s *Server) RegisterGateway(gw *sockets.Websockify) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gateways = append(s.gateways, gw)
}

func (s *Server) snapshotGateways() []sockets.GatewaySnapshot {
	s.mu.Lock()
	gws := append([]*sockets.Websockify(nil), s.gateways...)
	s.mu.Unlock()
	out := make([]sockets.GatewaySnapshot, 0, len(gws))
	for _, gw := range gws {
		out = append(out, gw.Snapshot())
	}
	return out
}

// handleSock serves the gateway view: per-session stream windows,
// credit state, and the shed/reset counters that tell an operator
// whether backpressure is engaging.
func (s *Server) handleSock(w http.ResponseWriter, r *http.Request) {
	snaps := s.snapshotGateways()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snaps)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(snaps) == 0 {
		fmt.Fprintln(w, "(no gateways registered)")
		return
	}
	for _, g := range snaps {
		fmt.Fprintf(w, "== gateway -> %s ==\n", g.Target)
		fmt.Fprintf(w, "conns: plain=%d mux=%d  shedding=%v (pauses=%d)\n",
			g.PlainConns, g.MuxConns, g.Paused, g.Pauses)
		st := g.Stats
		fmt.Fprintf(w, "streams: opened=%d accepted=%d shed=%d resets=%d\n",
			st.Opened, st.Accepted, st.Shed, st.Resets)
		fmt.Fprintf(w, "data: in=%d frames/%d B  out=%d frames/%d B  retx=%d dupacks=%d truncated=%d credits=%d\n",
			st.DataIn, st.BytesIn, st.DataOut, st.BytesOut,
			st.Retransmits, st.DupAcks, st.Truncated, st.Credits)
		if g.Faults.Ops > 0 {
			f := g.Faults
			fmt.Fprintf(w, "faults: ops=%d drops=%d resets=%d shorts=%d delays=%d\n",
				f.Ops, f.ErrsPre, f.ErrsPost, f.Shorts, f.Delays)
		}
		for i, sess := range g.Sessions {
			fmt.Fprintf(w, "session %d: streams=%d dead=%v\n", i, len(sess.Streams), sess.Dead)
			for _, str := range sess.Streams {
				fmt.Fprintf(w, "  stream %d: %s  swnd=%d queued=%d rbuf=%d paused=%v\n",
					str.ID, str.State, str.SendWindow, str.SendQueued,
					str.RecvBuffered, str.Paused)
			}
		}
	}
}

package workloads_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"doppio/internal/bench/workloads"
	"doppio/internal/jvm"
)

// runWorkload executes a workload main class on the native engine.
func runWorkload(t *testing.T, main string, fs jvm.HostFS, args ...string) string {
	t.Helper()
	classes, err := workloads.Classes()
	if err != nil {
		t.Fatalf("compile workloads: %v", err)
	}
	var stdout bytes.Buffer
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout: &stdout, Stderr: &stdout, FS: fs,
	})
	if err := vm.RunMain(main, args); err != nil {
		t.Fatalf("RunMain(%s): %v\n%s", main, err, stdout.String())
	}
	return stdout.String()
}

func TestDeltaBlue(t *testing.T) {
	out := runWorkload(t, "DeltaBlue", nil, "2")
	if !strings.HasPrefix(out, "deltablue check=") {
		t.Errorf("out = %q", out)
	}
	// Deterministic checksum: two runs agree.
	again := runWorkload(t, "DeltaBlue", nil, "2")
	if out != again {
		t.Errorf("nondeterministic: %q vs %q", out, again)
	}
}

func TestPiDigits(t *testing.T) {
	out := runWorkload(t, "PiDigits", nil, "30")
	want := "3.14159265358979323846264338327\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestPiDigits200StartsRight(t *testing.T) {
	out := runWorkload(t, "PiDigits", nil, "200")
	if !strings.HasPrefix(out, "3.1415926535897932384626433832795028841971693993751") {
		t.Errorf("pi prefix wrong: %q", out[:60])
	}
}

// memHostFS exposes a map as a HostFS for the FS-driven workloads.
type memHostFS struct{ files map[string][]byte }

func (m *memHostFS) ReadFile(p string, cb func([]byte, error)) {
	if d, ok := m.files[p]; ok {
		cb(d, nil)
		return
	}
	cb(nil, errNotFound(p))
}

type errNotFound string

func (e errNotFound) Error() string { return "not found: " + string(e) }

func (m *memHostFS) WriteFile(p string, d []byte, cb func(error)) {
	m.files[p] = append([]byte(nil), d...)
	cb(nil)
}
func (m *memHostFS) Append(p string, d []byte, cb func(error)) {
	m.files[p] = append(m.files[p], d...)
	cb(nil)
}
func (m *memHostFS) Stat(p string, cb func(int64, bool, bool)) {
	if d, ok := m.files[p]; ok {
		cb(int64(len(d)), false, true)
		return
	}
	// Directory if any file has the prefix.
	prefix := strings.TrimSuffix(p, "/") + "/"
	for f := range m.files {
		if strings.HasPrefix(f, prefix) || p == "/" {
			cb(0, true, true)
			return
		}
	}
	cb(0, false, false)
}
func (m *memHostFS) List(p string, cb func([]string, error)) {
	prefix := strings.TrimSuffix(p, "/") + "/"
	if p == "/" {
		prefix = "/"
	}
	seen := map[string]bool{}
	for f := range m.files {
		if !strings.HasPrefix(f, prefix) {
			continue
		}
		rest := f[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	cb(names, nil)
}
func (m *memHostFS) Delete(p string, cb func(error)) { delete(m.files, p); cb(nil) }
func (m *memHostFS) Mkdir(p string, cb func(error))  { cb(nil) }
func (m *memHostFS) Rename(a, b string, cb func(error)) {
	m.files[b] = m.files[a]
	delete(m.files, a)
	cb(nil)
}

func TestDisasmOverClassCorpus(t *testing.T) {
	classes, err := workloads.Classes()
	if err != nil {
		t.Fatal(err)
	}
	fs := &memHostFS{files: map[string][]byte{}}
	n := 0
	for name, data := range classes {
		fs.files["/classes/"+strings.ReplaceAll(name, "/", "_")+".class"] = data
		n++
	}
	out := runWorkload(t, "Disasm", fs, "/classes")
	if !strings.Contains(out, "disassembled ") {
		t.Fatalf("out = %q", out)
	}
	// The corpus has tens of thousands of instructions.
	var instrs, chars int
	if _, err := fmt.Sscanf(out, "disassembled %d instructions, %d chars", &instrs, &chars); err != nil {
		t.Fatalf("parse %q: %v", out, err)
	}
	if instrs < 10000 {
		t.Errorf("instrs = %d, implausibly few for %d classes", instrs, n)
	}
}

func TestMJParseOverRuntimeSources(t *testing.T) {
	fs := &memHostFS{files: map[string][]byte{}}
	for name, src := range workloads.Sources() {
		fs.files["/src/"+strings.ReplaceAll(name, "/", "_")] = []byte(src)
	}
	out := runWorkload(t, "MJParse", fs, "/src")
	if !strings.Contains(out, "tokens=") || !strings.Contains(out, "classes=") {
		t.Fatalf("out = %q", out)
	}
	var tokens, nclasses, methods, stmts, fields int
	if _, err := fmt.Sscanf(out, "tokens=%d classes=%d methods=%d statements=%d fields=%d",
		&tokens, &nclasses, &methods, &stmts, &fields); err != nil {
		t.Fatalf("parse %q: %v", out, err)
	}
	if tokens < 5000 || nclasses < 10 || methods < 50 {
		t.Errorf("implausible counts: %s", out)
	}
}

func TestMiniScript(t *testing.T) {
	out := runWorkload(t, "MiniScript", nil, "4")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("out = %q", out)
	}
	// recursive: ack(3,3)+fib(14)+tak(15,10,5) + ack(3,4)+fib(15)+tak(18,12,6)... verify format + determinism.
	if !strings.HasPrefix(lines[0], "recursive=") || !strings.HasPrefix(lines[1], "binary-trees=") {
		t.Errorf("out = %q", out)
	}
	again := runWorkload(t, "MiniScript", nil, "4")
	if out != again {
		t.Error("nondeterministic miniscript output")
	}
}

func TestScheme(t *testing.T) {
	out := runWorkload(t, "SchemeMain", nil, "6")
	if out != "nqueens(6)=4\n" {
		t.Errorf("out = %q (6-queens has 4 solutions)", out)
	}
	out8 := runWorkload(t, "SchemeMain", nil, "8")
	if out8 != "nqueens(8)=92\n" {
		t.Errorf("out = %q (8-queens has 92 solutions)", out8)
	}
}

// Package workloads embeds the benchmark programs of the paper's
// evaluation (§7), rewritten in MiniJava so the whole corpus is
// self-contained (DESIGN.md documents each substitution):
//
//   - Disasm     → javap      (class-file disassembly over the FS)
//   - MJParse    → javac      (compiler front end over source files)
//   - MiniScript → Rhino      (a JS-ish interpreter running SunSpider's
//     recursive and binary-trees kernels)
//   - SchemeMain → Kawa       (a Scheme interpreter running nqueens 8)
//   - DeltaBlue  → DeltaBlue  (Figure 4/5 microbenchmark)
//   - PiDigits   → pidigits   (Figure 4/5 microbenchmark)
package workloads

import (
	"embed"
	"fmt"
	"io/fs"
	"strings"
	"sync"

	"doppio/internal/jvm/rt"
)

//go:embed *.mj
var srcFS embed.FS

// Sources returns the workload sources keyed by file name.
func Sources() map[string]string {
	out := make(map[string]string)
	entries, err := fs.ReadDir(srcFS, ".")
	if err != nil {
		panic(fmt.Sprintf("workloads: %v", err))
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mj") {
			continue
		}
		data, err := srcFS.ReadFile(e.Name())
		if err != nil {
			panic(fmt.Sprintf("workloads: %v", err))
		}
		out["workloads/"+e.Name()] = string(data)
	}
	return out
}

var (
	once     sync.Once
	classes  map[string][]byte
	buildErr error
)

// Classes compiles (once) the runtime library plus every workload and
// returns all class files by internal name.
func Classes() (map[string][]byte, error) {
	once.Do(func() {
		classes, buildErr = rt.CompileWith(Sources())
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return classes, nil
}

// MainClasses maps workload ids to their main classes.
var MainClasses = map[string]string{
	"deltablue":  "DeltaBlue",
	"pidigits":   "PiDigits",
	"disasm":     "Disasm",
	"mjparse":    "MJParse",
	"miniscript": "MiniScript",
	"scheme":     "SchemeMain",
}

// CompileWith compiles the runtime library plus extra sources (no
// workloads), for callers that need ad-hoc programs.
func CompileWith(extra map[string]string) (map[string][]byte, error) {
	return rt.CompileWith(extra)
}

package bench

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/sockets"
	"doppio/internal/umheap"
	"doppio/internal/vfs"
)

// FeatureRow is one row of Table 1.
type FeatureRow struct {
	Category string
	Feature  string
	// Systems maps system name → supported. The Doppio column is
	// filled by live probes against this implementation; comparator
	// columns restate the paper's Table 1.
	Systems map[string]bool
	// ProbeErr carries a probe failure for the Doppio column.
	ProbeErr error
}

// Table1Systems lists the comparison systems in the paper's column
// order.
var Table1Systems = []string{"DoppioJVM", "GWT", "Emscripten", "ASM.js", "IL2JS", "WeScheme"}

// Table1 reproduces the paper's feature comparison. The DoppioJVM
// column is not transcribed — each feature is verified by actually
// exercising this implementation; a probe failure marks the cell
// false and records the error.
func Table1() []FeatureRow {
	type probe struct {
		category, feature string
		others            map[string]bool
		fn                func() error
	}
	probes := []probe{
		{"OS services", "File system (browser-based)",
			map[string]bool{"GWT": false, "Emscripten": true, "ASM.js": false, "IL2JS": false, "WeScheme": false},
			probeFileSystem},
		{"OS services", "Unmanaged heap",
			map[string]bool{"GWT": false, "Emscripten": true, "ASM.js": true, "IL2JS": false, "WeScheme": false},
			probeUnmanagedHeap},
		{"OS services", "Sockets",
			map[string]bool{"GWT": false, "Emscripten": true, "ASM.js": false, "IL2JS": false, "WeScheme": false},
			probeSockets},
		{"Execution support", "Automatic event segmentation",
			map[string]bool{"GWT": false, "Emscripten": false, "ASM.js": false, "IL2JS": false, "WeScheme": true},
			probeEventSegmentation},
		{"Execution support", "Synchronous API support",
			map[string]bool{"GWT": false, "Emscripten": false, "ASM.js": false, "IL2JS": false, "WeScheme": true},
			probeSyncAPI},
		{"Execution support", "Multithreading support",
			map[string]bool{"GWT": false, "Emscripten": false, "ASM.js": false, "IL2JS": false, "WeScheme": true},
			probeMultithreading},
		{"Execution support", "Works entirely in the browser",
			map[string]bool{"GWT": true, "Emscripten": true, "ASM.js": true, "IL2JS": true, "WeScheme": false},
			probeInBrowser},
		{"Language services", "Exceptions",
			map[string]bool{"GWT": true, "Emscripten": true, "ASM.js": true, "IL2JS": true, "WeScheme": true},
			probeExceptions},
		{"Language services", "Reflection",
			map[string]bool{"GWT": false, "Emscripten": false, "ASM.js": false, "IL2JS": false, "WeScheme": false},
			probeReflection},
	}
	var out []FeatureRow
	for _, p := range probes {
		row := FeatureRow{Category: p.category, Feature: p.feature, Systems: map[string]bool{}}
		for k, v := range p.others {
			row.Systems[k] = v
		}
		err := p.fn()
		row.Systems["DoppioJVM"] = err == nil
		row.ProbeErr = err
		out = append(out, row)
	}
	return out
}

// --- Table 1 probes: each exercises the real implementation ---

func probeFileSystem() error {
	env := fleet.NewEnv(browser.Chrome28, nil)
	fs := env.NewFS(vfs.NewInMemory())
	var got []byte
	err := fleet.Drive(env.Win.Loop, "probe", func(done func(error)) {
		fs.WriteFile("/probe.txt", []byte("persisted"), func(err error) {
			if err != nil {
				done(err)
				return
			}
			fs.ReadFile("/probe.txt", func(b *buffer.Buffer, err error) {
				if err == nil {
					got = b.Bytes()
				}
				done(err)
			})
		})
	})
	if err != nil {
		return err
	}
	if string(got) != "persisted" {
		return fmt.Errorf("file system round trip failed")
	}
	return nil
}

func probeUnmanagedHeap() error {
	h := umheap.New(4096, true, nil)
	addr, err := h.Malloc(16)
	if err != nil {
		return err
	}
	h.StoreI32(addr, -123456)
	if h.LoadI32(addr) != -123456 {
		return fmt.Errorf("heap round trip failed")
	}
	return h.Free(addr)
}

func probeSockets() error {
	// Full §5.3 pipeline: browser socket → Websockify → TCP echo.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 64)
		n, _ := conn.Read(buf)
		conn.Write(buf[:n])
	}()
	proxy, err := sockets.NewWebsockify("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		return err
	}
	defer proxy.Close()
	env := fleet.NewEnv(browser.Chrome28, nil)
	var got string
	if err := fleet.Drive(env.Win.Loop, "probe", func(done func(error)) {
		sockets.Connect(env.Win, proxy.Addr(), func(s *sockets.Socket, err error) {
			if err != nil {
				done(err)
				return
			}
			s.Write([]byte("probe")).Then(func(_ interface{}, err error) {
				if err != nil {
					done(err)
					return
				}
				s.Read(16).Then(func(v interface{}, err error) {
					data, _ := v.([]byte)
					got = string(data)
					s.Close()
					done(err)
				})
			})
		})
	}); err != nil {
		return err
	}
	if got != "probe" {
		return fmt.Errorf("socket echo returned %q", got)
	}
	return nil
}

func probeEventSegmentation() error {
	p := browser.Chrome28
	p.WatchdogLimit = 40 * time.Millisecond
	win := browser.NewWindow(p)
	rt := core.NewRuntime(win.Loop, core.Config{Timeslice: 4 * time.Millisecond})
	steps := 0
	rt.Spawn("probe", core.RunnableFunc(func(t *core.Thread) core.RunResult {
		for steps < 2000 {
			end := time.Now().Add(50 * time.Microsecond)
			for time.Now().Before(end) {
			}
			steps++
			if t.CheckSuspend() {
				return core.Yield
			}
		}
		return core.Done
	}))
	if err := fleet.Drive(win.Loop, "probe", func(done func(error)) {
		rt.OnIdle(func() { done(nil) })
		rt.Start()
	}); err != nil {
		return fmt.Errorf("watchdog killed segmented execution: %w", err)
	}
	if rt.Stats().Suspensions == 0 {
		return fmt.Errorf("never suspended")
	}
	return nil
}

func probeSyncAPI() error {
	// Run a JVM program whose synchronous file read is served by the
	// asynchronous Doppio FS via suspend-and-resume.
	out, err := runProbeProgram(`
import doppio.io.FileSystem;
public class Probe {
    public static void main(String[] args) {
        byte[] pre = new byte[1];
        pre[0] = (byte) 65;
        FileSystem.writeFile("/f", pre);
        byte[] data = FileSystem.readFile("/f");
        System.out.println((char) data[0]);
    }
}`)
	if err != nil {
		return err
	}
	if out != "A\n" {
		return fmt.Errorf("sync-over-async read returned %q", out)
	}
	return nil
}

func probeMultithreading() error {
	out, err := runProbeProgram(`
class W extends Thread {
    static int n;
    public void run() { n++; }
}
public class Probe {
    public static void main(String[] args) {
        W a = new W();
        W b = new W();
        a.start();
        b.start();
        a.join();
        b.join();
        System.out.println(W.n);
    }
}`)
	if err != nil {
		return err
	}
	if out != "2\n" {
		return fmt.Errorf("threads produced %q", out)
	}
	return nil
}

func probeInBrowser() error {
	// Everything executes on the single event-loop goroutine of a
	// simulated browser window; a whole program run proves it.
	out, err := runProbeProgram(`
public class Probe {
    public static void main(String[] args) {
        System.out.println("in-browser");
    }
}`)
	if err != nil {
		return err
	}
	if out != "in-browser\n" {
		return fmt.Errorf("unexpected output %q", out)
	}
	return nil
}

func probeExceptions() error {
	out, err := runProbeProgram(`
public class Probe {
    public static void main(String[] args) {
        try {
            int[] a = new int[1];
            a[2] = 1;
        } catch (ArrayIndexOutOfBoundsException e) {
            System.out.println("caught");
        }
    }
}`)
	if err != nil {
		return err
	}
	if out != "caught\n" {
		return fmt.Errorf("exception handling produced %q", out)
	}
	return nil
}

func probeReflection() error {
	out, err := runProbeProgram(`
public class Probe {
    public static void main(String[] args) {
        Object o = "x";
        System.out.println(o.getClass().getName());
    }
}`)
	if err != nil {
		return err
	}
	if out != "java.lang.String\n" {
		return fmt.Errorf("reflection produced %q", out)
	}
	return nil
}

// runProbeProgram compiles and runs a Probe class on the Doppio engine
// in a Chrome window.
func runProbeProgram(src string) (string, error) {
	classes, err := compileProbe(src)
	if err != nil {
		return "", err
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Probe", nil); err != nil {
		return stdout.String(), err
	}
	return stdout.String(), nil
}

func compileProbe(src string) (map[string][]byte, error) {
	return workloadsCompile(map[string]string{"Probe.mj": src})
}

// workloadsCompile indirects through rt to avoid an import cycle.
var workloadsCompile = func(extra map[string]string) (map[string][]byte, error) {
	return rtCompileWith(extra)
}

// StorageRow is one row of Table 2.
type StorageRow struct {
	Name          string
	Format        string
	Synchronous   bool
	MaxSize       string
	Compatibility string
	// Probed reports whether this implementation exercised the
	// mechanism successfully.
	Probed bool
}

// Table2 reproduces the storage-mechanism comparison, probing the
// mechanisms this reproduction models (localStorage and IndexedDB) and
// restating the rest from the paper.
func Table2() []StorageRow {
	rows := []StorageRow{
		{Name: "Cookies", Format: "String key/value pairs", Synchronous: true, MaxSize: "4KB", Compatibility: "Over 99%"},
		{Name: "localStorage", Format: "String key/value pairs", Synchronous: true, MaxSize: "5MB", Compatibility: "~90%"},
		{Name: "IndexedDB", Format: "Object database", Synchronous: false, MaxSize: "User-specified", Compatibility: "<50%"},
		{Name: "userBehavior", Format: "String key/value pairs", Synchronous: true, MaxSize: "1MB", Compatibility: "<40%"},
		{Name: "Web SQL", Format: "SQL database", Synchronous: false, MaxSize: "User-specified", Compatibility: "<25%"},
		{Name: "FileSystem", Format: "Binary blobs", Synchronous: false, MaxSize: "User-specified", Compatibility: "<20%"},
	}
	// Probe localStorage: synchronous round trip with quota.
	ls := browser.NewLocalStorage(64)
	if err := ls.SetItem("k", "v"); err == nil {
		if v, ok := ls.GetItem("k"); ok && v == "v" {
			rows[1].Probed = true
		}
	}
	// Probe IndexedDB: asynchronous round trip.
	win := browser.NewWindow(browser.Chrome28)
	ok := false
	err := fleet.Drive(win.Loop, "probe", func(done func(error)) {
		win.IndexedDB.Put("k", []byte("v"), func(error) {
			win.IndexedDB.Get("k", func(v []byte, found bool) {
				ok = found && string(v) == "v"
				done(nil)
			})
		})
	})
	if err == nil && ok {
		rows[2].Probed = true
	}
	return rows
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []FeatureRow) string {
	var b strings.Builder
	b.WriteString("Table 1: feature comparison (DoppioJVM column verified by live probes)\n")
	fmt.Fprintf(&b, "%-20s %-32s", "category", "feature")
	for _, s := range Table1Systems {
		fmt.Fprintf(&b, " %-10s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-32s", r.Category, r.Feature)
		for _, s := range Table1Systems {
			mark := " "
			if r.Systems[s] {
				mark = "Y"
			}
			fmt.Fprintf(&b, " %-10s", mark)
		}
		if r.ProbeErr != nil {
			fmt.Fprintf(&b, "  (probe failed: %v)", r.ProbeErr)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []StorageRow) string {
	var b strings.Builder
	b.WriteString("Table 2: browser persistent storage mechanisms\n")
	fmt.Fprintf(&b, "%-14s %-24s %-6s %-16s %-10s %s\n", "name", "format", "sync", "max size", "compat", "probed")
	for _, r := range rows {
		sync := ""
		if r.Synchronous {
			sync = "yes"
		}
		probed := ""
		if r.Probed {
			probed = "verified"
		}
		fmt.Fprintf(&b, "%-14s %-24s %-6s %-16s %-10s %s\n",
			r.Name, r.Format, sync, r.MaxSize, r.Compatibility, probed)
	}
	return b.String()
}

// rtCompileWith binds the runtime-library compiler.
func rtCompileWith(extra map[string]string) (map[string][]byte, error) {
	return workloads.CompileWith(extra)
}

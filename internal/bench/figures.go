package bench

import (
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/fstrace"
	"doppio/internal/vfs"
)

// Fig3Cell is one bar of Figure 3: a workload on a browser.
type Fig3Cell struct {
	Workload string
	Browser  string
	Doppio   time.Duration
	Native   time.Duration
	Slowdown float64
	Output   string // for cross-engine output verification
}

// Fig3Result aggregates the Figure 3 sweep.
type Fig3Result struct {
	Cells []Fig3Cell
	// GeoMean maps browser name to the geometric-mean slowdown across
	// workloads (the paper reports 32× for Chrome).
	GeoMean map[string]float64
}

// RunFig3 reproduces Figure 3: DoppioJVM vs the native baseline on the
// four macro workloads across the browser population.
func RunFig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig3Result{GeoMean: map[string]float64{}}
	for _, spec := range Fig3Workloads {
		nativeT, nativeOut, err := RunNative(spec, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("native %s: %w", spec.ID, err)
		}
		for _, p := range cfg.Browsers {
			run, err := RunDoppio(spec, cfg.Scale, p, cfg)
			if err != nil {
				return nil, err
			}
			if run.Output != nativeOut {
				return nil, fmt.Errorf("%s on %s: engines disagree:\nnative: %q\ndoppio: %q",
					spec.ID, p.Name, nativeOut, run.Output)
			}
			res.Cells = append(res.Cells, Fig3Cell{
				Workload: spec.ID,
				Browser:  p.Name,
				Doppio:   run.Wall,
				Native:   nativeT,
				Slowdown: float64(run.Wall) / float64(nativeT),
				Output:   run.Output,
			})
		}
	}
	for _, p := range cfg.Browsers {
		logSum, n := 0.0, 0
		for _, c := range res.Cells {
			if c.Browser == p.Name {
				logSum += math.Log(c.Slowdown)
				n++
			}
		}
		if n > 0 {
			res.GeoMean[p.Name] = math.Exp(logSum / float64(n))
		}
	}
	return res, nil
}

// MicroResult is one Figure 4/5 measurement.
type MicroResult struct {
	Workload     string
	Browser      string
	Native       time.Duration
	Wall         time.Duration
	CPU          time.Duration
	Suspended    time.Duration
	Suspensions  int
	WallSlowdown float64
	CPUSlowdown  float64
	SuspendPct   float64 // Figure 5: suspended time / wall time
}

// RunFig45 reproduces Figures 4 and 5: the DeltaBlue and pidigits
// microbenchmarks with CPU time, wall-clock time, and suspension
// accounting per browser.
func RunFig45(cfg Config) ([]MicroResult, error) {
	cfg = cfg.withDefaults()
	var out []MicroResult
	for _, spec := range MicroWorkloads {
		nativeT, nativeOut, err := RunNative(spec, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("native %s: %w", spec.ID, err)
		}
		for _, p := range cfg.Browsers {
			run, err := RunDoppio(spec, cfg.Scale, p, cfg)
			if err != nil {
				return nil, err
			}
			if run.Output != nativeOut {
				return nil, fmt.Errorf("%s on %s: engines disagree", spec.ID, p.Name)
			}
			out = append(out, MicroResult{
				Workload:     spec.ID,
				Browser:      p.Name,
				Native:       nativeT,
				Wall:         run.Wall,
				CPU:          run.CPU,
				Suspended:    run.Suspended,
				Suspensions:  run.Suspensions,
				WallSlowdown: float64(run.Wall) / float64(nativeT),
				CPUSlowdown:  float64(run.CPU) / float64(nativeT),
				SuspendPct:   100 * float64(run.Suspended) / float64(run.Wall),
			})
		}
	}
	return out, nil
}

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Browser  string
	Doppio   time.Duration
	Native   time.Duration
	Slowdown float64
	Ops      int
}

// RunFig6 reproduces Figure 6: the recorded javac file system trace
// replayed against the Doppio file system per browser, versus the
// native OS file system baseline.
func RunFig6(cfg Config, params fstrace.GenerateParams) ([]Fig6Row, error) {
	cfg = cfg.withDefaults()
	trace := fstrace.Generate(params)

	// Baseline: the host OS file system.
	root, err := os.MkdirTemp("", "doppio-fig6-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	if err := fstrace.SeedOS(root, trace); err != nil {
		return nil, err
	}
	// Warm the page cache so the baseline measures file system call
	// overhead (what Figure 6 compares) rather than cold disk reads.
	if _, err := fstrace.ReplayOS(root, trace); err != nil {
		return nil, err
	}
	start := time.Now()
	nativeOK, err := fstrace.ReplayOS(root, trace)
	if err != nil {
		return nil, err
	}
	nativeT := time.Since(start)
	if nativeOK != len(trace.Ops) {
		return nil, fmt.Errorf("bench: native replay only completed %d/%d ops", nativeOK, len(trace.Ops))
	}

	var rows []Fig6Row
	for _, p := range cfg.Browsers {
		env := fleet.NewEnv(p, nil)
		win := env.Win
		// The Doppio file system runs over the same host directory as
		// the baseline (via the asynchronous OS backend), so the
		// comparison isolates Doppio's FS machinery — front-end
		// bookkeeping, buffer copies, and one event-loop round trip
		// per operation — exactly what Figure 6 measures.
		fs := vfs.New(win.Loop, env.Bufs, vfs.Instrument(vfs.NewOSBackend(win.Loop, root), cfg.Telemetry))
		// Warm pass (mirrors the baseline's warm page cache).
		if err := fleet.Drive(win.Loop, "warm", func(done func(error)) {
			fstrace.ReplayVFS(win.Loop, fs, trace, func(_ int, err error) { done(err) })
		}); err != nil {
			return nil, err
		}
		var okOps int
		t0 := time.Now()
		if err := fleet.Drive(win.Loop, "replay", func(done func(error)) {
			// The timed pass records per-op latencies when telemetry is
			// configured (the warm pass stays unobserved).
			fstrace.ReplayVFSWith(win.Loop, fs, trace, cfg.Telemetry, func(ok int, err error) {
				okOps = ok
				done(err)
			})
		}); err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		if okOps != len(trace.Ops) {
			return nil, fmt.Errorf("bench: %s replay only completed %d/%d ops", p.Name, okOps, len(trace.Ops))
		}
		rows = append(rows, Fig6Row{
			Browser:  p.Name,
			Doppio:   elapsed,
			Native:   nativeT,
			Slowdown: float64(elapsed) / float64(nativeT),
			Ops:      okOps,
		})
	}
	return rows, nil
}

// --- rendering ---

// FormatFig3 renders the Figure 3 result as a text table.
func FormatFig3(r *Fig3Result) string {
	var b strings.Builder
	b.WriteString("Figure 3: DoppioJVM slowdown vs native baseline (wall clock)\n")
	fmt.Fprintf(&b, "%-22s %-14s %12s %12s %9s\n", "workload", "browser", "doppio", "native", "slowdown")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-22s %-14s %12s %12s %8.1fx\n",
			c.Workload, c.Browser, c.Doppio.Round(time.Millisecond),
			c.Native.Round(time.Millisecond), c.Slowdown)
	}
	for _, p := range browser.Population() {
		if gm, ok := r.GeoMean[p.Name]; ok {
			fmt.Fprintf(&b, "geometric mean (%s): %.1fx\n", p.Name, gm)
		}
	}
	return b.String()
}

// FormatFig45 renders Figures 4 and 5 as text tables.
func FormatFig45(rows []MicroResult) string {
	var b strings.Builder
	b.WriteString("Figure 4: microbenchmark slowdown vs native (CPU and wall clock)\n")
	fmt.Fprintf(&b, "%-11s %-14s %10s %10s %10s %9s %9s\n",
		"workload", "browser", "native", "cpu", "wall", "cpu-x", "wall-x")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-14s %10s %10s %10s %8.1fx %8.1fx\n",
			r.Workload, r.Browser, r.Native.Round(time.Millisecond),
			r.CPU.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
			r.CPUSlowdown, r.WallSlowdown)
	}
	b.WriteString("\nFigure 5: suspension time as a percentage of total runtime\n")
	fmt.Fprintf(&b, "%-11s %-14s %12s %12s %10s\n", "workload", "browser", "suspended", "suspensions", "pct")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-14s %12s %12d %9.2f%%\n",
			r.Workload, r.Browser, r.Suspended.Round(time.Millisecond), r.Suspensions, r.SuspendPct)
	}
	return b.String()
}

// FormatFig6 renders Figure 6 as a text table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: Doppio file system vs native FS on the javac trace\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %9s %8s\n", "browser", "doppio", "native", "slowdown", "ops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %12s %8.2fx %8d\n",
			r.Browser, r.Doppio.Round(time.Millisecond), r.Native.Round(time.Millisecond),
			r.Slowdown, r.Ops)
	}
	return b.String()
}

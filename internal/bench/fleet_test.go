package bench

import (
	"testing"
	"time"
)

// TestRunFleetSmall runs a miniature sweep of the fleet benchmark:
// every workload mix must complete cleanly (no failures, no
// evictions) with every tenant's slice counter visibly nonzero.
func TestRunFleetSmall(t *testing.T) {
	for _, workload := range []string{"mixed", "pipes"} {
		p := FleetParams{
			Tenants:  []int{4},
			Shards:   2,
			Workload: workload,
			Scale:    1,
		}
		res, err := RunFleet(p)
		if err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		if len(res.Points) != 1 {
			t.Fatalf("%s: %d points, want 1", workload, len(res.Points))
		}
		pt := res.Points[0]
		for _, arm := range []FleetArm{pt.Single, pt.Multi} {
			if arm.Failed != 0 || arm.Evictions != 0 {
				t.Errorf("%s shards=%d: failed=%d evictions=%d",
					workload, arm.Shards, arm.Failed, arm.Evictions)
			}
			if arm.Throughput <= 0 {
				t.Errorf("%s shards=%d: throughput %v", workload, arm.Shards, arm.Throughput)
			}
			if arm.P50 <= 0 || arm.P999 < arm.P50 {
				t.Errorf("%s shards=%d: p50=%v p999=%v", workload, arm.Shards, arm.P50, arm.P999)
			}
			if arm.MinTenantSlices <= 0 {
				t.Errorf("%s shards=%d: min tenant slices %d, want > 0",
					workload, arm.Shards, arm.MinTenantSlices)
			}
		}
		if got := FormatFleet(res); got == "" {
			t.Errorf("%s: empty format", workload)
		}
	}
}

// TestNearestRank pins the percentile convention: exact nearest-rank
// over the raw sample, no interpolation.
func TestNearestRank(t *testing.T) {
	sample := make([]time.Duration, 100)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := nearestRank(sample, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q*100, got, c.want)
		}
	}
	if nearestRank(nil, 0.5) != 0 {
		t.Error("empty sample should yield 0")
	}
	one := []time.Duration{7 * time.Millisecond}
	if got := nearestRank(one, 0.999); got != one[0] {
		t.Errorf("singleton p999 = %v", got)
	}
}

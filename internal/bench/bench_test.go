package bench

import (
	"strings"
	"testing"

	"doppio/internal/browser"
	"doppio/internal/fstrace"
)

// quickCfg runs figure drivers at minimum scale with the engine-speed
// model off: these tests check correctness and plumbing; the taxed,
// paper-shaped sweeps run under `go test -bench` and cmd/doppio-bench.
func quickCfg() Config {
	return Config{
		Scale:            1,
		Browsers:         []browser.Profile{browser.Chrome28},
		DisableEngineTax: true,
	}
}

func TestFig3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	res, err := RunFig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(Fig3Workloads) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Slowdown <= 1.0 {
			t.Errorf("%s on %s: slowdown %.2fx — DoppioJVM should never beat the native baseline",
				c.Workload, c.Browser, c.Slowdown)
		}
	}
	rendered := FormatFig3(res)
	if !strings.Contains(rendered, "geometric mean") {
		t.Errorf("rendering missing geomean:\n%s", rendered)
	}
}

func TestFig45Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	cfg := quickCfg()
	cfg.Browsers = []browser.Profile{browser.Chrome28, browser.IE10}
	rows, err := RunFig45(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MicroWorkloads)*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WallSlowdown < 1 {
			t.Errorf("%s on %s: wall slowdown %.2f < 1", r.Workload, r.Browser, r.WallSlowdown)
		}
		if r.CPUSlowdown > r.WallSlowdown*1.05 {
			t.Errorf("%s on %s: CPU slowdown %.2f exceeds wall %.2f", r.Workload, r.Browser, r.CPUSlowdown, r.WallSlowdown)
		}
		// Figure 5's shape: suspension is a small fraction of runtime
		// on fast-resumption browsers.
		if r.Suspensions > 0 && r.SuspendPct > 50 {
			t.Errorf("%s on %s: suspended %.1f%% of runtime", r.Workload, r.Browser, r.SuspendPct)
		}
	}
	out := FormatFig45(rows)
	if !strings.Contains(out, "Figure 5") {
		t.Error("rendering missing Figure 5 section")
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep is slow")
	}
	cfg := quickCfg()
	cfg.Browsers = []browser.Profile{browser.Chrome28, browser.IE10}
	rows, err := RunFig6(cfg, fstrace.GenerateParams{
		Ops: 400, UniqueFiles: 100, BytesRead: 400_000, BytesWritten: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ops != 400 {
			t.Errorf("%s completed %d ops", r.Browser, r.Ops)
		}
	}
	if out := FormatFig6(rows); !strings.Contains(out, "Figure 6") {
		t.Error("rendering broken")
	}
}

func TestTable1AllProbesPass(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want the paper's 9 features", len(rows))
	}
	for _, r := range rows {
		if !r.Systems["DoppioJVM"] {
			t.Errorf("Table 1 probe failed for %q: %v", r.Feature, r.ProbeErr)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Automatic event segmentation") {
		t.Error("rendering broken")
	}
}

func TestTable2Probes(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 mechanisms", len(rows))
	}
	byName := map[string]StorageRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !byName["localStorage"].Probed {
		t.Error("localStorage probe failed")
	}
	if !byName["IndexedDB"].Probed {
		t.Error("IndexedDB probe failed")
	}
	if !byName["localStorage"].Synchronous || byName["IndexedDB"].Synchronous {
		t.Error("synchrony column wrong")
	}
	if out := FormatTable2(rows); !strings.Contains(out, "localStorage") {
		t.Error("rendering broken")
	}
}

func TestEngineTaxOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	// With the engine-speed model ON, the modelled browser diversity
	// must order the bars: IE8 (slowest engine + setTimeout
	// resumption) slower than Chrome on the same CPU-bound workload.
	spec := WorkloadSpec{ID: "pidigits", Main: "PiDigits",
		Args: func(int) []string { return []string{"25"} }}
	cfg := Config{Scale: 1}
	chrome, err := RunDoppio(spec, 1, browser.Chrome28, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ie8, err := RunDoppio(spec, 1, browser.IE8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ie8.Wall <= chrome.Wall {
		t.Errorf("IE8 (%v) not slower than Chrome (%v)", ie8.Wall, chrome.Wall)
	}
	// And the taxed Chrome run lands well above the native baseline.
	nativeT, _, err := RunNative(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(chrome.Wall) / float64(nativeT)
	if ratio < 5 {
		t.Errorf("taxed Chrome slowdown %.1fx implausibly low", ratio)
	}
}

// Gateway soak benchmark: N logical echo connections through the
// websockify gateway, once as N plain one-stream WebSocket
// connections and once as N mux streams packed onto N/StreamsPerConn
// multiplexed sessions — equal work, same transport, so the A/B
// isolates what the framing and flow control cost (BENCH_sock.json).
// A separate shed phase drives the gateway past its ShedDepth and
// measures the refusal/recovery behavior the fleet layer depends on.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"doppio/internal/sockets"
)

// SockParams tunes the soak.
type SockParams struct {
	// Conns is the sweep of logical connection counts; default
	// {1000, 5000, 10000}.
	Conns []int
	// StreamsPerConn is how many mux streams ride one WebSocket
	// session in the mux arm; default 100 (so 10k conns = 100
	// sessions). The plain arm always uses one connection per stream.
	StreamsPerConn int
	// Msgs is echo round trips per stream; default 4.
	Msgs int
	// Size is the echo message size in bytes; default 256.
	Size int
	// Window is the per-stream credit window; 0 = the 64 KiB default.
	Window int
	// ShedDepth is the shed phase's queue-depth threshold; default 8.
	ShedDepth int
	// Transport picks how bytes move: "mem" (default) runs the whole
	// soak over in-memory pipes — a 10k-connection sweep on real TCP
	// needs ~4 fds per connection, past typical fd limits — while "tcp"
	// uses real loopback TCP (sensible up to ~2k conns).
	Transport string
	// Check verifies every echoed byte against the sent pattern and
	// is the CI smoke's gate (zero lost frames, nonzero shed).
	Check bool
}

func (p SockParams) withDefaults() SockParams {
	if len(p.Conns) == 0 {
		p.Conns = []int{1000, 5000, 10000}
	}
	if p.StreamsPerConn <= 0 {
		p.StreamsPerConn = 100
	}
	if p.Msgs <= 0 {
		p.Msgs = 4
	}
	if p.Size <= 0 {
		p.Size = 256
	}
	if p.ShedDepth <= 0 {
		p.ShedDepth = 8
	}
	if p.Transport == "" {
		p.Transport = "mem"
	}
	return p
}

// SockArm is one mode's measurement at one connection count.
type SockArm struct {
	Mode string `json:"mode"` // "plain" or "mux"
	// Transports is WebSocket connections actually opened (== streams
	// in plain mode, streams/StreamsPerConn sessions in mux mode).
	Transports int `json:"transports"`
	Streams    int `json:"streams"`
	// Wall is first-dial to last-echo.
	Wall       time.Duration `json:"wall_ns"`
	Throughput float64       `json:"msgs_per_sec"`
	// Latency percentiles over per-message echo round trips,
	// nearest-rank on the raw sample (no interpolation).
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	// Lost counts streams whose echo came back short, corrupt, or
	// errored — must be zero (go-back-N repairs the data plane).
	Lost int64 `json:"lost"`
	// Retransmits is the client sessions' go-back-N resend total (mux
	// arm only; zero on a clean transport).
	Retransmits int64 `json:"retransmits"`
}

// SockPoint compares both arms at one connection count.
type SockPoint struct {
	Conns int     `json:"conns"`
	Plain SockArm `json:"plain"`
	Mux   SockArm `json:"mux"`
	// P50Ratio is plain p50 / mux p50 (>1 means mux is faster at the
	// median — fewer handshakes and transports for the same streams).
	P50Ratio float64 `json:"plain_over_mux_p50"`
}

// SockShed is the shed phase: a gateway with a deliberately low
// ShedDepth and a forced queue-depth reading, so admission control
// must refuse SYNs, then admit them again on recovery.
type SockShed struct {
	ShedDepth int `json:"shed_depth"`
	// Attempted streams while the gateway was overloaded; every one
	// must come back RST(EAGAIN).
	Attempted int   `json:"attempted"`
	Shed      int64 `json:"shed"`
	// Recovered streams opened after the depth reading dropped; every
	// one must succeed and echo.
	Recovered int `json:"recovered"`
	// GatewayShed and Pauses are the gateway's own counters —
	// admission refusals and credit-pause transitions.
	GatewayShed int64 `json:"gateway_shed"`
	Pauses      int64 `json:"gateway_pauses"`
}

// SockResult is the full report (BENCH_sock.json).
type SockResult struct {
	Transport      string      `json:"transport"`
	StreamsPerConn int         `json:"streams_per_conn"`
	Msgs           int         `json:"msgs"`
	Size           int         `json:"size_bytes"`
	Window         int         `json:"window_bytes"`
	Cores          int         `json:"cores"`
	Points         []SockPoint `json:"points"`
	Shed           SockShed    `json:"shed"`
}

// sockFabric abstracts the byte transport so both arms (and both
// transports) share one harness: how clients reach the gateway, and
// how the gateway reaches the echo target.
type sockFabric struct {
	dialGW func() (net.Conn, error)
	gw     *sockets.Websockify
	close  func()
}

// newSockFabric stands up echo target + gateway on the chosen
// transport.
func newSockFabric(transport string, opts sockets.GatewayOptions) (*sockFabric, error) {
	if transport == "mem" {
		echoLn := sockets.NewMemListener()
		go sockEchoAccept(echoLn)
		gwLn := sockets.NewMemListener()
		opts.Listener = gwLn
		opts.Dial = func(string) (net.Conn, error) { return echoLn.Dial() }
		gw, err := sockets.NewGateway("", "mem:echo", opts)
		if err != nil {
			echoLn.Close()
			gwLn.Close()
			return nil, err
		}
		return &sockFabric{
			dialGW: gwLn.Dial,
			gw:     gw,
			close: func() {
				gw.Close()
				echoLn.Close()
			},
		}, nil
	}
	echoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go sockEchoAccept(echoLn)
	gw, err := sockets.NewGateway("127.0.0.1:0", echoLn.Addr().String(), opts)
	if err != nil {
		echoLn.Close()
		return nil, err
	}
	return &sockFabric{
		dialGW: func() (net.Conn, error) { return net.Dial("tcp", gw.Addr()) },
		gw:     gw,
		close: func() {
			gw.Close()
			echoLn.Close()
		},
	}, nil
}

// sockEchoAccept is the unmodified TCP echo server behind the gateway.
func sockEchoAccept(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			buf := make([]byte, 16<<10)
			for {
				n, err := c.Read(buf)
				if n > 0 {
					if _, werr := c.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}(c)
	}
}

// sockPattern fills one message: stream and message index baked into
// every byte, so a misrouted or replayed frame fails verification.
func sockPattern(buf []byte, stream, msg int) {
	b := byte(stream*31 + msg*7 + 1)
	for i := range buf {
		buf[i] = b
	}
}

// RunSockLoad runs the sweep and the shed phase.
func RunSockLoad(p SockParams) (*SockResult, error) {
	p = p.withDefaults()
	res := &SockResult{
		Transport:      p.Transport,
		StreamsPerConn: p.StreamsPerConn,
		Msgs:           p.Msgs,
		Size:           p.Size,
		Window:         p.Window,
		Cores:          runtime.GOMAXPROCS(0),
	}
	for _, n := range p.Conns {
		plain, err := runSockArm(p, n, false)
		if err != nil {
			return nil, fmt.Errorf("sockload %d conns plain: %w", n, err)
		}
		mux, err := runSockArm(p, n, true)
		if err != nil {
			return nil, fmt.Errorf("sockload %d conns mux: %w", n, err)
		}
		pt := SockPoint{Conns: n, Plain: plain, Mux: mux}
		if mux.P50 > 0 {
			pt.P50Ratio = float64(plain.P50) / float64(mux.P50)
		}
		res.Points = append(res.Points, pt)
	}
	shed, err := runSockShed(p)
	if err != nil {
		return nil, fmt.Errorf("sockload shed phase: %w", err)
	}
	res.Shed = shed
	return res, nil
}

// runSockArm measures n logical echo streams in one mode.
func runSockArm(p SockParams, n int, mux bool) (SockArm, error) {
	arm := SockArm{Streams: n}
	if mux {
		arm.Mode = "mux"
		arm.Transports = (n + p.StreamsPerConn - 1) / p.StreamsPerConn
	} else {
		arm.Mode = "plain"
		arm.Transports = n
	}
	fab, err := newSockFabric(p.Transport, sockets.GatewayOptions{
		Window:     p.Window,
		MaxStreams: p.StreamsPerConn + 16,
	})
	if err != nil {
		return arm, err
	}
	defer fab.close()

	// One latency slot per message, indexed by stream — no lock on the
	// hot path; zero slots (lost streams) are filtered before ranking.
	lats := make([]time.Duration, n*p.Msgs)
	var lost atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()

	if mux {
		var retx atomic.Int64
		for s0 := 0; s0 < n; s0 += p.StreamsPerConn {
			count := p.StreamsPerConn
			if s0+count > n {
				count = n - s0
			}
			wg.Add(1)
			go func(s0, count int) {
				defer wg.Done()
				m, closeSess, err := dialMuxSession(fab, p)
				if err != nil {
					lost.Add(int64(count))
					return
				}
				defer func() {
					retx.Add(m.Stats().Retransmits)
					closeSess()
				}()
				var sw sync.WaitGroup
				for i := 0; i < count; i++ {
					sw.Add(1)
					go func(stream int) {
						defer sw.Done()
						if !runMuxStream(m, p, stream, lats) {
							lost.Add(1)
						}
					}(s0 + i)
				}
				sw.Wait()
			}(s0, count)
		}
		wg.Wait()
		arm.Retransmits = retx.Load()
	} else {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(stream int) {
				defer wg.Done()
				if !runPlainStream(fab, p, stream, lats) {
					lost.Add(1)
				}
			}(i)
		}
		wg.Wait()
	}

	arm.Wall = time.Since(start)
	arm.Lost = lost.Load()
	sample := make([]time.Duration, 0, len(lats))
	for _, d := range lats {
		if d > 0 {
			sample = append(sample, d)
		}
	}
	if arm.Wall > 0 {
		arm.Throughput = float64(len(sample)) / arm.Wall.Seconds()
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	arm.P50 = nearestRank(sample, 0.50)
	arm.P95 = nearestRank(sample, 0.95)
	arm.P99 = nearestRank(sample, 0.99)
	arm.P999 = nearestRank(sample, 0.999)
	if p.Check && arm.Lost > 0 {
		return arm, fmt.Errorf("%s arm lost %d of %d streams", arm.Mode, arm.Lost, n)
	}
	return arm, nil
}

// dialMuxSession opens one multiplexed gateway session: WebSocket
// handshake on MuxPath, a client Mux over it, and a reader pump.
func dialMuxSession(fab *sockFabric, p SockParams) (*sockets.Mux, func(), error) {
	conn, err := fab.dialGW()
	if err != nil {
		return nil, nil, err
	}
	br, err := sockets.ClientHandshake(conn, "sockload", sockets.MuxPath)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	m := sockets.NewMux(sockets.MuxConfig{
		Window:     p.Window,
		MaxStreams: p.StreamsPerConn + 16,
		Send: func(hdr, payload []byte) error {
			return sockets.WriteBinaryFrame(conn, hdr, payload)
		},
	})
	go func() {
		for {
			f, err := sockets.ReadFrame(br)
			if err != nil {
				m.CloseSession(err)
				return
			}
			if f.Op == sockets.OpBinary {
				m.HandleFrame(f.Payload)
			} else if f.Op == sockets.OpClose {
				m.CloseSession(nil)
				return
			}
		}
	}()
	return m, func() {
		m.CloseSession(nil)
		conn.Close()
	}, nil
}

// runMuxStream drives one stream's echo round trips, recording one
// latency per message. Returns false on any loss or corruption.
func runMuxStream(m *sockets.Mux, p SockParams, stream int, lats []time.Duration) bool {
	st, err := m.Open()
	if err != nil {
		return false
	}
	defer st.Close()
	if err := st.WaitOpen(); err != nil {
		return false
	}
	msg := make([]byte, p.Size)
	want := make([]byte, p.Size)
	got := make([]byte, p.Size)
	for i := 0; i < p.Msgs; i++ {
		sockPattern(msg, stream, i)
		sockPattern(want, stream, i)
		t0 := time.Now()
		if err := st.WriteBlocking(msg); err != nil {
			return false
		}
		for off := 0; off < p.Size; {
			k, err := st.ReadBlocking(got[off:])
			if err != nil {
				return false
			}
			off += k
		}
		if p.Check && !bytes.Equal(got, want) {
			return false
		}
		lats[stream*p.Msgs+i] = time.Since(t0)
	}
	return true
}

// runPlainStream is the same work over a classic one-stream
// websockify connection.
func runPlainStream(fab *sockFabric, p SockParams, stream int, lats []time.Duration) bool {
	conn, err := fab.dialGW()
	if err != nil {
		return false
	}
	defer conn.Close()
	br, err := sockets.ClientHandshake(conn, "sockload", "/")
	if err != nil {
		return false
	}
	msg := make([]byte, p.Size)
	want := make([]byte, p.Size)
	got := make([]byte, 0, p.Size)
	for i := 0; i < p.Msgs; i++ {
		sockPattern(msg, stream, i)
		sockPattern(want, stream, i)
		got = got[:0]
		t0 := time.Now()
		if err := sockets.WriteBinaryFrame(conn, msg); err != nil {
			return false
		}
		for len(got) < p.Size {
			f, err := sockets.ReadFrame(br)
			if err != nil || f.Op == sockets.OpClose {
				return false
			}
			if f.Op == sockets.OpBinary {
				got = append(got, f.Payload...)
			}
		}
		if p.Check && !bytes.Equal(got, want) {
			return false
		}
		lats[stream*p.Msgs+i] = time.Since(t0)
	}
	return true
}

// runSockShed drives admission control: with the queue-depth reading
// forced past ShedDepth every SYN must be refused with RST(EAGAIN);
// with it back at zero every SYN must open and echo.
func runSockShed(p SockParams) (SockShed, error) {
	shed := SockShed{ShedDepth: p.ShedDepth}
	var depth atomic.Int64
	fab, err := newSockFabric(p.Transport, sockets.GatewayOptions{
		Window:     p.Window,
		MaxStreams: p.StreamsPerConn + 16,
		ShedDepth:  p.ShedDepth,
		QueueDepth: func() int { return int(depth.Load()) },
	})
	if err != nil {
		return shed, err
	}
	defer fab.close()
	m, closeSess, err := dialMuxSession(fab, p)
	if err != nil {
		return shed, err
	}
	defer closeSess()

	// Overload: every new stream must bounce with the shed errno.
	depth.Store(int64(p.ShedDepth) * 10)
	// Let the overload ticker observe the spike so the pause counter
	// moves too (admission refusal itself is immediate, not ticked).
	time.Sleep(20 * time.Millisecond)
	attempts := 32
	for i := 0; i < attempts; i++ {
		shed.Attempted++
		st, err := m.Open()
		if err == nil {
			err = st.WaitOpen()
		}
		if err != nil && sockets.IsShed(err) {
			shed.Shed++
		} else if err == nil {
			st.Close()
		}
	}

	// Recovery: the same dials must now be admitted and echo cleanly.
	depth.Store(0)
	time.Sleep(20 * time.Millisecond)
	lats := make([]time.Duration, attempts*p.Msgs)
	pp := p
	pp.Msgs = 1
	for i := 0; i < attempts; i++ {
		if runMuxStream(m, pp, i, lats) {
			shed.Recovered++
		}
	}
	snap := fab.gw.Snapshot()
	shed.GatewayShed = snap.Stats.Shed
	shed.Pauses = snap.Pauses
	if p.Check {
		if shed.Shed != int64(shed.Attempted) {
			return shed, fmt.Errorf("shed %d of %d overloaded dials (want all)", shed.Shed, shed.Attempted)
		}
		if shed.Recovered != attempts {
			return shed, fmt.Errorf("recovered %d of %d dials after resume", shed.Recovered, attempts)
		}
		if shed.GatewayShed == 0 || shed.Pauses == 0 {
			return shed, fmt.Errorf("gateway counters flat: shed=%d pauses=%d", shed.GatewayShed, shed.Pauses)
		}
	}
	return shed, nil
}

// FormatSock renders the report as a table.
func FormatSock(r *SockResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gateway soak — %s transport, %d streams/session, %d×%dB echo, %d host cores\n",
		r.Transport, r.StreamsPerConn, r.Msgs, r.Size, r.Cores)
	fmt.Fprintf(&b, "  %6s  %5s  %6s  %9s  %9s  %9s  %9s  %9s  %9s  %4s\n",
		"conns", "mode", "wsconn", "wall", "p50", "p95", "p99", "p999", "msgs/s", "lost")
	// Latencies span µs (plain arm on the mem transport) to seconds
	// (10k-conn tails), so round to ~3 significant digits rather than
	// a fixed unit that would collapse the small end to 0s.
	lat := func(d time.Duration) string {
		unit := time.Microsecond
		for scaled := d; scaled >= 1000*unit; scaled = d.Round(unit) {
			unit *= 10
		}
		return d.Round(unit).String()
	}
	arm := func(n int, a SockArm) {
		fmt.Fprintf(&b, "  %6d  %5s  %6d  %9s  %9s  %9s  %9s  %9s  %9.0f  %4d\n",
			n, a.Mode, a.Transports, a.Wall.Round(time.Millisecond),
			lat(a.P50), lat(a.P95), lat(a.P99), lat(a.P999),
			a.Throughput, a.Lost)
	}
	for _, pt := range r.Points {
		arm(pt.Conns, pt.Plain)
		arm(pt.Conns, pt.Mux)
		fmt.Fprintf(&b, "  %6s  plain/mux p50 ×%.3g, mux retransmits %d\n",
			"", pt.P50Ratio, pt.Mux.Retransmits)
	}
	fmt.Fprintf(&b, "  shed: depth %d — %d/%d refused overloaded, %d/%d admitted after recovery, gateway shed=%d pauses=%d\n",
		r.Shed.ShedDepth, r.Shed.Shed, r.Shed.Attempted,
		r.Shed.Recovered, r.Shed.Attempted, r.Shed.GatewayShed, r.Shed.Pauses)
	return b.String()
}

// WriteSockReport writes the report as indented JSON
// (BENCH_sock.json).
func WriteSockReport(path string, r *SockResult) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

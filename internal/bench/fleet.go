// Fleet hosting benchmark: N tenants on a single-shard supervisor
// versus the same N on a multi-shard pool, at equal work. The report
// (BENCH_fleet.json) records throughput and tail latency
// (p50/p95/p99/p999) per tenant count — the fleet layer's claim is
// that sharding event loops across cores turns guest multiprocessing
// into host parallelism, so the multi-shard arm must win wall-clock.
package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/minic"
	"doppio/internal/ops"
	"doppio/internal/proc"
	"doppio/internal/sockets"
	"doppio/internal/telemetry"
)

// fleetMinicProgram is the MiniC tenant: a pure CPU burn that yields
// at every timeslice like any guest thread, so the scheduler sees a
// long-lived well-behaved tenant.
const fleetMinicProgram = `
int main() {
    int acc = 0;
    for (int r = 0; r < %d; r++) {
        for (int i = 0; i < 1000; i++) {
            acc = (acc * 31 + i) %% 1000003;
        }
    }
    putint(acc);
    putchar('\n');
    return 0;
}`

// fleetJVMProgram is the DoppioJVM tenant, the same burn in MiniJava.
const fleetJVMProgram = `
public class FleetBurn {
    public static void main(String[] args) {
        int n = %d;
        int acc = 0;
        for (int i = 0; i < n; i++) {
            acc = (acc * 31 + i) %% 1000003;
        }
        System.out.println("acc " + acc);
    }
}`

// fleetPipeProducer feeds the pipes tenant's MiniC half: writes lines
// into the pipe, exercising pipe backpressure inside one tenant.
const fleetPipeProducer = `
int main() {
    for (int i = 0; i < %d; i++) {
        puts("ping\n");
    }
    return 0;
}`

// fleetPipeConsumer is the JVM half: byte-wise stdin reader counting
// lines, the jgrep idiom from the dsh userland.
const fleetPipeConsumer = `
public class FleetCount {
    public static void main(String[] args) {
        int lines = 0;
        int c = System.in.read();
        while (c >= 0) {
            if (c == '\n') { lines = lines + 1; }
            c = System.in.read();
        }
        System.out.println(lines);
    }
}`

// fleetSockProgram is the gateway tenant: an unmodified Java echo
// client whose socket rides the tenant's own multiplexed Stack to a
// shared websockify gateway — guest socket I/O as fleet load.
const fleetSockProgram = `
import java.net.Socket;

public class FleetEcho {
    public static void main(String[] args) {
        int rounds = %d;
        Socket s = new Socket("gateway", 0);
        byte[] msg = new byte[64];
        for (int i = 0; i < 64; i++) {
            msg[i] = (byte) (i + 1);
        }
        int want = rounds * 64;
        int got = 0;
        for (int i = 0; i < rounds; i++) {
            s.write(msg);
            byte[] back = s.read(4096);
            if (back == null) { break; }
            got = got + back.length;
        }
        while (got < want) {
            byte[] back = s.read(4096);
            if (back == null) { break; }
            got = got + back.length;
        }
        s.close();
        if (got != want) {
            System.out.println("short echo " + got);
            System.exit(1);
        }
        System.out.println("echoed " + got);
    }
}`

// fleetSockShedDepth is the WithShed threshold for sock tenants: high
// enough that a healthy run never trips it (a tripped dial surfaces as
// an IOException in the guest), low enough to bound a runaway loop.
const fleetSockShedDepth = 256

// FleetParams tunes the fleet benchmark.
type FleetParams struct {
	// Tenants is the sweep of tenant counts; default {16, 64, 256}.
	Tenants []int
	// Shards is the multi-shard arm's pool width; default NumCPU.
	Shards int
	// Workload picks the tenant mix: "minic", "jvm", "mixed"
	// (alternating by index), "pipes" (a MiniC producer piped into a
	// JVM consumer under a per-tenant process kernel), or "sock" (a
	// JVM echo client whose socket rides a per-tenant mux Stack
	// through a shared websockify gateway).
	Workload string
	// Timeslice for every tenant VM; default 2ms (short slices keep
	// tail latency honest when hundreds of tenants share a shard).
	Timeslice time.Duration
	// Scale multiplies per-tenant work; default 1.
	Scale int
	// Ops, when non-nil, registers each arm's supervisor behind
	// /debug/fleet while it runs.
	Ops *ops.Server
}

func (p FleetParams) withDefaults() FleetParams {
	if len(p.Tenants) == 0 {
		p.Tenants = []int{16, 64, 256}
	}
	if p.Shards <= 0 {
		p.Shards = runtime.NumCPU()
		if p.Shards < 2 {
			// A 1-wide "multi" arm would compare a shard with itself.
			p.Shards = 2
		}
	}
	if p.Workload == "" {
		p.Workload = "mixed"
	}
	if p.Timeslice == 0 {
		p.Timeslice = 2 * time.Millisecond
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	return p
}

// FleetArm is one supervisor configuration's measurement.
type FleetArm struct {
	Shards int `json:"shards"`
	// Wall is submit-of-first to done-of-last.
	Wall       time.Duration `json:"wall_ns"`
	Throughput float64       `json:"tenants_per_sec"`
	// Latency percentiles over per-tenant submit→done times,
	// nearest-rank on the raw sample (no interpolation).
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	// Evictions and Failed must be zero on a healthy run — the CI
	// smoke gate asserts it.
	Evictions int `json:"evictions"`
	Failed    int `json:"failed"`
	// MinTenantSlices is the smallest per-tenant slice counter the
	// fleet telemetry recorded: nonzero proves every tenant's labeled
	// series saw real scheduler work (the other CI smoke assertion).
	MinTenantSlices int64 `json:"min_tenant_slices"`
}

// FleetPoint compares both arms at one tenant count.
type FleetPoint struct {
	Tenants int      `json:"tenants"`
	Single  FleetArm `json:"single_shard"`
	Multi   FleetArm `json:"multi_shard"`
	// Speedup is single wall / multi wall — the parallelism win. It
	// needs cores: on a single-CPU host (see Cores) the arms tie on
	// wall and the sharding win shows up in P50Speedup instead.
	Speedup float64 `json:"speedup"`
	// P50Speedup is single p50 / multi p50: tenants on a wide pool
	// wait behind fewer queue neighbors, so median latency improves
	// even when wall-clock cannot.
	P50Speedup float64 `json:"p50_speedup"`
}

// FleetResult is the full sweep (BENCH_fleet.json).
type FleetResult struct {
	Workload  string        `json:"workload"`
	Shards    int           `json:"shards"`
	Timeslice time.Duration `json:"timeslice_ns"`
	Scale     int           `json:"scale"`
	// Cores is the host's usable parallelism (GOMAXPROCS) when the
	// sweep ran — the context every Speedup must be read in.
	Cores  int          `json:"cores"`
	Points []FleetPoint `json:"points"`
}

// fleetAssets are the precompiled tenant programs, shared by every
// arm so both arms run byte-identical work.
type fleetAssets struct {
	burn        *minic.Program
	burnClasses map[string][]byte
	producer    *minic.Program
	pipeClasses map[string][]byte

	// The sock workload's shared infrastructure, nil otherwise: a
	// native TCP echo server and the gateway every tenant's Stack
	// dials. Both arms go through the same pair, so the comparison
	// stays equal-work.
	sockClasses map[string][]byte
	sockEcho    net.Listener
	sockGW      *sockets.Websockify
	sockAddr    string
}

func compileFleetAssets(p FleetParams) (*fleetAssets, error) {
	a := &fleetAssets{}
	var err error
	if a.burn, err = minic.CompileC(fmt.Sprintf(fleetMinicProgram, 20*p.Scale)); err != nil {
		return nil, fmt.Errorf("fleet minic tenant: %w", err)
	}
	if a.burnClasses, err = workloadsCompile(map[string]string{
		"FleetBurn.mj": fmt.Sprintf(fleetJVMProgram, 20_000*p.Scale),
	}); err != nil {
		return nil, fmt.Errorf("fleet jvm tenant: %w", err)
	}
	if a.producer, err = minic.CompileC(fmt.Sprintf(fleetPipeProducer, 100*p.Scale)); err != nil {
		return nil, fmt.Errorf("fleet pipe producer: %w", err)
	}
	if a.pipeClasses, err = workloadsCompile(map[string]string{
		"FleetCount.mj": fleetPipeConsumer,
	}); err != nil {
		return nil, fmt.Errorf("fleet pipe consumer: %w", err)
	}
	if p.Workload == "sock" {
		if a.sockClasses, err = workloadsCompile(map[string]string{
			"FleetEcho.mj": fmt.Sprintf(fleetSockProgram, 8*p.Scale),
		}); err != nil {
			return nil, fmt.Errorf("fleet sock tenant: %w", err)
		}
		if a.sockEcho, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, fmt.Errorf("fleet sock echo: %w", err)
		}
		go sockEchoAccept(a.sockEcho)
		a.sockGW, err = sockets.NewGateway("127.0.0.1:0", a.sockEcho.Addr().String(),
			sockets.GatewayOptions{})
		if err != nil {
			a.sockEcho.Close()
			return nil, fmt.Errorf("fleet sock gateway: %w", err)
		}
		a.sockAddr = a.sockGW.Addr()
	}
	return a, nil
}

func (a *fleetAssets) close() {
	if a.sockGW != nil {
		a.sockGW.Close()
	}
	if a.sockEcho != nil {
		a.sockEcho.Close()
	}
}

// fleetTenant builds tenant i's spec for the chosen workload mix.
func fleetTenant(p FleetParams, a *fleetAssets, i int) fleet.Tenant {
	kind := p.Workload
	if kind == "mixed" {
		if i%2 == 0 {
			kind = "minic"
		} else {
			kind = "jvm"
		}
	}
	label := fmt.Sprintf("%s-%03d", kind, i)
	t := fleet.Tenant{Label: label}
	switch kind {
	case "minic":
		t.Start = func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			fs := env.NewFS(env.Root)
			vm, err := minic.NewVM(env.Win, a.burn, minic.VMOptions{
				FS:        fs,
				HeapSize:  256 << 10,
				StackSize: 32 << 10,
				Timeslice: p.Timeslice,
			})
			if err != nil {
				return nil, err
			}
			vm.Start(func(exit int32, err error) {
				if err == nil && exit != 0 {
					err = fmt.Errorf("%s: exit %d", label, exit)
				}
				done(err)
			})
			return &fleet.Handle{Runtime: vm.Runtime(), Heap: vm.Heap(), FS: fs, Kill: vm.Kill}, nil
		}
	case "jvm":
		t.Start = func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			vm := jvm.NewDoppioVM(env.Win, jvm.DoppioOptions{
				Provider:         jvm.MapProvider(a.burnClasses),
				Timeslice:        p.Timeslice,
				HeapSize:         512 << 10,
				DisableEngineTax: true,
			})
			vm.StartMain("FleetBurn", nil, done)
			return &fleet.Handle{Runtime: vm.Runtime(), Heap: vm.Heap(),
				Kill: func() { vm.Exit(137) }}, nil
		}
	case "sock":
		t.Start = func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			// Each tenant gets its own multiplexed Stack to the shared
			// gateway; the shed option refuses new dials when this
			// tenant's loop falls behind (EAGAIN, transient).
			var rt *core.Runtime
			conn := sockets.Stack(env.Win, a.sockAddr,
				sockets.WithMux(4),
				sockets.WithShed(func() int {
					if rt == nil {
						return 0
					}
					return rt.QueueDepth()
				}, fleetSockShedDepth),
			)
			vm := jvm.NewDoppioVM(env.Win, jvm.DoppioOptions{
				Provider:         jvm.MapProvider(a.sockClasses),
				Timeslice:        p.Timeslice,
				HeapSize:         512 << 10,
				DisableEngineTax: true,
				SocketDialer: func(_ *browser.Window, _ string, cb func(*sockets.Socket, error)) {
					conn.Dial(cb)
				},
			})
			rt = vm.Runtime()
			vm.StartMain("FleetEcho", nil, func(err error) {
				conn.Close()
				done(err)
			})
			return &fleet.Handle{Runtime: vm.Runtime(), Heap: vm.Heap(),
				Kill: func() {
					conn.Close()
					vm.Exit(137)
				}}, nil
		}
	case "pipes":
		t.Start = func(env *fleet.Env, done func(error)) (*fleet.Handle, error) {
			k := proc.NewKernel(env.Win, env.Root)
			pipe := k.NewPipe(512)
			prod, err := k.SpawnMinic(a.producer, proc.SpawnSpec{
				Name:   label + "/producer",
				Stdout: &proc.PipeWriter{P: pipe},
			})
			if err != nil {
				return nil, err
			}
			cons, err := k.SpawnJVM("FleetCount", a.pipeClasses, proc.SpawnSpec{
				Name:  label + "/consumer",
				Stdin: &proc.PipeReader{P: pipe},
			})
			if err != nil {
				k.Kill(prod.PID, proc.SIGKILL)
				return nil, err
			}
			// The tenant is done when both halves have exited; the
			// first nonzero exit or wait error wins.
			remaining := 2
			var firstErr error
			reap := func(name string, pid int32) {
				k.Waitpid(nil, pid).Then(func(v interface{}, err error) {
					if firstErr == nil {
						if err != nil {
							firstErr = err
						} else if code, ok := v.(int32); ok && code != 0 {
							firstErr = fmt.Errorf("%s: exit %d", name, code)
						}
					}
					if remaining--; remaining == 0 {
						done(firstErr)
					}
				})
			}
			reap(label+"/producer", prod.PID)
			reap(label+"/consumer", cons.PID)
			// Budget accounting follows the consumer (the JVM does the
			// lion's share of the work); kill tears down both halves.
			return &fleet.Handle{Runtime: cons.Runtime(), FS: cons.FS, Kill: func() {
				k.Kill(prod.PID, proc.SIGKILL)
				k.Kill(cons.PID, proc.SIGKILL)
			}}, nil
		}
	}
	return t
}

// RunFleet sweeps the tenant counts, running the single-shard and
// multi-shard arm at each — equal work, fresh supervisor and
// telemetry hub per arm.
func RunFleet(p FleetParams) (*FleetResult, error) {
	p = p.withDefaults()
	assets, err := compileFleetAssets(p)
	if err != nil {
		return nil, err
	}
	defer assets.close()
	res := &FleetResult{
		Workload: p.Workload, Shards: p.Shards,
		Timeslice: p.Timeslice, Scale: p.Scale,
		Cores: runtime.GOMAXPROCS(0),
	}
	for _, n := range p.Tenants {
		single, err := runFleetArm(p, assets, n, 1)
		if err != nil {
			return nil, fmt.Errorf("fleet %d tenants, 1 shard: %w", n, err)
		}
		multi, err := runFleetArm(p, assets, n, p.Shards)
		if err != nil {
			return nil, fmt.Errorf("fleet %d tenants, %d shards: %w", n, p.Shards, err)
		}
		pt := FleetPoint{Tenants: n, Single: single, Multi: multi}
		if multi.Wall > 0 {
			pt.Speedup = float64(single.Wall) / float64(multi.Wall)
		}
		if multi.P50 > 0 {
			pt.P50Speedup = float64(single.P50) / float64(multi.P50)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// runFleetArm hosts n tenants on a shards-wide supervisor and waits
// them all out.
func runFleetArm(p FleetParams, assets *fleetAssets, n, shards int) (FleetArm, error) {
	arm := FleetArm{Shards: shards}
	hub := telemetry.NewHub()
	// A 10ms heartbeat keeps the (per-shard) monitor timer from
	// dominating the measurement on narrow hosts; both arms use it, so
	// the comparison stays fair.
	sup := fleet.NewSupervisor(fleet.Config{
		Shards: shards, Hub: hub, Profile: fleet.DefaultProfile(),
		MonitorInterval: 10 * time.Millisecond,
	})
	defer sup.Close()
	if p.Ops != nil {
		p.Ops.RegisterFleet(fmt.Sprintf("%s n=%d shards=%d", p.Workload, n, shards), sup)
	}

	start := time.Now()
	refs := make([]*fleet.TenantRef, 0, n)
	for i := 0; i < n; i++ {
		ref, err := sup.Submit(fleetTenant(p, assets, i))
		if err != nil {
			return arm, err
		}
		refs = append(refs, ref)
	}
	latencies := make([]time.Duration, 0, n)
	for _, ref := range refs {
		<-ref.Done()
		if err := ref.Err(); err != nil {
			return arm, fmt.Errorf("tenant %s: %w", ref.Label(), err)
		}
		latencies = append(latencies, ref.Latency())
	}
	arm.Wall = time.Since(start)
	if arm.Wall > 0 {
		arm.Throughput = float64(n) / arm.Wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	arm.P50 = nearestRank(latencies, 0.50)
	arm.P95 = nearestRank(latencies, 0.95)
	arm.P99 = nearestRank(latencies, 0.99)
	arm.P999 = nearestRank(latencies, 0.999)

	snap := sup.Snapshot()
	arm.Evictions = snap.Evicted
	arm.Failed = snap.Failed
	arm.MinTenantSlices = minTenantSlices(hub, n)
	return arm, nil
}

// nearestRank is the exact nearest-rank percentile of a sorted sample.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// minTenantSlices scans the hub for the per-tenant slice counters the
// shards publish and returns the smallest value — zero if any tenant
// is missing its series (which the CI smoke treats as a failure).
func minTenantSlices(hub *telemetry.Hub, n int) int64 {
	var min int64
	seen := 0
	for _, c := range hub.Registry.Snapshot().Counters {
		if c.Subsystem != "fleet" || c.Name != "tenant_slices" || c.Label == "" {
			continue
		}
		if seen == 0 || c.Value < min {
			min = c.Value
		}
		seen++
	}
	if seen < n {
		return 0
	}
	return min
}

// FormatFleet renders the sweep as a table.
func FormatFleet(r *FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet hosting — %s tenants, %d-shard pool, %v timeslice, %d host cores\n",
		r.Workload, r.Shards, r.Timeslice, r.Cores)
	fmt.Fprintf(&b, "  %7s  %6s  %9s  %9s  %9s  %9s  %9s  %8s\n",
		"tenants", "shards", "wall", "p50", "p95", "p99", "p999", "tput/s")
	arm := func(n int, a FleetArm) {
		fmt.Fprintf(&b, "  %7d  %6d  %9s  %9s  %9s  %9s  %9s  %8.1f\n",
			n, a.Shards, a.Wall.Round(time.Millisecond),
			a.P50.Round(time.Millisecond), a.P95.Round(time.Millisecond),
			a.P99.Round(time.Millisecond), a.P999.Round(time.Millisecond),
			a.Throughput)
	}
	for _, pt := range r.Points {
		arm(pt.Tenants, pt.Single)
		arm(pt.Tenants, pt.Multi)
		fmt.Fprintf(&b, "  %7s  speedup ×%.2f (p50 ×%.2f)  evictions %d+%d  min tenant slices %d\n",
			"", pt.Speedup, pt.P50Speedup, pt.Single.Evictions, pt.Multi.Evictions,
			minInt64(pt.Single.MinTenantSlices, pt.Multi.MinTenantSlices))
	}
	return b.String()
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteFleetReport writes the sweep as indented JSON
// (BENCH_fleet.json).
func WriteFleetReport(path string, r *FleetResult) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Package bench regenerates every table and figure of the paper's
// evaluation (§7): the DoppioJVM macro benchmarks (Figure 3), the
// microbenchmark CPU/wall-clock split (Figure 4), suspension overhead
// (Figure 5), file system performance on the recorded trace
// (Figure 6), the feature matrix (Table 1), and the storage-mechanism
// matrix (Table 2). EXPERIMENTS.md records paper-vs-measured numbers.
package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/ops"
	"doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// Config tunes a benchmark run.
type Config struct {
	// Scale multiplies workload sizes; 1 is a CI-friendly quick run,
	// 3-5 approaches paper-scale runtimes.
	Scale int
	// Browsers to sweep; defaults to the paper's five (Figure 3).
	Browsers []browser.Profile
	// Timeslice for the Doppio execution environment.
	Timeslice time.Duration
	// DisableEngineTax turns off the per-browser JS-engine speed
	// model (DESIGN.md substitution).
	DisableEngineTax bool
	// Telemetry, when non-nil, instruments every run: the window's
	// event loop, the core runtime, the JVM, and the VFS backend all
	// report into this hub. Corpus seeding happens before the hub is
	// attached to the event loop, so dispatch/responsiveness metrics
	// cover only the measured workload (backend op histograms do
	// include seeding traffic — it is genuine backend I/O).
	Telemetry *telemetry.Hub
	// FSCache wraps each run's VFS backend in the CachedBackend
	// decorator (whole-file page cache + stat/readdir caches), so the
	// JVM's class-load and host-FS traffic is served from cache after
	// first touch. Cache counters land in Telemetry under
	// "vfscache.<backend>".
	FSCache bool
	// Ops, when non-nil, has each Doppio run register itself as an
	// inspectable source, so the live endpoints (/debug/threads,
	// /debug/vfs, ...) can see the workload while it executes.
	Ops *ops.Server
	// Profiler, when non-nil, attaches the guest sampling profiler to
	// every Doppio-engine run (figures and the telemetry pass fold into
	// one profile; the -prof-bench A/B manages its own profilers).
	Profiler *profile.Profiler
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.Browsers) == 0 {
		c.Browsers = browser.Population()
	}
	return c
}

// WorkloadSpec describes one benchmark program.
type WorkloadSpec struct {
	ID   string // "deltablue", ...
	Main string
	// Args produces command-line arguments for a scale level.
	Args func(scale int) []string
	// Corpus selects the file tree the workload reads: "", "classes"
	// (the compiled class corpus under /classes) or "sources" (the
	// workload sources under /src).
	Corpus string
}

// Fig3Workloads are the paper's four macro benchmarks (§7.1) in
// presentation order, each mapped to its substitute (DESIGN.md).
var Fig3Workloads = []WorkloadSpec{
	{ID: "disasm (javap)", Main: "Disasm", Corpus: "classes",
		Args: func(s int) []string { return []string{"/classes"} }},
	{ID: "mjparse (javac)", Main: "MJParse", Corpus: "sources",
		Args: func(s int) []string { return []string{"/src"} }},
	{ID: "miniscript (Rhino)", Main: "MiniScript",
		Args: func(s int) []string { return []string{fmt.Sprint(3 + s)} }},
	{ID: "scheme (Kawa)", Main: "SchemeMain",
		Args: func(s int) []string { return []string{fmt.Sprint(min(5+s, 8))} }},
}

// MicroWorkloads are the Figure 4/5 microbenchmarks.
var MicroWorkloads = []WorkloadSpec{
	{ID: "DeltaBlue", Main: "DeltaBlue",
		Args: func(s int) []string { return []string{fmt.Sprint(2 * s)} }},
	{ID: "pidigits", Main: "PiDigits",
		Args: func(s int) []string { return []string{fmt.Sprint(40 * s)} }},
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// corpusFiles materializes a corpus as path→bytes. The class corpus
// is capped proportionally to scale so quick runs stay quick; the
// paper-scale run (scale ≥ 5) disassembles everything.
func corpusFiles(which string, scale int) (map[string][]byte, error) {
	out := make(map[string][]byte)
	switch which {
	case "":
	case "classes":
		classes, err := workloads.Classes()
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(classes))
		for name := range classes {
			names = append(names, name)
		}
		sort.Strings(names)
		limit := 8 * scale
		if scale >= 5 || limit > len(names) {
			limit = len(names)
		}
		for _, name := range names[:limit] {
			out["/classes/"+strings.ReplaceAll(name, "/", "_")+".class"] = classes[name]
		}
	case "sources":
		srcs := workloads.Sources()
		names := make([]string, 0, len(srcs))
		for name := range srcs {
			names = append(names, name)
		}
		sort.Strings(names)
		limit := 2 * scale
		if scale >= 5 || limit > len(names) {
			limit = len(names)
		}
		for _, name := range names[:limit] {
			out["/src/"+strings.ReplaceAll(name, "/", "_")] = []byte(srcs[name])
		}
	default:
		return nil, fmt.Errorf("bench: unknown corpus %q", which)
	}
	return out, nil
}

// RunNative executes a workload on the native baseline engine,
// returning the wall-clock time and program output.
func RunNative(spec WorkloadSpec, scale int) (time.Duration, string, error) {
	classes, err := workloads.Classes()
	if err != nil {
		return 0, "", err
	}
	files, err := corpusFiles(spec.Corpus, scale)
	if err != nil {
		return 0, "", err
	}
	hostFS := jvm.NewMemHostFS()
	for p, d := range files {
		hostFS.Put(p, d)
	}
	var stdout bytes.Buffer
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout: &stdout, Stderr: &stdout, FS: hostFS,
	})
	start := time.Now()
	err = vm.RunMain(spec.Main, spec.Args(scale))
	return time.Since(start), stdout.String(), err
}

// DoppioRun captures one Doppio-engine execution.
type DoppioRun struct {
	Wall        time.Duration
	CPU         time.Duration
	Suspended   time.Duration
	Suspensions int
	// Instructions is the executed bytecode count.
	Instructions int64
	Output       string
}

// RunDoppio executes a workload on the Doppio engine inside the given
// browser profile, with the workload's corpus seeded into the Doppio
// file system (in-memory backend) beforehand.
func RunDoppio(spec WorkloadSpec, scale int, profile browser.Profile, cfg Config) (*DoppioRun, error) {
	classes, err := workloads.Classes()
	if err != nil {
		return nil, err
	}
	files, err := corpusFiles(spec.Corpus, scale)
	if err != nil {
		return nil, err
	}
	env := fleet.NewEnv(profile, nil)
	win := env.Win
	// Keep Instrument innermost (as the Stack base) so "vfs.InMemory"
	// ops keeps counting backend round trips even when the cache is on.
	stackOpts := []vfs.StackOption{}
	if cfg.FSCache {
		stackOpts = append(stackOpts, vfs.WithCache(vfs.CacheOptions{Hub: cfg.Telemetry}))
	}
	root := vfs.Stack(vfs.Instrument(vfs.NewInMemory(), cfg.Telemetry), stackOpts...)
	fs := env.NewFS(root)

	// Seed the corpus before timing starts.
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	if err := fleet.Drive(win.Loop, "seed", func(done func(error)) {
		var seed func(i int)
		seed = func(i int) {
			if i == len(paths) {
				done(nil)
				return
			}
			p := paths[i]
			dir := p[:strings.LastIndexByte(p, '/')]
			if dir == "" {
				dir = "/"
			}
			fs.MkdirAll(dir, func(err error) {
				if err != nil {
					done(err)
					return
				}
				fs.WriteFile(p, files[p], func(err error) {
					if err != nil {
						done(err)
						return
					}
					seed(i + 1)
				})
			})
		}
		seed(0)
	}); err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		win.EnableTelemetry(cfg.Telemetry)
	}

	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		FS:               &jvm.VFSHostFS{FS: fs},
		Timeslice:        cfg.Timeslice,
		DisableEngineTax: cfg.DisableEngineTax,
		Profiler:         cfg.Profiler,
	})
	if cfg.Ops != nil {
		cfg.Ops.Register(ops.Source{
			Name:    spec.ID + " @ " + profile.Name,
			Loop:    win.Loop,
			Runtime: vm.Runtime(),
			Backend: root,
			Heap:    vm.Heap(),
			JVM:     []ops.JVMEngine{{Engine: "doppio", Stats: vm}},
			Prof:    cfg.Profiler,
		})
	}
	start := time.Now()
	if err := vm.RunMain(spec.Main, spec.Args(scale)); err != nil {
		return nil, fmt.Errorf("%s on %s: %w\n%s", spec.ID, profile.Name, err, stdout.String())
	}
	wall := time.Since(start)
	st := vm.Runtime().Stats()
	return &DoppioRun{
		Wall:         wall,
		CPU:          st.CPUTime,
		Suspended:    st.SuspendedTime,
		Suspensions:  st.Suspensions,
		Instructions: vm.Instructions,
		Output:       stdout.String(),
	}, nil
}

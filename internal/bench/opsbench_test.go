package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOpsOverhead(t *testing.T) {
	res, err := RunOpsOverhead(Config{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Off.Wall <= 0 || res.On.Wall <= 0 {
		t.Fatalf("arm walls = %v / %v", res.Off.Wall, res.On.Wall)
	}
	if res.Off.FlightEvents != 0 {
		t.Errorf("flight-off arm recorded %d events", res.Off.FlightEvents)
	}
	if res.On.FlightEvents == 0 {
		t.Error("flight-on arm recorded no events")
	}
	out := FormatOpsOverhead(res)
	for _, want := range []string{"flight-off", "flight-on", "overhead:"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_ops.json")
	if err := WriteOpsReport(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded OpsOverheadResult
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if decoded.On.FlightEvents != res.On.FlightEvents {
		t.Errorf("round-trip lost flight events: %d != %d",
			decoded.On.FlightEvents, res.On.FlightEvents)
	}
}

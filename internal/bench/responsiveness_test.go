package bench

import (
	"strings"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/telemetry"
)

func TestRunResponsiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep is slow")
	}
	rows, err := RunResponsiveness(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig3Workloads) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Fig3Workloads))
	}
	for _, r := range rows {
		if r.Tasks == 0 {
			t.Errorf("%s: 0 tasks dispatched", r.Workload)
		}
		if r.LongestPause <= 0 {
			t.Errorf("%s: longest pause = %v, want > 0", r.Workload, r.LongestPause)
		}
		if r.LongestPause < r.P95 {
			t.Errorf("%s: max pause %v < p95 %v", r.Workload, r.LongestPause, r.P95)
		}
		if r.Instructions == 0 {
			t.Errorf("%s: 0 instructions", r.Workload)
		}
		if r.Wall <= 0 {
			t.Errorf("%s: wall = %v", r.Workload, r.Wall)
		}
	}
	out := FormatResponsiveness(rows)
	for _, want := range []string{"longest event-loop pause", "pause-max", "pause-p95", rows[0].Workload} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunDoppioWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run is slow")
	}
	cfg := quickCfg()
	cfg.Telemetry = telemetry.NewHub()
	// disasm reads its class corpus through the VFS, exercising the
	// instrumented backend.
	run, err := RunDoppio(Fig3Workloads[0], 1, browser.Chrome28, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Instructions == 0 {
		t.Error("Instructions = 0")
	}
	reg := cfg.Telemetry.Registry
	if got := reg.Histogram("eventloop", "dispatch").Count(); got == 0 {
		t.Error("eventloop/dispatch empty")
	}
	if got := reg.Counter("vfs.InMemory", "ops").Value(); got == 0 {
		t.Error("vfs.InMemory/ops = 0: backend not instrumented")
	}
	// Dispatch p95 is the headline §7.1.3 number; it must be a sane
	// duration (> 0, < the whole run).
	p95 := time.Duration(reg.Histogram("eventloop", "dispatch").Quantile(0.95))
	if p95 <= 0 || p95 > run.Wall {
		t.Errorf("dispatch p95 = %v, wall = %v", p95, run.Wall)
	}
}

// Observability overhead harness: measures what the flight recorder
// costs a running workload. The same multithreaded CPU-bound program
// runs with the flight ring enabled and disabled; the report
// (BENCH_ops.json) records both walls so CI can hold the overhead
// under its budget — an always-on black box is only viable if
// recording is nearly free.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/telemetry"
)

// opsOverheadProgram keeps the scheduler busy: four CPU-bound workers
// plus a producer/consumer pair, so the flight ring sees the full
// event mix (spawns, batches, block/settle) while the wall clock is
// dominated by bytecode execution.
const opsOverheadProgram = `
class Cell {
    Object lock = new Object();
    int value;
    boolean full;

    void put(int v) {
        synchronized (lock) {
            while (full) { lock.wait(); }
            value = v;
            full = true;
            lock.notifyAll();
        }
    }

    int take() {
        synchronized (lock) {
            while (!full) { lock.wait(); }
            full = false;
            lock.notifyAll();
            return value;
        }
    }
}

class Burner extends Thread {
    int n;
    int acc;
    Burner(int n) { this.n = n; }
    public void run() {
        for (int i = 0; i < n; i++) {
            acc = (acc + i) %% 1000003;
        }
    }
}

class Feeder extends Thread {
    Cell c;
    int n;
    Feeder(Cell c, int n) { this.c = c; this.n = n; }
    public void run() {
        for (int i = 1; i <= n; i++) { c.put(i); }
    }
}

public class OpsBench {
    public static void main(String[] args) {
        int n = %d;
        Burner[] ws = new Burner[4];
        for (int i = 0; i < ws.length; i++) {
            ws[i] = new Burner(n);
            ws[i].start();
        }
        Cell c = new Cell();
        Feeder f = new Feeder(c, 32);
        f.start();
        int sum = 0;
        for (int i = 0; i < 32; i++) { sum += c.take(); }
        f.join();
        for (int i = 0; i < ws.length; i++) { ws[i].join(); }
        System.out.println("sum " + sum);
    }
}
`

// OpsArm is one arm of the flight-recorder overhead comparison.
type OpsArm struct {
	Mode string `json:"mode"`
	// Wall is the best (minimum) wall time over Runs repetitions —
	// minimum, because observability overhead adds to the floor while
	// scheduler noise only adds above it.
	Wall time.Duration `json:"wall_ns"`
	// CPU is the best per-run scheduler CPU time — thread execution
	// only, excluding event-loop waits and §4.4 resumption timers,
	// which is where recording cost lands and what Overhead is
	// computed from (wall on a timeslice-batched workload is dominated
	// by timer jitter).
	CPU time.Duration `json:"cpu_ns"`
	// FlightEvents is how many events the arm's ring recorded (zero on
	// the disabled arm — the recorder is nil, not merely idle).
	FlightEvents uint64 `json:"flight_events"`
}

// OpsOverheadResult is the flight-recorder on/off A/B.
type OpsOverheadResult struct {
	Workload string        `json:"workload"`
	Browser  string        `json:"browser"`
	Runs     int           `json:"runs"`
	Off      OpsArm        `json:"off"`
	On       OpsArm        `json:"on"`
	Overhead float64       `json:"overhead_pct"`
	Budget   time.Duration `json:"timeslice_ns"`
}

// opsOverheadRuns is the repetition count each arm takes the minimum
// over.
const opsOverheadRuns = 15

// RunOpsOverhead measures the flight recorder's cost on a CPU-bound
// multithreaded workload: opsOverheadRuns interleaved off/on pairs,
// each arm keeping its best wall and CPU; Overhead is the trimmed
// (interquartile) mean per-pair CPU slowdown in percent.
func RunOpsOverhead(cfg Config) (*OpsOverheadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 10 * time.Millisecond
	}
	n := 40_000 * cfg.Scale
	src := fmt.Sprintf(opsOverheadProgram, n)
	classes, err := workloadsCompile(map[string]string{"OpsBench.mj": src})
	if err != nil {
		return nil, err
	}
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	res := &OpsOverheadResult{
		Workload: fmt.Sprintf("burn+handoff n=%d", n),
		Browser:  profile.Name,
		Runs:     opsOverheadRuns,
		Budget:   cfg.Timeslice,
	}
	res.Off = OpsArm{Mode: "flight-off"}
	res.On = OpsArm{Mode: "flight-on"}
	// One untimed warm-up run (process-level warm-up — allocator
	// growth, page faults — would otherwise be charged to whichever
	// arm runs first), then interleaved off/on pairs so machine drift
	// over the measurement affects both arms alike. Each arm keeps its
	// best wall.
	if err := runOpsOnce(cfg, profile, classes, false, nil); err != nil {
		return nil, err
	}
	ratios := make([]float64, 0, opsOverheadRuns)
	for i := 0; i < opsOverheadRuns; i++ {
		var off, on OpsArm
		// Alternate which arm goes first: the second run of a pair
		// systematically sees a slightly different machine (cache
		// residency, thermal state), and a fixed order would turn that
		// into a fake overhead.
		first, second, firstArm, secondArm := false, true, &off, &on
		if i%2 == 1 {
			first, second, firstArm, secondArm = true, false, &on, &off
		}
		if err := runOpsOnce(cfg, profile, classes, first, firstArm); err != nil {
			return nil, err
		}
		if err := runOpsOnce(cfg, profile, classes, second, secondArm); err != nil {
			return nil, err
		}
		if off.CPU > 0 {
			ratios = append(ratios, float64(on.CPU)/float64(off.CPU))
		}
		res.Off.fold(off)
		res.On.fold(on)
	}
	// Overhead is the interquartile mean of the per-pair CPU ratios,
	// not the ratio of the minima: adjacent runs share the machine's
	// momentary speed (frequency scaling, co-tenant load), so a pair's
	// ratio cancels drift that would swamp a floor-vs-floor comparison;
	// trimming the top and bottom quartile discards pairs that
	// straddled a speed transition, and averaging the middle half uses
	// more of the sample than a lone median would.
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		lo, hi := len(ratios)/4, len(ratios)-len(ratios)/4
		var sum float64
		for _, r := range ratios[lo:hi] {
			sum += r
		}
		res.Overhead = 100 * (sum/float64(hi-lo) - 1)
	}
	return res, nil
}

// fold merges one repetition into the arm's best-so-far numbers.
func (a *OpsArm) fold(run OpsArm) {
	if a.CPU == 0 || (run.CPU > 0 && run.CPU < a.CPU) {
		a.CPU = run.CPU
	}
	if a.Wall == 0 || (run.Wall > 0 && run.Wall < a.Wall) {
		a.Wall = run.Wall
	}
	if run.FlightEvents > 0 {
		a.FlightEvents = run.FlightEvents
	}
}

// runOpsOnce executes one repetition and folds its best-so-far wall
// and CPU into arm (nil arm = untimed warm-up).
func runOpsOnce(cfg Config, profile browser.Profile, classes map[string][]byte, flight bool, arm *OpsArm) error {
	mode := "flight-off"
	if flight {
		mode = "flight-on"
	}
	hub := telemetry.NewHub()
	if flight {
		hub.EnableFlight(telemetry.DefaultFlightCapacity)
	}
	win := fleet.NewEnv(profile, hub).Win
	var stdout bytes.Buffer
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        cfg.Timeslice,
		DisableEngineTax: true,
	})
	start := time.Now()
	if err := vm.RunMain("OpsBench", nil); err != nil {
		return fmt.Errorf("%s arm: %w\n%s", mode, err, stdout.String())
	}
	wall := time.Since(start)
	if !strings.Contains(stdout.String(), "sum ") {
		return fmt.Errorf("%s arm produced no output", mode)
	}
	if arm == nil {
		return nil // warm-up run: not timed
	}
	if cpu := vm.Runtime().Stats().CPUTime; arm.CPU == 0 || cpu < arm.CPU {
		arm.CPU = cpu
	}
	if arm.Wall == 0 || wall < arm.Wall {
		arm.Wall = wall
	}
	if flight {
		arm.FlightEvents = hub.Flight.Total()
	}
	return nil
}

// FormatOpsOverhead renders the comparison.
func FormatOpsOverhead(r *OpsOverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flight-recorder overhead — %s on %s (best of %d)\n",
		r.Workload, r.Browser, r.Runs)
	fmt.Fprintf(&b, "  %-11s wall %8s  cpu %8s\n",
		r.Off.Mode, r.Off.Wall.Round(time.Millisecond), r.Off.CPU.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-11s wall %8s  cpu %8s  (%d events recorded)\n",
		r.On.Mode, r.On.Wall.Round(time.Millisecond), r.On.CPU.Round(time.Millisecond), r.On.FlightEvents)
	fmt.Fprintf(&b, "  overhead: %+.2f%% (cpu)\n", r.Overhead)
	return b.String()
}

// WriteOpsReport writes the overhead result as indented JSON
// (BENCH_ops.json).
func WriteOpsReport(path string, r *OpsOverheadResult) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Guest-profiler overhead harness: measures what the sampling
// profiler costs a running workload. DeltaBlue — field- and
// virtual-call-heavy, so the CPU sampler's stack walks are as deep as
// they get — runs with the profiler attached and detached; the report
// (BENCH_prof.json) records both arms so CI can hold the overhead
// under its budget — continuous profiling is only viable if sampling
// is nearly free.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/profile"
)

// ProfArm is one arm of the profiler overhead comparison.
type ProfArm struct {
	Mode string `json:"mode"`
	// Wall is the best (minimum) wall time over Runs repetitions.
	Wall time.Duration `json:"wall_ns"`
	// CPU is the best per-run scheduler CPU time — thread execution
	// only, which is where sampling cost lands and what Overhead is
	// computed from (wall on a timeslice-batched workload is dominated
	// by timer jitter).
	CPU time.Duration `json:"cpu_ns"`
	// Samples is how many CPU samples the arm's profiler folded (zero
	// on the off arm — the profiler is nil, not merely idle).
	Samples int64 `json:"samples"`
}

// ProfOverheadResult is the profiler on/off A/B.
type ProfOverheadResult struct {
	Workload string        `json:"workload"`
	Browser  string        `json:"browser"`
	Runs     int           `json:"runs"`
	Off      ProfArm       `json:"off"`
	On       ProfArm       `json:"on"`
	Overhead float64       `json:"overhead_pct"`
	Budget   time.Duration `json:"timeslice_ns"`
	// HotMethod is the hottest guest method the on arm's profiler saw
	// in its last repetition — a fidelity check riding along with the
	// overhead numbers (CI asserts it is a DeltaBlue method).
	HotMethod string `json:"hot_method"`
}

// profOverheadRuns is the repetition count each arm takes the minimum
// over.
const profOverheadRuns = 15

// RunProfOverhead measures the sampling profiler's cost on DeltaBlue:
// profOverheadRuns interleaved off/on pairs, each arm keeping its best
// wall and CPU; Overhead is the trimmed (interquartile) mean per-pair
// CPU slowdown in percent — the same pair-ratio methodology as the
// flight-recorder A/B, for the same reason (adjacent runs share the
// machine's momentary speed, so a pair's ratio cancels drift).
func RunProfOverhead(cfg Config) (*ProfOverheadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 10 * time.Millisecond
	}
	classes, err := workloads.Classes()
	if err != nil {
		return nil, err
	}
	spec := MicroWorkloads[0] // DeltaBlue
	prof := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		prof = cfg.Browsers[0]
	}
	res := &ProfOverheadResult{
		Workload: spec.ID,
		Browser:  prof.Name,
		Runs:     profOverheadRuns,
		Budget:   cfg.Timeslice,
	}
	res.Off = ProfArm{Mode: "prof-off"}
	res.On = ProfArm{Mode: "prof-on"}
	// One untimed warm-up, then interleaved off/on pairs with
	// alternating order (see opsbench.go for why).
	if err := runProfOnce(cfg, prof, spec, classes, false, nil, res); err != nil {
		return nil, err
	}
	ratios := make([]float64, 0, profOverheadRuns)
	for i := 0; i < profOverheadRuns; i++ {
		var off, on ProfArm
		first, second, firstArm, secondArm := false, true, &off, &on
		if i%2 == 1 {
			first, second, firstArm, secondArm = true, false, &on, &off
		}
		if err := runProfOnce(cfg, prof, spec, classes, first, firstArm, res); err != nil {
			return nil, err
		}
		if err := runProfOnce(cfg, prof, spec, classes, second, secondArm, res); err != nil {
			return nil, err
		}
		if off.CPU > 0 {
			ratios = append(ratios, float64(on.CPU)/float64(off.CPU))
		}
		res.Off.fold(off)
		res.On.fold(on)
	}
	// Interquartile mean of the per-pair CPU ratios (not the ratio of
	// the minima) — trimming discards pairs that straddled a machine
	// speed transition.
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		lo, hi := len(ratios)/4, len(ratios)-len(ratios)/4
		var sum float64
		for _, r := range ratios[lo:hi] {
			sum += r
		}
		res.Overhead = 100 * (sum/float64(hi-lo) - 1)
	}
	return res, nil
}

// fold merges one repetition into the arm's best-so-far numbers.
func (a *ProfArm) fold(run ProfArm) {
	if a.CPU == 0 || (run.CPU > 0 && run.CPU < a.CPU) {
		a.CPU = run.CPU
	}
	if a.Wall == 0 || (run.Wall > 0 && run.Wall < a.Wall) {
		a.Wall = run.Wall
	}
	if run.Samples > 0 {
		a.Samples = run.Samples
	}
}

// runProfOnce executes one repetition on a fresh window and VM and
// folds its wall and CPU into arm (nil arm = untimed warm-up).
func runProfOnce(cfg Config, prof browser.Profile, spec WorkloadSpec, classes map[string][]byte, profiling bool, arm *ProfArm, res *ProfOverheadResult) error {
	mode := "prof-off"
	var gp *profile.Profiler
	if profiling {
		mode = "prof-on"
		gp = profile.New(profile.Options{})
	}
	env := fleet.NewEnv(prof, nil)
	var stdout strings.Builder
	vm := jvm.NewDoppioVM(env.Win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        cfg.Timeslice,
		DisableEngineTax: true,
		Profiler:         gp,
	})
	start := time.Now()
	if err := vm.RunMain(spec.Main, spec.Args(cfg.Scale)); err != nil {
		return fmt.Errorf("%s arm: %w\n%s", mode, err, stdout.String())
	}
	wall := time.Since(start)
	if stdout.Len() == 0 {
		return fmt.Errorf("%s arm produced no output", mode)
	}
	if arm == nil {
		return nil // warm-up run: not timed
	}
	if cpu := vm.Runtime().Stats().CPUTime; arm.CPU == 0 || cpu < arm.CPU {
		arm.CPU = cpu
	}
	if arm.Wall == 0 || wall < arm.Wall {
		arm.Wall = wall
	}
	if gp != nil {
		arm.Samples = gp.Samples()
		if top := gp.TopMethods(profile.CPU, 1); len(top) > 0 {
			res.HotMethod = top[0].Method
		}
	}
	return nil
}

// FormatProfOverhead renders the comparison.
func FormatProfOverhead(r *ProfOverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guest-profiler overhead — %s on %s (best of %d)\n",
		r.Workload, r.Browser, r.Runs)
	fmt.Fprintf(&b, "  %-9s wall %8s  cpu %8s\n",
		r.Off.Mode, r.Off.Wall.Round(time.Millisecond), r.Off.CPU.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-9s wall %8s  cpu %8s  (%d cpu samples; hottest: %s)\n",
		r.On.Mode, r.On.Wall.Round(time.Millisecond), r.On.CPU.Round(time.Millisecond),
		r.On.Samples, r.HotMethod)
	fmt.Fprintf(&b, "  overhead: %+.2f%% (cpu)\n", r.Overhead)
	return b.String()
}

// WriteProfReport writes the overhead result as indented JSON
// (BENCH_prof.json).
func WriteProfReport(path string, r *ProfOverheadResult) error {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"doppio/internal/telemetry"
)

// Responsiveness is the §7.1.3 view of one workload: how long the
// event loop was blocked by the longest single macrotask (the "longest
// pause" — the time during which the page cannot respond to input),
// reported beside throughput. The paper demonstrates the trade-off by
// varying the time slice; this report measures the pauses a run
// actually produced.
type Responsiveness struct {
	Workload string
	Browser  string
	// Wall is the workload's wall-clock time (throughput).
	Wall time.Duration
	// Tasks is the number of macrotasks the event loop dispatched.
	Tasks int64
	// LongestPause is the maximum single macrotask duration.
	LongestPause time.Duration
	// P95 and P99 are dispatch-duration quantiles.
	P95, P99 time.Duration
	// Instructions is the executed bytecode count.
	Instructions int64
}

// RunResponsiveness measures the §7.1.3 responsiveness profile of the
// Figure 3 workloads on the first configured browser (default:
// Chrome 28). Each workload runs with a fresh metrics hub so pauses
// are attributed per workload.
func RunResponsiveness(cfg Config) ([]Responsiveness, error) {
	cfg = cfg.withDefaults()
	profile := cfg.Browsers[0]
	var out []Responsiveness
	for _, spec := range Fig3Workloads {
		runCfg := cfg
		runCfg.Telemetry = telemetry.NewHub()
		run, err := RunDoppio(spec, cfg.Scale, profile, runCfg)
		if err != nil {
			return nil, err
		}
		st := runCfg.Telemetry.Registry.Histogram("eventloop", "dispatch").Stats()
		out = append(out, Responsiveness{
			Workload:     spec.ID,
			Browser:      profile.Name,
			Wall:         run.Wall,
			Tasks:        st.Count,
			LongestPause: time.Duration(st.Max),
			P95:          time.Duration(st.P95),
			P99:          time.Duration(st.P99),
			Instructions: run.Instructions,
		})
	}
	return out, nil
}

// FormatResponsiveness renders the report as a text table.
func FormatResponsiveness(rows []Responsiveness) string {
	var b strings.Builder
	b.WriteString("Responsiveness (§7.1.3): longest event-loop pause per workload\n")
	fmt.Fprintf(&b, "%-22s %-14s %10s %8s %10s %10s %10s %12s\n",
		"workload", "browser", "wall", "tasks", "pause-max", "pause-p95", "pause-p99", "instructions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-14s %10s %8d %10s %10s %10s %12d\n",
			r.Workload, r.Browser, r.Wall.Round(time.Millisecond), r.Tasks,
			fmtPause(r.LongestPause), fmtPause(r.P95), fmtPause(r.P99), r.Instructions)
	}
	return b.String()
}

func fmtPause(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/fstrace"
	"doppio/internal/jvm"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
	"doppio/internal/vfs/faultfs"
	"doppio/internal/vfs/retry"
)

// FSFaultsParams configures the fault-injection A/B harness: the same
// fstrace workload replayed through the full vfs.Stack once clean and
// once with deterministic faults injected under the retry layer. The
// harness's claim is behavioural, not statistical — the faulty pass
// must produce a bit-identical op log, proving the retry/backoff layer
// absorbed every injected fault.
type FSFaultsParams struct {
	// Backend selects the storage mechanism (same names as
	// FSCacheParams.Backend); remote-style backends ("cloud") are the
	// ones whose network the fault model stands in for.
	Backend string
	// Rate is the per-operation fault probability in [0, 1) — the
	// -fs-faults flag. FaultPlan maps it onto a mix of pre-commit
	// errors, lost acknowledgements, and short transfers.
	Rate float64
	// Seed fixes the fault sequence and retry jitter (-fault-seed).
	Seed int64
	// Latency is the simulated round trip for the cloud backend.
	Latency time.Duration
	// Trace shapes the generated workload.
	Trace fstrace.GenerateParams
}

// FaultPlan maps a single fault rate onto the harness's standard mix:
// errno faults at the full rate (a quarter of them post-commit, the
// lost-ack case), short transfers at half of it.
func FaultPlan(rate float64, seed int64) faultfs.Plan {
	if rate <= 0 {
		return faultfs.Plan{}
	}
	return faultfs.Plan{Seed: seed, ErrRate: rate, PostFrac: 0.25, ShortRate: rate / 2}
}

// faultRetryPolicy is the harness's retry policy: generous attempts so
// absorption is all but certain at the 1–25% rates the harness runs,
// short waits so the bench stays fast, jitter seeded for repeatability.
func faultRetryPolicy(seed int64) retry.Policy {
	return retry.Policy{
		MaxAttempts: 8,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        seed,
	}
}

// FSFaultsPhase is one measured replay pass.
type FSFaultsPhase struct {
	Name  string
	OkOps int
	Wall  time.Duration
}

// FSFaultsResult is the full A/B comparison.
type FSFaultsResult struct {
	Backend  string
	Rate     float64
	Seed     int64
	TraceOps int
	Clean    FSFaultsPhase
	Faulty   FSFaultsPhase
	// Diff is empty when the two op logs are bit-identical, else the
	// first divergence.
	Diff   string
	Faults faultfs.Stats // injector decisions during the faulty pass
	Retry  vfs.RetryStats
	Cache  vfs.CacheStats
}

// BitIdentical reports whether the faulty replay matched the clean one
// operation for operation.
func (r *FSFaultsResult) BitIdentical() bool { return r.Diff == "" }

// RunFSFaults replays the generated trace through the full decorator
// stack — backend → faults → retry → cache (→ instrument) — once with
// a disabled plan and once at the requested rate, and compares the two
// op logs. Seeding happens through a separate fault-free front end so
// both passes start from identical trees.
func RunFSFaults(cfg Config, p FSFaultsParams) (*FSFaultsResult, error) {
	cfg = cfg.withDefaults()
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.NewHub()
	}
	if p.Backend == "" {
		p.Backend = "cloud"
	}
	trace := fstrace.Generate(p.Trace)
	res := &FSFaultsResult{Backend: p.Backend, Rate: p.Rate, Seed: p.Seed, TraceOps: len(trace.Ops)}

	run := func(label string, plan faultfs.Plan) (FSFaultsPhase, []fstrace.OpResult, vfs.Backend, error) {
		win, bufs := newWindowFS(profile)
		if cfg.Telemetry != nil {
			win.EnableTelemetry(cfg.Telemetry)
		}
		inner, err := NewFSCacheBackend(p.Backend, win, bufs, p.Latency)
		if err != nil {
			return FSFaultsPhase{}, nil, nil, err
		}
		// Instrument innermost so "vfs.<Name>" counts genuine backend
		// round trips (retries included); Stack's own telemetry layer is
		// deliberately omitted to keep that counter's meaning.
		instrumented := vfs.Instrument(inner, hub)
		opts := []vfs.StackOption{
			vfs.WithRetry(vfs.RetryOptions{Policy: faultRetryPolicy(p.Seed), Loop: win.Loop, Hub: hub}),
			vfs.WithCache(vfs.CacheOptions{Hub: hub}),
		}
		if plan.Enabled() {
			opts = append(opts, vfs.WithFaults(plan))
		}
		b := vfs.Stack(instrumented, opts...)
		seedFS := vfs.New(win.Loop, bufs, instrumented)
		fs := vfs.New(win.Loop, bufs, b)

		var phase FSFaultsPhase
		var log []fstrace.OpResult
		if err := fleet.Drive(win.Loop, "fsfaults", func(done func(error)) {
			fstrace.SeedVFS(seedFS, trace, func(err error) {
				if err != nil {
					done(err)
					return
				}
				start := time.Now()
				fstrace.ReplayVFSRecord(win.Loop, fs, trace, cfg.Telemetry, func(ok int, l []fstrace.OpResult, err error) {
					if err != nil {
						done(err)
						return
					}
					phase = FSFaultsPhase{Name: label, OkOps: ok, Wall: time.Since(start)}
					log = l
					done(nil)
				})
			})
		}); err != nil {
			return FSFaultsPhase{}, nil, nil, err
		}
		return phase, log, b, nil
	}

	clean, cleanLog, _, err := run("clean", faultfs.Plan{})
	if err != nil {
		return nil, err
	}
	faulty, faultyLog, b, err := run("faulty", FaultPlan(p.Rate, p.Seed))
	if err != nil {
		return nil, err
	}
	res.Clean, res.Faulty = clean, faulty
	res.Diff = fstrace.DiffLogs(cleanLog, faultyLog)
	if fs, ok := vfs.Find[vfs.FaultStatser](b); ok {
		res.Faults = fs.FaultStats()
	}
	if rs, ok := vfs.Find[vfs.RetryStatser](b); ok {
		res.Retry = rs.RetryStats()
	}
	if cs, ok := vfs.Find[vfs.CacheStatser](b); ok {
		res.Cache = cs.CacheStats()
	}
	return res, nil
}

// FormatFSFaults renders the comparison; the "bit-identical" verdict
// line is stable for grepping in CI smoke checks.
func FormatFSFaults(r *FSFaultsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault A/B: backend=%s trace=%d ops rate=%.0f%% seed=%d\n",
		r.Backend, r.TraceOps, r.Rate*100, r.Seed)
	for _, ph := range []FSFaultsPhase{r.Clean, r.Faulty} {
		fmt.Fprintf(&sb, "  %-7s %5d/%d ok in %v\n", ph.Name+":", ph.OkOps, r.TraceOps, ph.Wall.Round(time.Microsecond))
	}
	if r.BitIdentical() {
		fmt.Fprintf(&sb, "  op log: bit-identical to fault-free run\n")
	} else {
		fmt.Fprintf(&sb, "  op log: DIVERGED — %s\n", r.Diff)
	}
	f := r.Faults
	fmt.Fprintf(&sb, "  injected: %d pre / %d post / %d short / %d delays over %d backend calls\n",
		f.ErrsPre, f.ErrsPost, f.Shorts, f.Delays, f.Ops)
	rt := r.Retry
	fmt.Fprintf(&sb, "  retry: %d ops, %d attempts (%d retries), %d lost acks recovered via %d verify probes, %v backoff\n",
		rt.Ops, rt.Attempts, rt.Retries, rt.Recovered, rt.VerifyProbes,
		time.Duration(rt.BackoffNanos).Round(time.Microsecond))
	fmt.Fprintf(&sb, "  breaker: %s (%d fast-fails, %d deadline-exceeded, %d degraded serves)\n",
		rt.BreakerState, rt.FastFails, rt.DeadlineExceeded, r.Cache.DegradedServes)
	return sb.String()
}

// ClassloadFaultsResult reports JVM class loading through the faulty
// stack: every class must still load, with byte-exact contents.
type ClassloadFaultsResult struct {
	Backend    string
	Classes    int
	Rate       float64
	Seed       int64
	LoadErrors int
	Mismatches int // classes whose loaded bytes differed from the seed
	Faults     faultfs.Stats
	Retry      vfs.RetryStats
}

// RunClassloadFaults loads the compiled workload classes through a
// VFSClassProvider over the faulty stack — the §6.4 class-load path
// under an unreliable backend.
func RunClassloadFaults(cfg Config, backendName string, rate float64, seed int64, latency time.Duration) (*ClassloadFaultsResult, error) {
	cfg = cfg.withDefaults()
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.NewHub()
	}
	classes, err := workloads.Classes()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)

	win, bufs := newWindowFS(profile)
	if cfg.Telemetry != nil {
		win.EnableTelemetry(cfg.Telemetry)
	}
	inner, err := NewFSCacheBackend(backendName, win, bufs, latency)
	if err != nil {
		return nil, err
	}
	instrumented := vfs.Instrument(inner, hub)
	b := vfs.Stack(instrumented,
		vfs.WithFaults(FaultPlan(rate, seed)),
		vfs.WithRetry(vfs.RetryOptions{Policy: faultRetryPolicy(seed), Loop: win.Loop, Hub: hub}),
		vfs.WithCache(vfs.CacheOptions{Hub: hub}),
	)
	seedFS := vfs.New(win.Loop, bufs, instrumented)
	fs := vfs.New(win.Loop, bufs, b)
	provider := &jvm.VFSClassProvider{FS: fs, Dirs: []string{"/cp1", "/cp2"}}

	res := &ClassloadFaultsResult{Backend: backendName, Classes: len(names), Rate: rate, Seed: seed}
	if err := fleet.Drive(win.Loop, "classload-faults", func(done func(error)) {
		var seedStep func(i int, then func())
		seedStep = func(i int, then func()) {
			if i == len(names) {
				then()
				return
			}
			p := "/cp2/" + names[i] + ".class"
			dir := p[:strings.LastIndexByte(p, '/')]
			seedFS.MkdirAll(dir, func(err error) {
				if err != nil {
					done(err)
					return
				}
				seedFS.WriteFile(p, classes[names[i]], func(err error) {
					if err != nil {
						done(err)
						return
					}
					seedStep(i+1, then)
				})
			})
		}
		var load func(i int)
		load = func(i int) {
			if i == len(names) {
				done(nil)
				return
			}
			name := names[i]
			provider.BytesAsync(name, func(data []byte, err error) {
				switch {
				case err != nil:
					res.LoadErrors++
				case string(data) != string(classes[name]):
					res.Mismatches++
				}
				load(i + 1)
			})
		}
		seedFS.MkdirAll("/cp1", func(err error) {
			if err != nil {
				done(err)
				return
			}
			seedStep(0, func() { load(0) })
		})
	}); err != nil {
		return nil, err
	}
	if fs, ok := vfs.Find[vfs.FaultStatser](b); ok {
		res.Faults = fs.FaultStats()
	}
	if rs, ok := vfs.Find[vfs.RetryStatser](b); ok {
		res.Retry = rs.RetryStats()
	}
	return res, nil
}

// FormatClassloadFaults renders the class-load-under-faults report.
func FormatClassloadFaults(r *ClassloadFaultsResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class-load under faults: backend=%s classes=%d rate=%.0f%% seed=%d\n",
		r.Backend, r.Classes, r.Rate*100, r.Seed)
	if r.LoadErrors == 0 && r.Mismatches == 0 {
		fmt.Fprintf(&sb, "  all classes loaded byte-exact through the faulty stack\n")
	} else {
		fmt.Fprintf(&sb, "  FAILED: %d load errors, %d byte mismatches\n", r.LoadErrors, r.Mismatches)
	}
	f := r.Faults
	rt := r.Retry
	fmt.Fprintf(&sb, "  injected: %d pre / %d post / %d short over %d backend calls; retry absorbed %d with %v backoff\n",
		f.ErrsPre, f.ErrsPost, f.Shorts, f.Ops, rt.Retries,
		time.Duration(rt.BackoffNanos).Round(time.Microsecond))
	return sb.String()
}

package bench

import (
	"testing"

	"doppio/internal/fstrace"
)

func TestFSCacheWarmHalvesBackendOps(t *testing.T) {
	res, err := RunFSCache(Config{Scale: 1}, FSCacheParams{
		Backend: "cloud",
		Trace:   fstrace.GenerateParams{Ops: 150, UniqueFiles: 40, BytesRead: 120_000, BytesWritten: 4_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncached.OkOps != res.Cold.OkOps || res.Cold.OkOps != res.Warm.OkOps {
		t.Fatalf("ok-op counts diverge: %+v / %+v / %+v", res.Uncached, res.Cold, res.Warm)
	}
	if res.Warm.BackendOps*2 > res.Uncached.BackendOps {
		t.Errorf("warm backend ops = %d, want <= half of uncached %d",
			res.Warm.BackendOps, res.Uncached.BackendOps)
	}
	if res.Warm.BackendOps > res.Cold.BackendOps {
		t.Errorf("warm pass (%d ops) should not exceed cold pass (%d ops)",
			res.Warm.BackendOps, res.Cold.BackendOps)
	}
	if res.Cache.Hits == 0 && res.Cache.StatHits == 0 {
		t.Errorf("cache reported no hits: %+v", res.Cache)
	}
}

func TestFSCacheWriteBackAbsorbsWrites(t *testing.T) {
	res, err := RunFSCache(Config{Scale: 1}, FSCacheParams{
		Backend:   "inmemory",
		WriteBack: true,
		Trace:     fstrace.GenerateParams{Ops: 400, UniqueFiles: 30, BytesRead: 60_000, BytesWritten: 6_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.WritebackQueued == 0 {
		t.Errorf("write-back pass queued no writes: %+v", res.Cache)
	}
	// Queued counts buffered Sync calls; re-dirtying a queued path
	// dedups in the FIFO, so flushed <= queued — but the final flush
	// must leave nothing dirty.
	if res.Cache.WritebackFlushed == 0 || res.Cache.WritebackFlushed > res.Cache.WritebackQueued {
		t.Errorf("write-back flush accounting wrong: %+v", res.Cache)
	}
	if res.Cache.DirtyEntries != 0 {
		t.Errorf("final flush left %d dirty entries", res.Cache.DirtyEntries)
	}
	if res.Warm.BackendOps*2 > res.Uncached.BackendOps {
		t.Errorf("warm backend ops = %d, want <= half of uncached %d",
			res.Warm.BackendOps, res.Uncached.BackendOps)
	}
}

func TestFSCacheUnknownBackend(t *testing.T) {
	if _, err := RunFSCache(Config{Scale: 1}, FSCacheParams{Backend: "floppy"}); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

func TestClassloadFSCache(t *testing.T) {
	res, err := RunClassloadFSCache(Config{Scale: 1}, "cloud", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes == 0 {
		t.Fatal("no classes compiled")
	}
	// Warm loads are served almost entirely by the cache: the empty
	// /cp1 probes hit negative stat entries and the /cp2 reads hit the
	// page cache.
	if res.WarmOps*2 > res.UncachedOps {
		t.Errorf("warm class-load ops = %d, want <= half of uncached %d", res.WarmOps, res.UncachedOps)
	}
	if res.Cache.NegativeHits == 0 {
		t.Errorf("classpath probing produced no negative-stat hits: %+v", res.Cache)
	}
}

// Scheduler A/B harness: quantifies the two scheduler-core features —
// macrotask slice batching (one §4.4 resumption round trip covering
// many timeslices) and the priority run queue — on JVM workloads, and
// writes the results to a JSON report (BENCH_sched.json).
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
)

// SchedRun captures the scheduler-relevant counters of one arm of an
// A/B comparison.
type SchedRun struct {
	Mode            string        `json:"mode"`
	Wall            time.Duration `json:"wall_ns"`
	Suspensions     int           `json:"suspensions"`
	SuspendedTime   time.Duration `json:"suspended_ns"`
	ContextSwitches int           `json:"context_switches"`
	Slices          int           `json:"slices"`
	Batches         int           `json:"batches"`
	MaxBatchSlices  int           `json:"max_batch_slices"`
	BudgetOverruns  int           `json:"budget_overruns"`
	LongestTask     time.Duration `json:"longest_task_ns"`
	FirstDone       time.Duration `json:"first_done_ns,omitempty"`
	Order           []string      `json:"order,omitempty"`

	output string
}

// SchedBatchResult is the slice-batching A/B: the same multithreaded
// producer/consumer workload (examples/multithread) with batching
// disabled (one timeslice per macrotask, the pre-batching scheduler)
// versus enabled, at the same timeslice — i.e. equal responsiveness,
// enforced by the watchdog on both arms.
type SchedBatchResult struct {
	Workload  string        `json:"workload"`
	Browser   string        `json:"browser"`
	Timeslice time.Duration `json:"timeslice_ns"`
	Watchdog  time.Duration `json:"watchdog_ns"`
	Unbatched SchedRun      `json:"unbatched"`
	Batched   SchedRun      `json:"batched"`
}

// SuspensionRatio is how many times fewer §4.4 round trips the batched
// arm paid.
func (r *SchedBatchResult) SuspensionRatio() float64 {
	if r.Batched.Suspensions == 0 {
		return float64(r.Unbatched.Suspensions)
	}
	return float64(r.Unbatched.Suspensions) / float64(r.Batched.Suspensions)
}

// schedBatchProgram is the examples/multithread producer/consumer
// (Object.wait/notify + Thread.sleep) with the item count templated.
const schedBatchProgram = `
class Queue {
    Object lock = new Object();
    int[] items = new int[4];
    int count;

    void put(int v) {
        synchronized (lock) {
            while (count == items.length) { lock.wait(); }
            items[count] = v;
            count++;
            lock.notifyAll();
        }
    }

    int take() {
        synchronized (lock) {
            while (count == 0) { lock.wait(); }
            count--;
            int v = items[count];
            lock.notifyAll();
            return v;
        }
    }
}

class Producer extends Thread {
    Queue q;
    int n;
    Producer(Queue q, int n) { this.q = q; this.n = n; }
    public void run() {
        for (int i = 1; i <= n; i++) {
            q.put(i);
            if (i %% 8 == 0) { Thread.sleep(1L); }
        }
    }
}

class Consumer extends Thread {
    Queue q;
    int n;
    int sum;
    Consumer(Queue q, int n) { this.q = q; this.n = n; }
    public void run() {
        for (int i = 0; i < n; i++) {
            sum += q.take();
        }
    }
}

public class Sched {
    public static void main(String[] args) {
        int n = %d;
        Queue q = new Queue();
        Producer p = new Producer(q, n);
        Consumer a = new Consumer(q, n / 2);
        Consumer b = new Consumer(q, n / 2);
        p.start();
        a.start();
        b.start();
        p.join();
        a.join();
        b.join();
        System.out.println("total " + (a.sum + b.sum));
    }
}
`

// schedPrioProgram spawns four equal CPU-bound workers; the
// prioritized variant ranks them by Thread.setPriority (spawn order is
// lowest-priority first, so priority — not spawn order — must explain
// a descending completion order).
const schedPrioProgram = `
class Worker extends Thread {
    int id;
    int n;
    Worker(int id, int n) { this.id = id; this.n = n; }
    int step(int acc, int i) {
        return acc + i;
    }
    public void run() {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            acc = step(acc, i);
        }
        System.out.println("done " + id);
    }
}

public class Sched {
    public static void main(String[] args) {
        int n = %d;
        Worker w1 = new Worker(1, n);
        Worker w2 = new Worker(2, n);
        Worker w3 = new Worker(3, n);
        Worker w4 = new Worker(4, n);
%s        w1.start();
        w2.start();
        w3.start();
        w4.start();
        w1.join();
        w2.join();
        w3.join();
        w4.join();
    }
}
`

const schedPrioSetters = `        w1.setPriority(2);
        w2.setPriority(4);
        w3.setPriority(6);
        w4.setPriority(8);
`

// firstWriteWriter timestamps the first byte written through it — the
// completion print of the first thread to finish.
type firstWriteWriter struct {
	w     io.Writer
	start time.Time
	first time.Duration
}

func (f *firstWriteWriter) Write(p []byte) (int, error) {
	if f.first == 0 && len(p) > 0 {
		f.first = time.Since(f.start)
	}
	return f.w.Write(p)
}

// runSchedProgram executes one compiled arm and collects the
// scheduler counters.
func runSchedProgram(cfg Config, mode, src string, batchBudget, watchdog time.Duration) (SchedRun, error) {
	classes, err := workloadsCompile(map[string]string{"Sched.mj": src})
	if err != nil {
		return SchedRun{}, err
	}
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	profile.WatchdogLimit = watchdog
	win := fleet.NewEnv(profile, cfg.Telemetry).Win
	var stdout bytes.Buffer
	fw := &firstWriteWriter{w: &stdout, start: time.Now()}
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           fw,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        cfg.Timeslice,
		BatchBudget:      batchBudget,
		DisableEngineTax: cfg.DisableEngineTax,
	})
	start := time.Now()
	fw.start = start
	if err := vm.RunMain("Sched", nil); err != nil {
		return SchedRun{}, fmt.Errorf("%s arm: %w\n%s", mode, err, stdout.String())
	}
	wall := time.Since(start)
	st := vm.Runtime().Stats()
	return SchedRun{
		Mode:            mode,
		Wall:            wall,
		Suspensions:     st.Suspensions,
		SuspendedTime:   st.SuspendedTime,
		ContextSwitches: st.ContextSwitches,
		Slices:          st.Slices,
		Batches:         st.Batches,
		MaxBatchSlices:  st.MaxBatchSlices,
		BudgetOverruns:  st.BudgetOverruns,
		LongestTask:     win.Loop.Stats().LongestTask,
		FirstDone:       fw.first,
		output:          stdout.String(),
	}, nil
}

// RunSchedBatch runs the slice-batching A/B on the producer/consumer
// workload. Both arms share one timeslice (the responsiveness bound);
// only BatchBudget differs: -1 (one slice per macrotask) vs 0 (budget
// = timeslice). A watchdog ~5x the timeslice guards both arms, so a
// batch that outgrew its budget would fail the run, not just skew it.
func RunSchedBatch(cfg Config) (*SchedBatchResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 10 * time.Millisecond
	}
	watchdog := 5 * cfg.Timeslice
	items := 64 * cfg.Scale
	src := fmt.Sprintf(schedBatchProgram, items)
	res := &SchedBatchResult{
		Workload:  fmt.Sprintf("producer-consumer n=%d", items),
		Timeslice: cfg.Timeslice,
		Watchdog:  watchdog,
	}
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	res.Browser = profile.Name

	want := fmt.Sprintf("total %d\n", items*(items+1)/2)
	unbatched, err := runSchedProgram(cfg, "unbatched", src, -1, watchdog)
	if err != nil {
		return nil, err
	}
	if unbatched.output != want {
		return nil, fmt.Errorf("unbatched arm produced %q, want %q", unbatched.output, want)
	}
	batched, err := runSchedProgram(cfg, "batched", src, 0, watchdog)
	if err != nil {
		return nil, err
	}
	if batched.output != want {
		return nil, fmt.Errorf("batched arm produced %q, want %q", batched.output, want)
	}
	res.Unbatched, res.Batched = unbatched, batched
	return res, nil
}

// FormatSchedBatch renders the batching A/B.
func FormatSchedBatch(r *SchedBatchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduler slice batching — %s on %s (timeslice %v, watchdog %v)\n",
		r.Workload, r.Browser, r.Timeslice, r.Watchdog)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %9s %8s %8s %12s\n",
		"mode", "wall", "suspensions", "suspended", "ctxsw", "batches", "max/b", "longest-task")
	for _, run := range []SchedRun{r.Unbatched, r.Batched} {
		fmt.Fprintf(&b, "%-10s %10v %12d %10v %9d %8d %8d %12v\n",
			run.Mode, run.Wall.Round(time.Millisecond), run.Suspensions,
			run.SuspendedTime.Round(time.Millisecond), run.ContextSwitches,
			run.Batches, run.MaxBatchSlices, run.LongestTask.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "suspension round trips reduced %.1fx\n", r.SuspensionRatio())
	return b.String()
}

// SchedPrioResult is the priority A/B: four equal CPU-bound threads,
// spawned lowest-priority first, with and without Thread.setPriority.
type SchedPrioResult struct {
	Browser     string        `json:"browser"`
	Timeslice   time.Duration `json:"timeslice_ns"`
	Equal       SchedRun      `json:"equal"`
	Prioritized SchedRun      `json:"prioritized"`
}

// PriorityRespected reports whether the highest-priority worker (id 4,
// spawned last) finished first in the prioritized arm.
func (r *SchedPrioResult) PriorityRespected() bool {
	return len(r.Prioritized.Order) > 0 && r.Prioritized.Order[0] == "done 4"
}

// RunSchedPrio runs the priority A/B.
func RunSchedPrio(cfg Config) (*SchedPrioResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Timeslice == 0 {
		cfg.Timeslice = 10 * time.Millisecond
	}
	iters := 60_000 * cfg.Scale
	res := &SchedPrioResult{Timeslice: cfg.Timeslice}
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	res.Browser = profile.Name

	equalSrc := fmt.Sprintf(schedPrioProgram, iters, "")
	prioSrc := fmt.Sprintf(schedPrioProgram, iters, schedPrioSetters)
	equal, err := runSchedProgram(cfg, "equal", equalSrc, 0, 0)
	if err != nil {
		return nil, err
	}
	prio, err := runSchedProgram(cfg, "prioritized", prioSrc, 0, 0)
	if err != nil {
		return nil, err
	}
	equal.Order = doneOrder(equal.output)
	prio.Order = doneOrder(prio.output)
	res.Equal, res.Prioritized = equal, prio
	return res, nil
}

func doneOrder(output string) []string {
	var order []string
	for _, line := range strings.Split(strings.TrimSpace(output), "\n") {
		if strings.HasPrefix(line, "done ") {
			order = append(order, line)
		}
	}
	return order
}

// FormatSchedPrio renders the priority A/B.
func FormatSchedPrio(r *SchedPrioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduler priority run queue — 4 CPU-bound workers on %s (timeslice %v)\n",
		r.Browser, r.Timeslice)
	fmt.Fprintf(&b, "%-12s %10s %12s %9s %-40s\n", "mode", "wall", "first-done", "ctxsw", "completion order")
	for _, run := range []SchedRun{r.Equal, r.Prioritized} {
		fmt.Fprintf(&b, "%-12s %10v %12v %9d %-40s\n",
			run.Mode, run.Wall.Round(time.Millisecond), run.FirstDone.Round(time.Millisecond),
			run.ContextSwitches, strings.Join(run.Order, ", "))
	}
	if r.PriorityRespected() {
		fmt.Fprintf(&b, "highest-priority worker finished first (priority beats spawn order)\n")
	} else {
		fmt.Fprintf(&b, "WARNING: highest-priority worker did not finish first\n")
	}
	return b.String()
}

// SchedReport is the JSON document -sched-batch/-sched-prio write.
type SchedReport struct {
	Batch *SchedBatchResult `json:"batch,omitempty"`
	Prio  *SchedPrioResult  `json:"prio,omitempty"`
}

// WriteSchedReport writes the report as indented JSON.
func WriteSchedReport(path string, rep SchedReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Interpreter speed-tier benchmark: the same workload on the Doppio
// engine with the warm-up rewriter (quickened bytecodes, inline
// caches, superinstructions) on and off, at equal timeslice, with the
// engine-tax model disabled so the A/B isolates real dispatch work.
// The report (BENCH_interp.json) records nearest-rank p50/p95/p99
// wall times per arm, the quickening counters, and a "Not So Fast"-
// style per-opcode attribution table from a separate instrumented
// pass (telemetry itself costs a branch per bytecode, so the timed
// iterations run without it).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/jvm"
	"doppio/internal/telemetry"
)

// InterpParams tune the interpreter A/B run.
type InterpParams struct {
	// Scale is the workload scale (DeltaBlue iterations = 2*Scale).
	Scale int
	// Iters is the number of timed runs per arm (interleaved).
	Iters int
	// Timeslice applies to both arms equally.
	Timeslice time.Duration
}

func (p InterpParams) withDefaults() InterpParams {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Iters <= 0 {
		p.Iters = 5
	}
	if p.Timeslice <= 0 {
		p.Timeslice = 2 * time.Millisecond
	}
	return p
}

// OpCount is one row of the per-opcode attribution table.
type OpCount struct {
	Op    string  `json:"op"`
	Count int64   `json:"count"`
	Share float64 `json:"share"`
}

// InterpArm is one side of the A/B.
type InterpArm struct {
	Quicken bool `json:"quicken"`
	// Nearest-rank percentiles over the per-iteration wall times.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Instructions is the bytecode count of one iteration (identical
	// across iterations — the workload is deterministic).
	Instructions int64 `json:"instructions"`
	// Stats are the engine's quickening counters after the last timed
	// iteration (zero-valued with Enabled=false on the generic arm).
	Stats jvm.QuickStats `json:"quick_stats"`
	// TopOps is the attribution table from the instrumented pass:
	// which opcodes dominate dynamic dispatch. On the quickened arm
	// the counts are raw opcodes at dispatched pcs (a fused pair
	// counts once, at its first opcode).
	TopOps []OpCount `json:"top_ops"`
}

// InterpResult is the BENCH_interp.json payload.
type InterpResult struct {
	Workload  string        `json:"workload"`
	Scale     int           `json:"scale"`
	Iters     int           `json:"iters"`
	Timeslice time.Duration `json:"timeslice_ns"`
	// Cores is the host's usable parallelism (GOMAXPROCS) when the
	// run happened — context for comparing reports across machines.
	Cores     int       `json:"cores"`
	Generic   InterpArm `json:"generic"`
	Quickened InterpArm `json:"quickened"`
	// SpeedupP50 is generic p50 / quickened p50 — the speed tier's
	// headline number (the CI gate requires >= 2).
	SpeedupP50 float64 `json:"speedup_p50"`
	// OutputMatch records that every quickened iteration produced
	// byte-identical stdout to the generic arm.
	OutputMatch bool `json:"output_match"`
}

// runInterpOnce executes the workload once on a fresh window and VM.
func runInterpOnce(spec WorkloadSpec, p InterpParams, quicken bool, hub *telemetry.Hub) (time.Duration, int64, jvm.QuickStats, string, error) {
	classes, err := workloads.Classes()
	if err != nil {
		return 0, 0, jvm.QuickStats{}, "", err
	}
	env := fleet.NewEnv(browser.Chrome28, hub)
	var stdout strings.Builder
	vm := jvm.NewDoppioVM(env.Win, jvm.DoppioOptions{
		Stdout:           &stdout,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        p.Timeslice,
		DisableEngineTax: true,
		Quicken:          quicken,
	})
	start := time.Now()
	if err := vm.RunMain(spec.Main, spec.Args(p.Scale)); err != nil {
		return 0, 0, jvm.QuickStats{}, "", fmt.Errorf("interp %s quicken=%v: %w\n%s", spec.ID, quicken, err, stdout.String())
	}
	return time.Since(start), vm.Instructions, vm.QuickStats(), stdout.String(), nil
}

// attribution runs one instrumented pass and extracts the top-K
// per-opcode execution counts the VM flushed into the hub registry.
func attribution(spec WorkloadSpec, p InterpParams, quicken bool, k int) ([]OpCount, error) {
	hub := telemetry.NewHub()
	if _, _, _, _, err := runInterpOnce(spec, p, quicken, hub); err != nil {
		return nil, err
	}
	var rows []OpCount
	var total int64
	for _, c := range hub.Registry.Snapshot().Counters {
		if c.Subsystem != "jvm" || !strings.HasPrefix(c.Name, "op.") {
			continue
		}
		rows = append(rows, OpCount{Op: strings.TrimPrefix(c.Name, "op."), Count: c.Value})
		total += c.Value
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	if len(rows) > k {
		rows = rows[:k]
	}
	for i := range rows {
		if total > 0 {
			rows[i].Share = float64(rows[i].Count) / float64(total)
		}
	}
	return rows, nil
}

// RunInterp runs the interleaved A/B and assembles the report.
func RunInterp(p InterpParams) (*InterpResult, error) {
	p = p.withDefaults()
	spec := MicroWorkloads[0] // DeltaBlue: field- and virtual-call-heavy
	res := &InterpResult{
		Workload:    spec.ID,
		Scale:       p.Scale,
		Iters:       p.Iters,
		Timeslice:   p.Timeslice,
		Cores:       runtime.GOMAXPROCS(0),
		OutputMatch: true,
	}
	// One warm-up per arm (class-file parsing touches the page cache
	// and the Go runtime warms up); not timed.
	if _, _, _, _, err := runInterpOnce(spec, p, false, nil); err != nil {
		return nil, err
	}
	if _, _, _, _, err := runInterpOnce(spec, p, true, nil); err != nil {
		return nil, err
	}
	var genTimes, qTimes []time.Duration
	for i := 0; i < p.Iters; i++ {
		gw, gi, _, gout, err := runInterpOnce(spec, p, false, nil)
		if err != nil {
			return nil, err
		}
		qw, qi, qst, qout, err := runInterpOnce(spec, p, true, nil)
		if err != nil {
			return nil, err
		}
		genTimes = append(genTimes, gw)
		qTimes = append(qTimes, qw)
		res.Generic.Instructions = gi
		res.Quickened.Instructions = qi
		res.Quickened.Stats = qst
		if gout != qout {
			res.OutputMatch = false
		}
	}
	sort.Slice(genTimes, func(i, j int) bool { return genTimes[i] < genTimes[j] })
	sort.Slice(qTimes, func(i, j int) bool { return qTimes[i] < qTimes[j] })
	res.Generic.P50 = nearestRank(genTimes, 0.50)
	res.Generic.P95 = nearestRank(genTimes, 0.95)
	res.Generic.P99 = nearestRank(genTimes, 0.99)
	res.Quickened.Quicken = true
	res.Quickened.P50 = nearestRank(qTimes, 0.50)
	res.Quickened.P95 = nearestRank(qTimes, 0.95)
	res.Quickened.P99 = nearestRank(qTimes, 0.99)
	if res.Quickened.P50 > 0 {
		res.SpeedupP50 = float64(res.Generic.P50) / float64(res.Quickened.P50)
	}
	const topK = 12
	var err error
	if res.Generic.TopOps, err = attribution(spec, p, false, topK); err != nil {
		return nil, err
	}
	if res.Quickened.TopOps, err = attribution(spec, p, true, topK); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatInterp renders the A/B as a table.
func FormatInterp(r *InterpResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interpreter speed tier — %s scale %d, %d iters, %v timeslice, %d host cores, engine tax off\n",
		r.Workload, r.Scale, r.Iters, r.Timeslice, r.Cores)
	fmt.Fprintf(&b, "  %-9s  %10s  %10s  %10s  %12s\n", "arm", "p50", "p95", "p99", "bytecodes")
	arm := func(name string, a InterpArm) {
		fmt.Fprintf(&b, "  %-9s  %10s  %10s  %10s  %12d\n",
			name, a.P50.Round(time.Microsecond), a.P95.Round(time.Microsecond),
			a.P99.Round(time.Microsecond), a.Instructions)
	}
	arm("generic", r.Generic)
	arm("quickened", r.Quickened)
	st := r.Quickened.Stats
	fmt.Fprintf(&b, "  quickening: sites=%d ic-hits=%d ic-misses=%d deopts=%d fusions=%d fused-exec=%d\n",
		st.Sites, st.ICHits, st.ICMisses, st.Deopts, st.Fusions, st.FusedExec)
	fmt.Fprintf(&b, "  speedup p50: %.2fx   output match: %v\n", r.SpeedupP50, r.OutputMatch)
	b.WriteString("  attribution (generic arm, top dispatched opcodes):\n")
	for _, row := range r.Generic.TopOps {
		fmt.Fprintf(&b, "    %-16s %12d  %5.1f%%\n", row.Op, row.Count, 100*row.Share)
	}
	return b.String()
}

// WriteInterpReport writes the JSON report.
func WriteInterpReport(path string, r *InterpResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

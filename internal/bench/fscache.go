package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"doppio/internal/bench/workloads"
	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/fleet"
	"doppio/internal/fstrace"
	"doppio/internal/jvm"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

// FSCacheParams configures an fstrace A/B comparison of a backend with
// and without the CachedBackend decorator.
type FSCacheParams struct {
	// Backend selects the storage mechanism: "inmemory",
	// "localstorage", "indexeddb", or "cloud".
	Backend string
	// WriteBack enables buffered (write-back) mode for the cached pass.
	WriteBack bool
	// Latency is the simulated round trip for the cloud backend.
	Latency time.Duration
	// Trace shapes the generated workload.
	Trace fstrace.GenerateParams
}

// FSCachePhase is one measured replay pass.
type FSCachePhase struct {
	Name       string
	BackendOps int64 // operations that reached the real backend
	OkOps      int   // trace operations that succeeded
	Wall       time.Duration
}

// FSCacheResult is the full A/B comparison: the same trace replayed
// against the bare backend, then twice against the cached backend
// (cold, then warm).
type FSCacheResult struct {
	Backend   string
	WriteBack bool
	TraceOps  int
	Uncached  FSCachePhase
	Cold      FSCachePhase
	Warm      FSCachePhase
	Cache     vfs.CacheStats
}

// NewFSCacheBackend constructs the named backend inside a window.
func NewFSCacheBackend(name string, w *browser.Window, bufs *buffer.Factory, latency time.Duration) (vfs.Backend, error) {
	switch name {
	case "inmemory":
		return vfs.NewInMemory(), nil
	case "localstorage":
		return vfs.NewLocalStorageFS(w.LocalStorage, bufs), nil
	case "indexeddb":
		return vfs.NewIndexedDBFS(w.IndexedDB, bufs), nil
	case "cloud":
		return vfs.NewCloudFS(w.Loop, vfs.NewCloudStore(latency)), nil
	}
	return nil, fmt.Errorf("unknown fs backend %q (want inmemory, localstorage, indexeddb, or cloud)", name)
}

func newWindowFS(profile browser.Profile) (*browser.Window, *buffer.Factory) {
	env := fleet.NewEnv(profile, nil)
	return env.Win, env.Bufs
}

// RunFSCache replays the generated trace against the selected backend
// bare and cached, counting backend round trips via the Instrument
// decorator's per-backend ops counter (so a cache hit is exactly "an
// operation that never reached the instrumented layer"). Seeding
// always happens through an uncached front end, keeping the cached
// pass honestly cold.
func RunFSCache(cfg Config, p FSCacheParams) (*FSCacheResult, error) {
	cfg = cfg.withDefaults()
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	hub := cfg.Telemetry
	if hub == nil {
		// Backend-op counting rides on Instrument, which needs a hub.
		hub = telemetry.NewHub()
	}
	trace := fstrace.Generate(p.Trace)
	res := &FSCacheResult{Backend: p.Backend, WriteBack: p.WriteBack, TraceOps: len(trace.Ops)}

	run := func(label string, cached bool, replays int) ([]FSCachePhase, vfs.CacheStats, error) {
		win, bufs := newWindowFS(profile)
		if cfg.Telemetry != nil {
			// Attach the caller's hub to the event loop too, so a
			// -trace run of the A/B harness gets dispatch spans.
			win.EnableTelemetry(cfg.Telemetry)
		}
		inner, err := NewFSCacheBackend(p.Backend, win, bufs, p.Latency)
		if err != nil {
			return nil, vfs.CacheStats{}, err
		}
		// Instrument innermost (as the Stack base) so the ops counter
		// keeps meaning "backend round trips": the A/B comparison is
		// exactly the number of operations the cache absorbed.
		instrumented := vfs.Instrument(inner, hub)
		b := instrumented
		if cached {
			b = vfs.Stack(instrumented, vfs.WithCache(vfs.CacheOptions{WriteBack: p.WriteBack, Hub: hub}))
		}
		seedFS := vfs.New(win.Loop, bufs, instrumented)
		fs := vfs.New(win.Loop, bufs, b)
		ops := hub.Registry.Counter("vfs."+inner.Name(), "ops")
		var phases []FSCachePhase
		if err := fleet.Drive(win.Loop, "fscache", func(done func(error)) {
			var step func(i int)
			step = func(i int) {
				if i == replays {
					if fl, ok := b.(vfs.Flusher); ok {
						fl.Flush(done)
						return
					}
					done(nil)
					return
				}
				before := ops.Value()
				start := time.Now()
				fstrace.ReplayVFSWith(win.Loop, fs, trace, cfg.Telemetry, func(ok int, err error) {
					if err != nil {
						done(err)
						return
					}
					phases = append(phases, FSCachePhase{
						Name:       fmt.Sprintf("%s-%d", label, i),
						BackendOps: ops.Value() - before,
						OkOps:      ok,
						Wall:       time.Since(start),
					})
					step(i + 1)
				})
			}
			fstrace.SeedVFS(seedFS, trace, func(err error) {
				if err != nil {
					done(err)
					return
				}
				step(0)
			})
		}); err != nil {
			return nil, vfs.CacheStats{}, err
		}
		var cs vfs.CacheStats
		if s, ok := b.(vfs.CacheStatser); ok {
			cs = s.CacheStats()
		}
		return phases, cs, nil
	}

	uncached, _, err := run("uncached", false, 1)
	if err != nil {
		return nil, err
	}
	cachedPhases, cs, err := run("cached", true, 2)
	if err != nil {
		return nil, err
	}
	res.Uncached = uncached[0]
	res.Cold, res.Warm = cachedPhases[0], cachedPhases[1]
	res.Cache = cs
	return res, nil
}

// FormatFSCache renders the A/B comparison.
func FormatFSCache(r *FSCacheResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FS cache A/B: backend=%s writeback=%v trace=%d ops\n", r.Backend, r.WriteBack, r.TraceOps)
	fmt.Fprintf(&sb, "  %-12s %12s %8s %12s\n", "pass", "backend-ops", "ok-ops", "wall")
	for _, ph := range []FSCachePhase{r.Uncached, r.Cold, r.Warm} {
		fmt.Fprintf(&sb, "  %-12s %12d %8d %12v\n", ph.Name, ph.BackendOps, ph.OkOps, ph.Wall.Round(time.Microsecond))
	}
	if r.Warm.BackendOps > 0 {
		fmt.Fprintf(&sb, "  warm pass: %.1fx fewer backend ops than uncached\n",
			float64(r.Uncached.BackendOps)/float64(r.Warm.BackendOps))
	} else {
		fmt.Fprintf(&sb, "  warm pass: fully served from cache (0 backend ops)\n")
	}
	c := r.Cache
	fmt.Fprintf(&sb, "  cache: open %d/%d hit, stat %d/%d hit (%d negative), readdir %d/%d hit\n",
		c.Hits, c.Hits+c.Misses, c.StatHits, c.StatHits+c.StatMisses, c.NegativeHits,
		c.ReaddirHits, c.ReaddirHits+c.ReaddirMisses)
	fmt.Fprintf(&sb, "  cache: %d evictions, %d B resident, write-back %d queued / %d flushed\n",
		c.Evictions, c.BytesUsed, c.WritebackQueued, c.WritebackFlushed)
	return sb.String()
}

// ClassloadABResult compares JVM class-load probing (the §6.4
// VFSClassProvider path: every load stats-and-misses each classpath
// entry before the one that has the class) with and without the cache.
type ClassloadABResult struct {
	Backend     string
	Classes     int
	UncachedOps int64 // backend ops, second uncached round
	ColdOps     int64 // backend ops, first cached round
	WarmOps     int64 // backend ops, second cached round
	Cache       vfs.CacheStats
}

// RunClassloadFSCache loads the compiled workload classes through a
// VFSClassProvider whose classpath starts with an empty directory —
// the layout that makes negative stat caching matter — against the
// selected backend, bare and cached.
func RunClassloadFSCache(cfg Config, backendName string, writeBack bool, latency time.Duration) (*ClassloadABResult, error) {
	cfg = cfg.withDefaults()
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.NewHub()
	}
	classes, err := workloads.Classes()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)

	run := func(cached bool) (rounds []int64, cs vfs.CacheStats, err error) {
		win, bufs := newWindowFS(profile)
		if cfg.Telemetry != nil {
			win.EnableTelemetry(cfg.Telemetry)
		}
		inner, err := NewFSCacheBackend(backendName, win, bufs, latency)
		if err != nil {
			return nil, vfs.CacheStats{}, err
		}
		instrumented := vfs.Instrument(inner, hub)
		b := instrumented
		if cached {
			b = vfs.Stack(instrumented, vfs.WithCache(vfs.CacheOptions{WriteBack: writeBack, Hub: hub}))
		}
		seedFS := vfs.New(win.Loop, bufs, instrumented)
		fs := vfs.New(win.Loop, bufs, b)
		ops := hub.Registry.Counter("vfs."+inner.Name(), "ops")
		provider := &jvm.VFSClassProvider{FS: fs, Dirs: []string{"/cp1", "/cp2"}}

		if err := fleet.Drive(win.Loop, "classload", func(done func(error)) {
			var seed func(i int, then func())
			seed = func(i int, then func()) {
				if i == len(names) {
					then()
					return
				}
				p := "/cp2/" + names[i] + ".class"
				dir := p[:strings.LastIndexByte(p, '/')]
				seedFS.MkdirAll(dir, func(err error) {
					if err != nil {
						done(err)
						return
					}
					seedFS.WriteFile(p, classes[names[i]], func(err error) {
						if err != nil {
							done(err)
							return
						}
						seed(i+1, then)
					})
				})
			}
			var load func(i int, then func())
			load = func(i int, then func()) {
				if i == len(names) {
					then()
					return
				}
				provider.BytesAsync(names[i], func(_ []byte, err error) {
					if err != nil {
						done(err)
						return
					}
					load(i+1, then)
				})
			}
			round := func(then func()) {
				before := ops.Value()
				load(0, func() {
					rounds = append(rounds, ops.Value()-before)
					then()
				})
			}
			seedFS.MkdirAll("/cp1", func(err error) {
				if err != nil {
					done(err)
					return
				}
				seed(0, func() {
					round(func() { round(func() { done(nil) }) })
				})
			})
		}); err != nil {
			return nil, vfs.CacheStats{}, err
		}
		if s, ok := b.(vfs.CacheStatser); ok {
			cs = s.CacheStats()
		}
		return rounds, cs, nil
	}

	un, _, err := run(false)
	if err != nil {
		return nil, err
	}
	ca, cs, err := run(true)
	if err != nil {
		return nil, err
	}
	return &ClassloadABResult{
		Backend:     backendName,
		Classes:     len(names),
		UncachedOps: un[1],
		ColdOps:     ca[0],
		WarmOps:     ca[1],
		Cache:       cs,
	}, nil
}

// FormatClassloadAB renders the class-load comparison.
func FormatClassloadAB(r *ClassloadABResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class-load A/B: backend=%s classes=%d (classpath probes /cp1 then /cp2)\n", r.Backend, r.Classes)
	fmt.Fprintf(&sb, "  uncached round: %d backend ops\n", r.UncachedOps)
	fmt.Fprintf(&sb, "  cached cold:    %d backend ops\n", r.ColdOps)
	fmt.Fprintf(&sb, "  cached warm:    %d backend ops (%d negative-stat hits absorbed)\n", r.WarmOps, r.Cache.NegativeHits)
	return sb.String()
}

package minic

import "fmt"

// cParser is a recursive-descent parser for the C subset.
type cParser struct {
	toks []token
	pos  int
}

// ParseC parses a MiniC source file.
func ParseC(src string) (*cProgram, error) {
	toks, err := lexC(src)
	if err != nil {
		return nil, err
	}
	p := &cParser{toks: toks}
	return p.program()
}

func (p *cParser) cur() token { return p.toks[p.pos] }

func (p *cParser) isP(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *cParser) isKw(s string) bool {
	t := p.cur()
	return t.kind == tKw && t.text == s
}

func (p *cParser) acceptP(s string) bool {
	if p.isP(s) {
		p.pos++
		return true
	}
	return false
}

func (p *cParser) expectP(s string) error {
	if !p.acceptP(s) {
		return fmt.Errorf("minic: line %d: expected %q, found %q", p.cur().line, s, p.cur().text)
	}
	return nil
}

func (p *cParser) ident() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", fmt.Errorf("minic: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

// acceptType consumes a type keyword (int/char/void) with optional '*'
// decorations and returns the parsed MiniC type.
func (p *cParser) acceptType() (cType, bool) {
	base := tyInt
	switch {
	case p.isKw("int"), p.isKw("void"):
	case p.isKw("char"):
		base = tyChar
	default:
		return tyInt, false
	}
	p.pos++
	ptr := false
	for p.acceptP("*") {
		ptr = true
	}
	if ptr {
		if base == tyChar {
			return tyPtrChar, true
		}
		return tyPtrInt, true
	}
	return base, true
}

func (p *cParser) program() (*cProgram, error) {
	prog := &cProgram{}
	for p.cur().kind != tEOF {
		declTy, ok := p.acceptType()
		if !ok {
			return nil, fmt.Errorf("minic: line %d: expected declaration", p.cur().line)
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.isP("(") {
			fn, err := p.funcDecl(name)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// Global scalar or array.
		g := &cGlobal{Name: name, Words: 1, Type: declTy}
		if p.acceptP("[") {
			// An array declaration: the element type is the declared
			// base type and the name decays to a pointer.
			g.IsArray = true
			t := p.cur()
			if t.kind != tNum {
				return nil, fmt.Errorf("minic: line %d: global array size must be constant", t.line)
			}
			p.pos++
			g.Words = t.num
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
		} else if p.acceptP("=") {
			t := p.cur()
			neg := false
			if p.isP("-") {
				neg = true
				p.pos++
				t = p.cur()
			}
			if t.kind != tNum && t.kind != tChar {
				return nil, fmt.Errorf("minic: line %d: global initializer must be constant", t.line)
			}
			p.pos++
			g.Init = t.num
			if neg {
				g.Init = -g.Init
			}
		}
		if err := p.expectP(";"); err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *cParser) funcDecl(name string) (*cFunc, error) {
	fn := &cFunc{Name: name, line: p.cur().line}
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	if !p.acceptP(")") {
		for {
			pty, ok := p.acceptType()
			if !ok {
				pty = tyInt // K&R-ish bare parameter
			}
			pname, err := p.ident()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pname)
			fn.ParamTypes = append(fn.ParamTypes, pty)
			if !p.acceptP(",") {
				break
			}
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *cParser) block() ([]cStmt, error) {
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	var out []cStmt
	for !p.acceptP("}") {
		if p.cur().kind == tEOF {
			return nil, fmt.Errorf("minic: unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *cParser) stmtOrBlock() ([]cStmt, error) {
	if p.isP("{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []cStmt{s}, nil
}

func (p *cParser) stmt() (cStmt, error) {
	switch {
	case p.isKw("int") || p.isKw("char"):
		declTy, _ := p.acceptType()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d := &sDecl{Name: name, Words: 1, Type: declTy}
		if p.acceptP("[") {
			d.IsArray = true
			t := p.cur()
			if t.kind != tNum {
				return nil, fmt.Errorf("minic: line %d: local array size must be constant", t.line)
			}
			p.pos++
			d.Words = t.num
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
		} else if p.acceptP("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, p.expectP(";")
	case p.isKw("if"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		then, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := &sIf{Cond: cond, Then: then}
		if p.isKw("else") {
			p.pos++
			els, err := p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.isKw("while"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &sWhile{Cond: cond, Body: body}, nil
	case p.isKw("for"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		st := &sFor{}
		if !p.isP(";") {
			init, err := p.stmt() // consumes its own ';'
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			p.pos++
		}
		if !p.isP(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if err := p.expectP(";"); err != nil {
			return nil, err
		}
		if !p.isP(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Post = &sExpr{E: post}
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		body, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil
	case p.isKw("return"):
		p.pos++
		st := &sReturn{}
		if !p.isP(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.E = e
		}
		return st, p.expectP(";")
	case p.isKw("break"):
		p.pos++
		return &sBreak{}, p.expectP(";")
	case p.isKw("continue"):
		p.pos++
		return &sContinue{}, p.expectP(";")
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &sExpr{E: e}, p.expectP(";")
}

// --- expressions (precedence climbing) ---

var cBinLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

var cAssignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true,
}

func (p *cParser) expr() (cExpr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tPunct && cAssignOps[t.text] {
		switch lhs.(type) {
		case *eVar, *eIndex, *eDeref:
		default:
			return nil, fmt.Errorf("minic: line %d: assignment to non-lvalue", t.line)
		}
		p.pos++
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &eAssign{Target: lhs, Op: t.text, Value: rhs}, nil
	}
	return lhs, nil
}

func (p *cParser) binary(level int) (cExpr, error) {
	if level == len(cBinLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		matched := false
		for _, op := range cBinLevels[level] {
			if t.text == op {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &eBin{Op: t.text, L: lhs, R: rhs}
	}
}

func (p *cParser) unary() (cExpr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "~":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &eUn{Op: t.text, E: e}, nil
		case "*":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &eDeref{E: e}, nil
		case "&":
			p.pos++
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &eAddr{Name: name}, nil
		case "++", "--":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &eIncDec{Target: e, Op: t.text}, nil
		}
	}
	return p.postfix()
}

func (p *cParser) postfix() (cExpr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isP("["):
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
			e = &eIndex{Base: e, Index: idx}
		case p.isP("++") || p.isP("--"):
			p.pos++
			e = &eIncDec{Target: e, Op: t.text, Postfix: true}
		default:
			return e, nil
		}
	}
}

func (p *cParser) primary() (cExpr, error) {
	t := p.cur()
	switch t.kind {
	case tNum, tChar:
		p.pos++
		return &eNum{V: t.num}, nil
	case tStr:
		p.pos++
		return &eStr{S: t.str}, nil
	case tIdent:
		p.pos++
		if p.isP("(") {
			p.pos++
			call := &eCall{Name: t.text}
			for !p.isP(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptP(",") {
					break
				}
			}
			if err := p.expectP(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &eVar{Name: t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.pos++
			// Tolerate C casts: "(int)" / "(char*)" etc.
			if p.isKw("int") || p.isKw("char") || p.isKw("void") {
				p.acceptType()
				if err := p.expectP(")"); err != nil {
					return nil, err
				}
				return p.unary()
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectP(")")
		}
	}
	return nil, fmt.Errorf("minic: line %d: unexpected token %q in expression", t.line, t.text)
}

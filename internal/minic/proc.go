package minic

import (
	"io"

	"doppio/internal/core"
	"doppio/internal/umheap"
)

// This file is MiniC's binding to the process layer (internal/proc,
// the Browsix-style small Unix over the Doppio runtime). The VM knows
// nothing about pids or pipes; it exposes three extension points the
// kernel plugs into:
//
//   - OS: the syscall back end for fork/waitpid/kill/getpid. A VM
//     without an OS (plain minicc runs) answers those syscalls with
//     -1, the traditional "no such facility" errno stance.
//   - AsyncWriter: a console writer whose completion is delivered
//     asynchronously. When the VM's stdout implements it, the write
//     syscalls block the interpreter thread until the sink accepts
//     the bytes — which is how pipe backpressure reaches an
//     unmodified MiniC program.
//   - Clone/StartForked/Kill: the mechanics of fork-lite. Fork clones
//     the entire VM (heap image, call stack, operand stack) mid-
//     syscall; the child resumes at the instruction after fork with a
//     different return value on its operand stack.

// OS bridges the process syscalls to a kernel outside the package.
// All callbacks are delivered on the event loop.
type OS interface {
	// Getpid returns the calling process's pid.
	Getpid() int32
	// Fork adopts child — a clone of the calling VM whose operand
	// stack already carries the child-side return value 0 — as a new
	// process and starts it. It returns the child's pid, or -1 when
	// the kernel refuses (e.g. process table full).
	Fork(child *VM) int32
	// Waitpid reports a child's exit status: cb(code, true) once the
	// child terminates, cb(-1, false) when pid is not a live child of
	// the caller (ECHILD).
	Waitpid(pid int32, cb func(code int32, ok bool))
	// Kill sends sig to pid; returns 0 or -1 (ESRCH).
	Kill(pid, sig int32) int32
}

// AsyncWriter is implemented by console sinks that acknowledge writes
// asynchronously (the process layer's pipe ends). WriteAsync must
// call cb exactly once, on the event loop, when the bytes have been
// accepted (or refused with an error such as EPIPE).
type AsyncWriter interface {
	io.Writer
	WriteAsync(p []byte, cb func(n int, err error))
}

// SetOS installs the process-syscall back end (nil detaches).
func (vm *VM) SetOS(os OS) { vm.os = os }

// SetStdio rebinds the console streams — the kernel points a forked
// child at its own process's stdio adapters.
func (vm *VM) SetStdio(stdout io.Writer, stdin func(max int, cb func(line string, eof bool))) {
	if stdout == nil {
		stdout = io.Discard
	}
	vm.stdout = stdout
	vm.stdin = stdin
}

// Runtime exposes the VM's Doppio execution environment (thread
// dumps, /debug/proc blocked-on labels).
func (vm *VM) Runtime() *core.Runtime { return vm.rt }

// Heap exposes the VM's managed heap (budget enforcement, /debug/heap).
func (vm *VM) Heap() *umheap.Heap { return vm.heap }

// Clone duplicates the VM mid-execution: a byte-identical heap image
// (data segment, frame stack region, malloc'd blocks), a deep copy of
// the call-frame and operand stacks, and a fresh Doppio runtime on
// the same event loop. The program, file system, and console bindings
// are shared until the kernel rebinds them. The clone is inert until
// StartForked.
func (vm *VM) Clone() *VM {
	c := &VM{
		prog:      vm.prog,
		heap:      vm.heap.Clone(vm.win.NoteTypedArrayAlloc),
		win:       vm.win,
		rt:        core.NewRuntime(vm.win.Loop, vm.rtCfg),
		rtCfg:     vm.rtCfg,
		fs:        vm.fs,
		stdout:    vm.stdout,
		stdin:     vm.stdin,
		args:      vm.args,
		dataBase:  vm.dataBase,
		stackBase: vm.stackBase,
		stackTop:  vm.stackTop,
		sp:        vm.sp,
		frames:    append([]cFrame(nil), vm.frames...),
		ops:       append([]int32(nil), vm.ops...),
	}
	// The clone gets a fresh runtime and a cloned heap, so the parent's
	// profiler hooks must be re-installed to keep sampling the child.
	if vm.prof != nil {
		c.installProfiler(vm.prof)
	}
	return c
}

// StartForked begins executing an already-populated clone: no main
// frame is pushed — the cloned call stack resumes right after the
// fork syscall. done fires on the event loop when the program exits.
func (vm *VM) StartForked(done func(exit int32, err error)) {
	vm.thread = vm.rt.Spawn("minic-forked", core.RunnableFunc(vm.run))
	vm.rt.OnIdle(func() { done(vm.exitCode, vm.runErr) })
	vm.rt.Start()
}

// Kill force-terminates the VM: the interpreter thread is removed
// from the scheduler even while parked on a Completion, and the
// program never runs again. Exit-code bookkeeping (128+signal) is the
// caller's job; the VM's own done callback may never fire after Kill,
// so the kernel resolves waiters itself.
func (vm *VM) Kill() {
	vm.done = true
	vm.frames = nil
	if vm.thread != nil {
		vm.thread.Kill()
	}
}

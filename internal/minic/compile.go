package minic

import "fmt"

// OpCode is a stack-machine instruction.
type OpCode byte

// The MiniC IR instruction set.
const (
	IPush   OpCode = iota // push constant A
	IAddrG                // push data-segment address (base + A)
	IAddrL                // push address of local slot A (FP + 4A)
	ILoadW                // pop addr, push word
	IStoreW               // pop value, pop addr, store word; push value
	ILoadB                // pop addr, push byte (unsigned)
	IStoreB               // pop value, pop addr, store byte; push value
	ILoadL                // push local slot A
	IStoreL               // pop into local slot A; push value back
	IPop                  // discard top
	IDup                  // duplicate top
	IAdd
	ISub
	IMul
	IDiv
	IRem
	IAnd
	IOr
	IXor
	IShl
	IShr
	INeg
	IBNot // bitwise complement
	ILNot // logical not (0/1)
	IEq
	INe
	ILt
	ILe
	IGt
	IGe
	IJmp  // pc = A
	IJz   // pop; if 0 → pc = A
	IJnz  // pop; if != 0 → pc = A
	ICall // call function index A
	IRet  // pop return value, tear down frame
	ISys  // syscall A (see vm.go)
)

// Instr is one IR instruction.
type Instr struct {
	Op OpCode
	A  int32
}

// Func is one compiled function.
type Func struct {
	Name   string
	NArgs  int
	NSlots int // locals incl. args, in words (array storage included)
	Code   []Instr
}

// Program is a compiled MiniC program plus its data-segment image.
type Program struct {
	Funcs   []*Func
	FuncIdx map[string]int
	// Data is the initial data-segment image: globals then string
	// literals; IAddrG offsets index into it.
	Data []byte
}

// Syscall numbers (the "libc + Doppio services" surface; vm.go
// implements them over the NativeHost-style hooks).
const (
	SysPutStr   = 1
	SysPutInt   = 2
	SysPutChar  = 3
	SysMalloc   = 4
	SysFree     = 5
	SysReadFile = 6  // (pathAddr) → buffer addr or 0
	SysWrite    = 7  // (pathAddr, dataAddr, len) → 0
	SysExists   = 8  // (pathAddr) → 0/1
	SysGetLine  = 9  // (bufAddr, max) → length or -1 at EOF
	SysStrLen   = 10 // (s) → n
	SysStrCmp   = 11 // (a, b) → -1/0/1
	SysStrCpy   = 12 // (dst, src) → dst
	SysAtoi     = 13 // (s) → value
	SysSetPrio  = 14 // (p) → effective run-queue priority
	// Process syscalls, serviced by the minic.OS hook (internal/proc);
	// without a kernel attached they return -1 / 0-arg defaults.
	SysArgc    = 15 // () → argument count
	SysGetArg  = 16 // (i, bufAddr, max) → length or -1
	SysGetPid  = 17 // () → pid (or -1 outside a process)
	SysFork    = 18 // () → child pid in parent, 0 in child, -1 on error
	SysWaitPid = 19 // (pid) → child exit code, or -1 (ECHILD)
	SysKill    = 20 // (pid, sig) → 0 or -1 (ESRCH)
	SysExit    = 21 // (code) → does not return
)

// builtins maps callable names to (syscall, argc, result type).
var builtins = map[string]struct {
	sys  int32
	argc int
	ret  cType
}{
	"puts":        {SysPutStr, 1, tyInt},
	"putint":      {SysPutInt, 1, tyInt},
	"putchar":     {SysPutChar, 1, tyInt},
	"malloc":      {SysMalloc, 1, tyPtrInt},
	"free":        {SysFree, 1, tyInt},
	"readfile":    {SysReadFile, 1, tyPtrChar},
	"writefile":   {SysWrite, 3, tyInt},
	"exists":      {SysExists, 1, tyInt},
	"getline":     {SysGetLine, 2, tyInt},
	"strlen":      {SysStrLen, 1, tyInt},
	"strcmp":      {SysStrCmp, 2, tyInt},
	"strcpy":      {SysStrCpy, 2, tyPtrChar},
	"atoi":        {SysAtoi, 1, tyInt},
	"setpriority": {SysSetPrio, 1, tyInt},
	"argc":        {SysArgc, 0, tyInt},
	"getarg":      {SysGetArg, 3, tyInt},
	"getpid":      {SysGetPid, 0, tyInt},
	"fork":        {SysFork, 0, tyInt},
	"waitpid":     {SysWaitPid, 1, tyInt},
	"kill":        {SysKill, 2, tyInt},
	"exit":        {SysExit, 1, tyInt},
}

// compiler state for one program.
type compiler struct {
	prog    *cProgram
	out     *Program
	globals map[string]*globalInfo
	strOffs map[string]int32
	funcIdx map[string]int
}

type globalInfo struct {
	off     int32 // byte offset in data segment
	typ     cType
	isArray bool
}

// CompileC compiles MiniC source into an IR program.
func CompileC(src string) (*Program, error) {
	ast, err := ParseC(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		prog:    ast,
		out:     &Program{FuncIdx: map[string]int{}},
		globals: map[string]*globalInfo{},
		strOffs: map[string]int32{},
		funcIdx: map[string]int{},
	}
	// Lay out globals.
	for _, g := range ast.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, fmt.Errorf("minic: duplicate global %s", g.Name)
		}
		off := int32(len(c.out.Data))
		words := g.Words
		if g.Type == tyChar && g.IsArray {
			// char arrays are byte-sized, word aligned.
			words = (g.Words + 3) / 4
		}
		c.globals[g.Name] = &globalInfo{off: off, typ: g.Type, isArray: g.IsArray}
		cell := make([]byte, words*4)
		if !g.IsArray {
			putWord(cell, 0, g.Init)
		}
		c.out.Data = append(c.out.Data, cell...)
	}
	// Collect string literals.
	for _, fn := range ast.Funcs {
		c.collectStrings(fn.Body)
	}
	// Index functions.
	for i, fn := range ast.Funcs {
		if _, dup := c.funcIdx[fn.Name]; dup {
			return nil, fmt.Errorf("minic: duplicate function %s", fn.Name)
		}
		if _, isBuiltin := builtins[fn.Name]; isBuiltin {
			return nil, fmt.Errorf("minic: function %s shadows a builtin", fn.Name)
		}
		c.funcIdx[fn.Name] = i
	}
	c.out.FuncIdx = c.funcIdx
	for _, fn := range ast.Funcs {
		cf, err := c.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		c.out.Funcs = append(c.out.Funcs, cf)
	}
	if _, ok := c.funcIdx["main"]; !ok {
		return nil, fmt.Errorf("minic: no main function")
	}
	return c.out, nil
}

func putWord(b []byte, off int32, v int32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func (c *compiler) collectStrings(stmts []cStmt) {
	var walkE func(e cExpr)
	walkE = func(e cExpr) {
		switch ex := e.(type) {
		case *eStr:
			if _, ok := c.strOffs[ex.S]; !ok {
				c.strOffs[ex.S] = int32(len(c.out.Data))
				c.out.Data = append(c.out.Data, []byte(ex.S)...)
				c.out.Data = append(c.out.Data, 0)
				// Word-align the next item.
				for len(c.out.Data)%4 != 0 {
					c.out.Data = append(c.out.Data, 0)
				}
			}
		case *eAssign:
			walkE(ex.Target)
			walkE(ex.Value)
		case *eBin:
			walkE(ex.L)
			walkE(ex.R)
		case *eUn:
			walkE(ex.E)
		case *eIncDec:
			walkE(ex.Target)
		case *eCall:
			for _, a := range ex.Args {
				walkE(a)
			}
		case *eIndex:
			walkE(ex.Base)
			walkE(ex.Index)
		case *eDeref:
			walkE(ex.E)
		}
	}
	var walkS func(ss []cStmt)
	walkS = func(ss []cStmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case *sExpr:
				walkE(st.E)
			case *sDecl:
				if st.Init != nil {
					walkE(st.Init)
				}
			case *sIf:
				walkE(st.Cond)
				walkS(st.Then)
				walkS(st.Else)
			case *sWhile:
				walkE(st.Cond)
				walkS(st.Body)
			case *sFor:
				if st.Init != nil {
					walkS([]cStmt{st.Init})
				}
				if st.Cond != nil {
					walkE(st.Cond)
				}
				if st.Post != nil {
					walkS([]cStmt{st.Post})
				}
				walkS(st.Body)
			case *sReturn:
				if st.E != nil {
					walkE(st.E)
				}
			}
		}
	}
	walkS(stmts)
}

// fnCompiler compiles one function body.
type fnCompiler struct {
	c      *compiler
	fn     *cFunc
	out    *Func
	scopes []map[string]*localInfo
	nSlots int

	breaks    []int // instruction indices awaiting the loop-end target
	continues []int
	loopDepth []int // marker separating enclosing loops' patch lists

	// scratch is a hidden local used by memory-form postfix ++/--
	// (-1 until allocated).
	scratch int
}

type localInfo struct {
	slot    int
	typ     cType
	isArray bool
}

func (c *compiler) compileFunc(fn *cFunc) (*Func, error) {
	fc := &fnCompiler{
		c:       c,
		fn:      fn,
		out:     &Func{Name: fn.Name, NArgs: len(fn.Params)},
		scopes:  []map[string]*localInfo{{}},
		scratch: -1,
	}
	for i, p := range fn.Params {
		fc.scopes[0][p] = &localInfo{slot: i, typ: fn.ParamTypes[i]}
		fc.nSlots++
	}
	if err := fc.stmts(fn.Body); err != nil {
		return nil, err
	}
	// Implicit return 0.
	fc.emit(IPush, 0)
	fc.emit(IRet, 0)
	fc.out.NSlots = fc.nSlots
	return fc.out, nil
}

func (f *fnCompiler) emit(op OpCode, a int32) int {
	f.out.Code = append(f.out.Code, Instr{Op: op, A: a})
	return len(f.out.Code) - 1
}

func (f *fnCompiler) here() int32 { return int32(len(f.out.Code)) }

func (f *fnCompiler) patch(at int, target int32) { f.out.Code[at].A = target }

func (f *fnCompiler) stmts(ss []cStmt) error {
	for _, s := range ss {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// scopedStmts compiles ss in a fresh lexical scope (C block scoping;
// slots are not reused, keeping the compiler simple).
func (f *fnCompiler) scopedStmts(ss []cStmt) error {
	f.scopes = append(f.scopes, map[string]*localInfo{})
	err := f.stmts(ss)
	f.scopes = f.scopes[:len(f.scopes)-1]
	return err
}

// lookupLocal resolves a name through the scope stack.
func (f *fnCompiler) lookupLocal(name string) (*localInfo, bool) {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if li, ok := f.scopes[i][name]; ok {
			return li, true
		}
	}
	return nil, false
}

func (f *fnCompiler) stmt(s cStmt) error {
	switch st := s.(type) {
	case *sExpr:
		if _, err := f.expr(st.E); err != nil {
			return err
		}
		f.emit(IPop, 0)
		return nil
	case *sDecl:
		top := f.scopes[len(f.scopes)-1]
		if _, dup := top[st.Name]; dup {
			return fmt.Errorf("minic: duplicate local %s in %s", st.Name, f.fn.Name)
		}
		li := &localInfo{slot: f.nSlots, typ: st.Type, isArray: st.IsArray}
		top[st.Name] = li
		if st.IsArray {
			words := st.Words
			if st.Type == tyChar {
				words = (st.Words + 3) / 4
			}
			// Array storage lives in the frame; the named slot is the
			// storage itself (slot address = array base).
			f.nSlots += int(words)
			return nil
		}
		f.nSlots++
		if st.Init != nil {
			if _, err := f.expr(st.Init); err != nil {
				return err
			}
			f.emit(IStoreL, int32(li.slot))
			f.emit(IPop, 0)
		}
		return nil
	case *sIf:
		if _, err := f.expr(st.Cond); err != nil {
			return err
		}
		jz := f.emit(IJz, 0)
		if err := f.scopedStmts(st.Then); err != nil {
			return err
		}
		if len(st.Else) == 0 {
			f.patch(jz, f.here())
			return nil
		}
		jend := f.emit(IJmp, 0)
		f.patch(jz, f.here())
		if err := f.scopedStmts(st.Else); err != nil {
			return err
		}
		f.patch(jend, f.here())
		return nil
	case *sWhile:
		top := f.here()
		if _, err := f.expr(st.Cond); err != nil {
			return err
		}
		jz := f.emit(IJz, 0)
		f.pushLoop()
		if err := f.scopedStmts(st.Body); err != nil {
			return err
		}
		f.emit(IJmp, top)
		f.patch(jz, f.here())
		f.popLoop(f.here(), top)
		return nil
	case *sFor:
		// The init declaration scopes over the whole loop.
		f.scopes = append(f.scopes, map[string]*localInfo{})
		defer func() { f.scopes = f.scopes[:len(f.scopes)-1] }()
		if st.Init != nil {
			if err := f.stmt(st.Init); err != nil {
				return err
			}
		}
		top := f.here()
		jz := -1
		if st.Cond != nil {
			if _, err := f.expr(st.Cond); err != nil {
				return err
			}
			jz = f.emit(IJz, 0)
		}
		f.pushLoop()
		if err := f.scopedStmts(st.Body); err != nil {
			return err
		}
		contTarget := f.here()
		if st.Post != nil {
			if err := f.stmt(st.Post); err != nil {
				return err
			}
		}
		f.emit(IJmp, top)
		if jz >= 0 {
			f.patch(jz, f.here())
		}
		f.popLoop(f.here(), contTarget)
		return nil
	case *sReturn:
		if st.E != nil {
			if _, err := f.expr(st.E); err != nil {
				return err
			}
		} else {
			f.emit(IPush, 0)
		}
		f.emit(IRet, 0)
		return nil
	case *sBreak:
		if len(f.loopDepth) == 0 {
			return fmt.Errorf("minic: break outside loop in %s", f.fn.Name)
		}
		f.breaks = append(f.breaks, f.emit(IJmp, 0))
		return nil
	case *sContinue:
		if len(f.loopDepth) == 0 {
			return fmt.Errorf("minic: continue outside loop in %s", f.fn.Name)
		}
		f.continues = append(f.continues, f.emit(IJmp, 0))
		return nil
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

func (f *fnCompiler) pushLoop() {
	f.loopDepth = append(f.loopDepth, len(f.breaks)<<16|len(f.continues))
}

func (f *fnCompiler) popLoop(breakTarget, continueTarget int32) {
	mark := f.loopDepth[len(f.loopDepth)-1]
	f.loopDepth = f.loopDepth[:len(f.loopDepth)-1]
	nb, nc := mark>>16, mark&0xFFFF
	for _, at := range f.breaks[nb:] {
		f.patch(at, breakTarget)
	}
	f.breaks = f.breaks[:nb]
	for _, at := range f.continues[nc:] {
		f.patch(at, continueTarget)
	}
	f.continues = f.continues[:nc]
}

package minic

import (
	"fmt"
	"io"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/profile"
	"doppio/internal/umheap"
	"doppio/internal/vfs"
)

// VM executes a compiled MiniC program inside the Doppio execution
// environment. All program memory — the data segment, the call-frame
// stack, and malloc'd blocks — lives in the Doppio unmanaged heap
// (§5.2), mirroring Emscripten's memory model; the VM runs as a
// Doppio thread, so long computations segment automatically (§4.1)
// and file/console syscalls block via suspend-and-resume (§4.2).
type VM struct {
	prog  *Program
	heap  *umheap.Heap
	win   *browser.Window
	rt    *core.Runtime
	rtCfg core.Config // kept so forked clones inherit the budgets
	fs    *vfs.FS

	stdout io.Writer
	stdin  func(max int, cb func(line string, eof bool))
	args   []string
	os     OS
	thread *core.Thread

	dataBase  int
	stackBase int
	stackTop  int // byte size of the frame stack region
	sp        int // next free byte in the frame region

	frames []cFrame
	ops    []int32 // operand stack

	// Steps counts executed IR instructions.
	Steps int64

	// prof is the guest profiler (nil when off).
	prof *profile.Profiler

	exitCode int32
	runErr   error
	done     bool

	depValue int32
	depReady bool
}

type cFrame struct {
	fn    *Func
	pc    int
	fp    int // heap address of the frame's local slots
	opsAt int // operand stack height at entry
}

// VMOptions configure a MiniC VM.
type VMOptions struct {
	Stdout io.Writer
	// Stdin supplies a line of console input asynchronously (the
	// blocking-getline path, §3.2); nil means immediate EOF.
	Stdin func(max int, cb func(line string, eof bool))
	// FS is the Doppio file system for readfile/writefile; nil makes
	// a fresh in-memory one.
	FS        *vfs.FS
	HeapSize  int
	StackSize int
	// Args are the program's command-line arguments (argc/getarg).
	Args []string
	// OS is the process-syscall back end (fork/waitpid/kill/getpid);
	// nil leaves those syscalls returning -1.
	OS OS
	// Timeslice and BatchBudget pass through to the Doppio execution
	// environment (negative BatchBudget disables slice batching) — the
	// per-tenant CPU-slice knobs the fleet supervisor sets.
	Timeslice   time.Duration
	BatchBudget time.Duration
	// Priority is the run-queue level the VM's threads start at
	// (core.Config.DefaultPriority); zero keeps the default.
	Priority int
	// Profiler, when non-nil, samples guest CPU time, allocation
	// (the umheap malloc path), and blocked time into the given
	// profiler. Stacks are keyed by MiniC function name.
	Profiler *profile.Profiler
}

// NewVM creates a VM for prog inside the browser window.
func NewVM(win *browser.Window, prog *Program, opts VMOptions) (*VM, error) {
	if opts.Stdout == nil {
		opts.Stdout = io.Discard
	}
	if opts.HeapSize == 0 {
		opts.HeapSize = 4 << 20
	}
	if opts.StackSize == 0 {
		opts.StackSize = 256 << 10
	}
	bufs := &buffer.Factory{
		Typed:            win.Profile.HasTypedArrays,
		ValidatesStrings: win.Profile.ValidatesStrings,
		OnTypedAlloc:     win.NoteTypedArrayAlloc,
	}
	if opts.FS == nil {
		opts.FS = vfs.New(win.Loop, bufs, vfs.NewInMemory())
	}
	heap := umheap.New(opts.HeapSize, win.Profile.HasTypedArrays, win.NoteTypedArrayAlloc)
	rtCfg := core.Config{
		Timeslice:       opts.Timeslice,
		BatchBudget:     opts.BatchBudget,
		DefaultPriority: opts.Priority,
		Telemetry:       win.Telemetry,
	}
	vm := &VM{
		prog:   prog,
		heap:   heap,
		win:    win,
		rt:     core.NewRuntime(win.Loop, rtCfg),
		rtCfg:  rtCfg,
		fs:     opts.FS,
		stdout: opts.Stdout,
		stdin:  opts.Stdin,
		args:   opts.Args,
		os:     opts.OS,
	}
	dataBase, err := heap.Malloc(len(prog.Data) + 4)
	if err != nil {
		return nil, err
	}
	heap.WriteBytes(dataBase, prog.Data)
	vm.dataBase = dataBase
	stackBase, err := heap.Malloc(opts.StackSize)
	if err != nil {
		return nil, err
	}
	vm.stackBase = stackBase
	vm.stackTop = opts.StackSize
	if opts.Profiler != nil {
		vm.installProfiler(opts.Profiler)
	}
	return vm, nil
}

// profStack walks the VM's frames root-first, keyed by function name
// (MiniC profiles are function-granular).
func (vm *VM) profStack() []string {
	n := len(vm.frames)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range vm.frames {
		out[i] = vm.frames[i].fn.Name
	}
	return out
}

// installProfiler attaches p: CPU samples ride the runtime's suspend-
// clock probe and slice boundaries, contention folds the labelled
// Completion waits, and the heap observer covers every malloc (the
// SysMalloc syscall and the VM's own arena allocations alike).
func (vm *VM) installProfiler(p *profile.Profiler) {
	vm.prof = p
	vm.rt.SetSampleHook(func(_ *core.Thread, dt time.Duration) {
		if st := vm.profStack(); st != nil {
			p.SampleCPU(st, dt)
		}
	}, p.CPUInterval())
	vm.rt.SetBlockHook(func(_ *core.Thread, reason string, dt time.Duration) {
		p.SampleBlock(append(vm.profStack(), reason), dt)
	})
	vm.heap.SetAllocHook(func(n int) {
		if !p.AllocReady() {
			return
		}
		st := vm.profStack()
		if st == nil {
			st = []string{"(startup)"}
		}
		p.SampleAlloc(append(st, "(umheap)"), int64(n))
	})
}

// Profiler returns the VM's guest profiler (nil when off).
func (vm *VM) Profiler() *profile.Profiler { return vm.prof }

// FS returns the file system the program sees.
func (vm *VM) FS() *vfs.FS { return vm.fs }

// ExitCode returns main's return value.
func (vm *VM) ExitCode() int32 { return vm.exitCode }

// Start begins execution of main; done fires on the event loop when
// the program exits. The caller drives the window's loop.
func (vm *VM) Start(done func(exit int32, err error)) {
	mainIdx := vm.prog.FuncIdx["main"]
	if err := vm.pushFrame(vm.prog.Funcs[mainIdx], nil); err != nil {
		done(0, err)
		return
	}
	vm.thread = vm.rt.Spawn("minic-main", core.RunnableFunc(vm.run))
	vm.rt.OnIdle(func() {
		done(vm.exitCode, vm.runErr)
	})
	vm.rt.Start()
}

// Run executes the program to completion, driving the event loop.
func (vm *VM) Run() (int32, error) {
	var exit int32
	var err error
	finished := false
	vm.Start(func(e int32, rerr error) {
		exit, err, finished = e, rerr, true
	})
	if lerr := vm.win.Loop.Run(); lerr != nil {
		return 0, lerr
	}
	if !finished {
		return 0, fmt.Errorf("minic: event loop drained before main returned")
	}
	return exit, err
}

func (vm *VM) pushFrame(fn *Func, args []int32) error {
	need := fn.NSlots * 4
	if vm.sp+need > vm.stackTop {
		return fmt.Errorf("minic: stack overflow calling %s", fn.Name)
	}
	fp := vm.stackBase + vm.sp
	vm.sp += need
	for i, a := range args {
		vm.heap.StoreI32(fp+4*i, a)
	}
	vm.frames = append(vm.frames, cFrame{fn: fn, fp: fp, opsAt: len(vm.ops)})
	return nil
}

func (vm *VM) fail(err error) {
	vm.runErr = err
	vm.done = true
	vm.frames = nil
}

func (vm *VM) push(v int32) { vm.ops = append(vm.ops, v) }

func (vm *VM) pop() int32 {
	v := vm.ops[len(vm.ops)-1]
	vm.ops = vm.ops[:len(vm.ops)-1]
	return v
}

// run is the Doppio Runnable: it interprets IR until done, yield, or
// block, checking for suspension at call boundaries and every
// checkEvery instructions.
func (vm *VM) run(ct *core.Thread) core.RunResult {
	if vm.depReady {
		vm.depReady = false
		vm.push(vm.depValue)
	}
	for {
		if vm.done || len(vm.frames) == 0 {
			return core.Done
		}
		f := &vm.frames[len(vm.frames)-1]
		if f.pc >= len(f.fn.Code) {
			vm.fail(fmt.Errorf("minic: fell off the end of %s", f.fn.Name))
			return core.Done
		}
		ins := f.fn.Code[f.pc]
		f.pc++
		vm.Steps++

		switch ins.Op {
		case IPush:
			vm.push(ins.A)
		case IAddrG:
			vm.push(int32(vm.dataBase) + ins.A)
		case IAddrL:
			vm.push(int32(f.fp) + 4*ins.A)
		case ILoadW:
			addr := vm.pop()
			vm.push(vm.heap.LoadI32(int(addr)))
		case IStoreW:
			v := vm.pop()
			addr := vm.pop()
			vm.heap.StoreI32(int(addr), v)
			vm.push(v)
		case ILoadB:
			addr := vm.pop()
			vm.push(int32(vm.heap.LoadU8(int(addr))))
		case IStoreB:
			v := vm.pop()
			addr := vm.pop()
			vm.heap.StoreU8(int(addr), uint8(v))
			vm.push(v)
		case ILoadL:
			vm.push(vm.heap.LoadI32(f.fp + 4*int(ins.A)))
		case IStoreL:
			v := vm.pop()
			vm.heap.StoreI32(f.fp+4*int(ins.A), v)
			vm.push(v)
		case IPop:
			vm.pop()
		case IDup:
			vm.push(vm.ops[len(vm.ops)-1])
		case IAdd:
			b := vm.pop()
			a := vm.pop()
			vm.push(a + b)
		case ISub:
			b := vm.pop()
			a := vm.pop()
			vm.push(a - b)
		case IMul:
			b := vm.pop()
			a := vm.pop()
			vm.push(a * b)
		case IDiv:
			b := vm.pop()
			a := vm.pop()
			if b == 0 {
				vm.fail(fmt.Errorf("minic: division by zero in %s", f.fn.Name))
				return core.Done
			}
			vm.push(a / b)
		case IRem:
			b := vm.pop()
			a := vm.pop()
			if b == 0 {
				vm.fail(fmt.Errorf("minic: modulo by zero in %s", f.fn.Name))
				return core.Done
			}
			vm.push(a % b)
		case IAnd:
			b := vm.pop()
			a := vm.pop()
			vm.push(a & b)
		case IOr:
			b := vm.pop()
			a := vm.pop()
			vm.push(a | b)
		case IXor:
			b := vm.pop()
			a := vm.pop()
			vm.push(a ^ b)
		case IShl:
			b := vm.pop()
			a := vm.pop()
			vm.push(a << (uint(b) & 31))
		case IShr:
			b := vm.pop()
			a := vm.pop()
			vm.push(a >> (uint(b) & 31))
		case INeg:
			vm.push(-vm.pop())
		case IBNot:
			vm.push(^vm.pop())
		case ILNot:
			if vm.pop() == 0 {
				vm.push(1)
			} else {
				vm.push(0)
			}
		case IEq, INe, ILt, ILe, IGt, IGe:
			b := vm.pop()
			a := vm.pop()
			var r bool
			switch ins.Op {
			case IEq:
				r = a == b
			case INe:
				r = a != b
			case ILt:
				r = a < b
			case ILe:
				r = a <= b
			case IGt:
				r = a > b
			case IGe:
				r = a >= b
			}
			if r {
				vm.push(1)
			} else {
				vm.push(0)
			}
		case IJmp:
			backward := int(ins.A) < f.pc
			f.pc = int(ins.A)
			// Loop back edges also check for suspension — the §6.1
			// refinement ("it would be possible to instrument loop
			// back edges to perform the same checks"), which
			// Emscripten-style code needs since hot loops may make no
			// calls at all.
			if backward && ct.CheckSuspend() {
				return core.Yield
			}
		case IJz:
			if vm.pop() == 0 {
				backward := int(ins.A) < f.pc
				f.pc = int(ins.A)
				if backward && ct.CheckSuspend() {
					return core.Yield
				}
			}
		case IJnz:
			if vm.pop() != 0 {
				backward := int(ins.A) < f.pc
				f.pc = int(ins.A)
				if backward && ct.CheckSuspend() {
					return core.Yield
				}
			}
		case ICall:
			target := vm.prog.Funcs[ins.A]
			args := make([]int32, target.NArgs)
			for i := target.NArgs - 1; i >= 0; i-- {
				args[i] = vm.pop()
			}
			if err := vm.pushFrame(target, args); err != nil {
				vm.fail(err)
				return core.Done
			}
			// §4.1: check for suspension at call boundaries.
			if ct.CheckSuspend() {
				return core.Yield
			}
		case IRet:
			ret := vm.pop()
			fr := vm.frames[len(vm.frames)-1]
			vm.sp = fr.fp - vm.stackBase
			vm.ops = vm.ops[:fr.opsAt]
			vm.frames = vm.frames[:len(vm.frames)-1]
			if len(vm.frames) == 0 {
				vm.exitCode = ret
				vm.done = true
				return core.Done
			}
			vm.push(ret)
			if ct.CheckSuspend() {
				return core.Yield
			}
		case ISys:
			if blocked := vm.syscall(ct, ins.A); blocked {
				return core.Block
			}
		default:
			vm.fail(fmt.Errorf("minic: illegal opcode %d", ins.Op))
			return core.Done
		}
	}
}

// cString reads a NUL-terminated string at addr.
func (vm *VM) cString(addr int32) string {
	return vm.heap.CString(int(addr))
}

// syscall executes syscall n; it returns true when the thread blocked
// on an asynchronous Doppio service.
func (vm *VM) syscall(ct *core.Thread, n int32) bool {
	switch n {
	case SysPutStr:
		return vm.writeOut(ct, vm.cString(vm.pop()))
	case SysPutInt:
		return vm.writeOut(ct, fmt.Sprint(vm.pop()))
	case SysPutChar:
		return vm.writeOut(ct, string(rune(vm.pop()&0xFF)))
	case SysMalloc:
		nBytes := vm.pop()
		addr, err := vm.heap.Malloc(int(nBytes))
		if err != nil {
			vm.push(0)
			return false
		}
		vm.push(int32(addr))
	case SysFree:
		vm.heap.Free(int(vm.pop()))
		vm.push(0)
	case SysStrLen:
		vm.push(int32(len(vm.cString(vm.pop()))))
	case SysStrCmp:
		b := vm.cString(vm.pop())
		a := vm.cString(vm.pop())
		switch {
		case a < b:
			vm.push(-1)
		case a > b:
			vm.push(1)
		default:
			vm.push(0)
		}
	case SysStrCpy:
		src := vm.cString(vm.pop())
		dst := vm.pop()
		vm.heap.WriteCString(int(dst), src)
		vm.push(dst)
	case SysAtoi:
		s := vm.cString(vm.pop())
		var v int32
		neg := false
		i := 0
		if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
			neg = s[0] == '-'
			i = 1
		}
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			v = v*10 + int32(s[i]-'0')
		}
		if neg {
			v = -v
		}
		vm.push(v)

	case SysSetPrio:
		// setpriority(p): move the calling thread to run-queue level p
		// (clamped); returns the effective priority.
		p := vm.pop()
		ct.SetPriority(int(p))
		vm.push(int32(ct.Priority()))

	case SysExists:
		path := vm.cString(vm.pop())
		return vm.blockOn(ct, "minic.exists("+path+")", func(done func(int32)) {
			vm.fs.Exists(path, func(ok bool) {
				if ok {
					done(1)
				} else {
					done(0)
				}
			})
		})
	case SysReadFile:
		// The §7.2 payoff: synchronous dynamic file loading — the
		// program blocks while the Doppio FS fetches the file.
		path := vm.cString(vm.pop())
		return vm.blockOn(ct, "minic.readfile("+path+")", func(done func(int32)) {
			vm.fs.ReadFile(path, func(b *buffer.Buffer, err error) {
				if err != nil {
					done(0)
					return
				}
				data := b.Bytes()
				addr, merr := vm.heap.Malloc(len(data) + 1)
				if merr != nil {
					done(0)
					return
				}
				vm.heap.WriteBytes(addr, data)
				vm.heap.StoreU8(addr+len(data), 0)
				done(int32(addr))
			})
		})
	case SysWrite:
		length := vm.pop()
		dataAddr := vm.pop()
		path := vm.cString(vm.pop())
		data := vm.heap.ReadBytes(int(dataAddr), int(length))
		return vm.blockOn(ct, "minic.writefile("+path+")", func(done func(int32)) {
			vm.fs.WriteFile(path, data, func(err error) {
				if err != nil {
					done(-1)
					return
				}
				done(0)
			})
		})
	case SysGetLine:
		max := vm.pop()
		buf := vm.pop()
		if vm.stdin == nil {
			vm.push(-1)
			return false
		}
		return vm.blockOn(ct, "minic.getline", func(done func(int32)) {
			vm.stdin(int(max), func(line string, eof bool) {
				if eof {
					done(-1)
					return
				}
				if len(line) > int(max)-1 {
					line = line[:int(max)-1]
				}
				vm.heap.WriteCString(int(buf), line)
				done(int32(len(line)))
			})
		})

	case SysArgc:
		vm.push(int32(len(vm.args)))
	case SysGetArg:
		max := vm.pop()
		buf := vm.pop()
		i := vm.pop()
		if i < 0 || int(i) >= len(vm.args) || max < 1 {
			vm.push(-1)
			return false
		}
		arg := vm.args[i]
		if len(arg) > int(max)-1 {
			arg = arg[:int(max)-1]
		}
		vm.heap.WriteCString(int(buf), arg)
		vm.push(int32(len(arg)))
	case SysGetPid:
		if vm.os == nil {
			vm.push(-1)
			return false
		}
		vm.push(vm.os.Getpid())
	case SysFork:
		if vm.os == nil {
			vm.push(-1)
			return false
		}
		// pc is already past the ISys, so the clone resumes right
		// after fork. The two sides diverge only in the value pushed
		// onto each operand stack: the clone gets the child's 0 now,
		// the original gets the pid the kernel assigns.
		child := vm.Clone()
		child.push(0)
		vm.push(vm.os.Fork(child))
	case SysWaitPid:
		if vm.os == nil {
			vm.push(-1)
			return false
		}
		pid := vm.pop()
		return vm.blockOn(ct, fmt.Sprintf("minic.waitpid(%d)", pid), func(done func(int32)) {
			vm.os.Waitpid(pid, func(code int32, ok bool) {
				if !ok {
					done(-1)
					return
				}
				done(code)
			})
		})
	case SysKill:
		sig := vm.pop()
		pid := vm.pop()
		if vm.os == nil {
			vm.push(-1)
			return false
		}
		vm.push(vm.os.Kill(pid, sig))
	case SysExit:
		vm.exitCode = vm.pop()
		vm.done = true
		vm.frames = nil

	default:
		vm.fail(fmt.Errorf("minic: unknown syscall %d", n))
	}
	return false
}

// writeOut delivers console output. Against a plain io.Writer it is
// synchronous as before; against an AsyncWriter (a pipe end) the
// thread blocks until the sink accepts the bytes — pipe backpressure
// reaching the guest — and a refused write (EPIPE after the reader
// closed) surfaces as -1. It returns true when the thread blocked.
func (vm *VM) writeOut(ct *core.Thread, s string) bool {
	aw, ok := vm.stdout.(AsyncWriter)
	if !ok {
		fmt.Fprint(vm.stdout, s)
		vm.push(0)
		return false
	}
	return vm.blockOn(ct, "minic.write(stdout)", func(done func(int32)) {
		aw.WriteAsync([]byte(s), func(n int, err error) {
			if err != nil {
				done(-1)
				return
			}
			done(0)
		})
	})
}

// blockOn bridges an async Doppio service into a blocking syscall
// (§4.2) through a core.Completion labelled with the operation (the
// label deadlock reports show). If the completion fires synchronously
// the thread never blocks; otherwise the result is deposited for the
// resume.
func (vm *VM) blockOn(ct *core.Thread, label string, launch func(done func(int32))) bool {
	c := core.NewCompletion(vm.win.Loop, label)
	launch(func(v int32) { c.Resolve(v, nil) })
	if !c.Await(ct) {
		vm.push(c.Value().(int32))
		return false
	}
	c.Then(func(v interface{}, _ error) {
		vm.depValue = v.(int32)
		vm.depReady = true
	})
	return true
}

package minic_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/minic"
	"doppio/internal/vfs"
)

func runC(t *testing.T, src string, opts minic.VMOptions) (string, int32) {
	t.Helper()
	prog, err := minic.CompileC(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	win := browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	opts.Stdout = &stdout
	vm, err := minic.NewVM(win, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	exit, err := vm.Run()
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, stdout.String())
	}
	return stdout.String(), exit
}

func TestHelloC(t *testing.T) {
	out, exit := runC(t, `
int main() {
    puts("hello from minic\n");
    return 7;
}`, minic.VMOptions{})
	if out != "hello from minic\n" || exit != 7 {
		t.Errorf("out=%q exit=%d", out, exit)
	}
}

func TestArithControlFlow(t *testing.T) {
	out, _ := runC(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        sum += i * i;
    }
    putint(sum); putchar('\n');
    putint(fib(15)); putchar('\n');
    int j = 0;
    while (1) {
        j++;
        if (j == 3) continue;
        if (j >= 6) break;
        putint(j);
    }
    putchar('\n');
    putint(-17 / 5); putint(-17 % 5); putchar('\n');
    putint(1 << 10); putchar('\n');
    putint(!0); putint(!5); putint(~0); putchar('\n');
    return 0;
}`, minic.VMOptions{})
	want := "285\n610\n1245\n-3-2\n1024\n10-1\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestPointersAndArrays(t *testing.T) {
	out, _ := runC(t, `
int g;
int table[10];
char name[16];

int main() {
    int xs[5];
    for (int i = 0; i < 5; i++) xs[i] = i * 3;
    putint(xs[4]); putchar('\n');

    int *p = &g;
    *p = 42;
    putint(g); putchar('\n');

    table[7] = 99;
    putint(table[7]); putchar('\n');

    strcpy(name, "doppio");
    putint(strlen(name)); putchar('\n');
    puts(name); putchar('\n');
    name[0] = 'D';
    puts(name); putchar('\n');

    char *buf = (char*) malloc(32);
    strcpy(buf, "heap!");
    puts(buf); putchar('\n');
    free(buf);

    int *arr = (int*) malloc(40);
    for (int i = 0; i < 10; i++) arr[i] = i;
    int sum = 0;
    for (int i = 0; i < 10; i++) sum += arr[i];
    putint(sum); putchar('\n');
    free(arr);
    return 0;
}`, minic.VMOptions{})
	want := "12\n42\n99\n6\ndoppio\nDoppio\nheap!\n45\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestIncDecAndCompound(t *testing.T) {
	out, _ := runC(t, `
int main() {
    int i = 5;
    putint(i++); putint(i); putint(--i); putchar('\n');
    int a[3];
    a[1] = 10;
    putint(a[1]++); putint(a[1]); putchar('\n');
    a[1] *= 3;
    putint(a[1]); putchar('\n');
    int x = 7;
    x <<= 2;
    putint(x); putchar('\n');
    return 0;
}`, minic.VMOptions{})
	want := "565\n1011\n33\n28\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestFileIOSyncOverAsync(t *testing.T) {
	out, _ := runC(t, `
int main() {
    writefile("/data.txt", "persist me", 10);
    if (exists("/data.txt")) puts("exists\n");
    char *content = readfile("/data.txt");
    if (content == 0) { puts("missing\n"); return 1; }
    puts(content); putchar('\n');
    putint(strlen(content)); putchar('\n');
    if (readfile("/nope") == 0) puts("no such file\n");
    return 0;
}`, minic.VMOptions{})
	want := "exists\npersist me\n10\nno such file\n"
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestGetlineBlockingInput(t *testing.T) {
	// The paper's §3.2 motivating example: synchronous console input.
	lines := []string{"Ada Lovelace"}
	idx := 0
	var win *browser.Window
	stdin := func(max int, cb func(string, bool)) {
		// Deliver like a keyboard event: asynchronously.
		win.Loop.AddPending()
		win.Loop.InvokeExternal("keyboard", func() {
			if idx < len(lines) {
				cb(lines[idx], false)
				idx++
			} else {
				cb("", true)
			}
			win.Loop.DonePending()
		})
	}
	prog, err := minic.CompileC(`
int main() {
    char name[64];
    puts("Please enter your name: ");
    int n = getline(name, 64);
    if (n < 0) { puts("eof\n"); return 1; }
    puts("Your name is ");
    puts(name);
    putchar('\n');
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	win = browser.NewWindow(browser.Chrome28)
	var stdout bytes.Buffer
	vm, err := minic.NewVM(win, prog, minic.VMOptions{Stdout: &stdout, Stdin: stdin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	want := "Please enter your name: Your name is Ada Lovelace\n"
	if stdout.String() != want {
		t.Errorf("out = %q, want %q", stdout.String(), want)
	}
}

func TestSegmentationSurvivesWatchdogC(t *testing.T) {
	p := browser.Chrome28
	p.WatchdogLimit = 80 * time.Millisecond
	prog, err := minic.CompileC(`
int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + i * 7 % 13;
    }
    return acc;
}

int work(int rounds) {
    int acc = 0;
    for (int i = 0; i < rounds; i++) {
        acc = acc ^ spin(20000);
    }
    return acc;
}

int main() {
    putint(work(300));
    putchar('\n');
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(p)
	var stdout bytes.Buffer
	vm, err := minic.NewVM(win, prog, minic.VMOptions{Stdout: &stdout})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err != nil {
		t.Fatalf("watchdog killed segmented MiniC program: %v", err)
	}
	if !strings.HasSuffix(stdout.String(), "\n") || len(stdout.String()) < 2 {
		t.Errorf("out = %q", stdout.String())
	}
}

func TestCompileErrors(t *testing.T) {
	bad := map[string]string{
		"no main":     `int helper() { return 1; }`,
		"undef var":   `int main() { return x; }`,
		"undef fn":    `int main() { return nope(); }`,
		"bad lvalue":  `int main() { 3 = 4; return 0; }`,
		"dup global":  "int g; int g;\nint main() { return 0; }",
		"break loose": `int main() { break; return 0; }`,
		"argc":        `int f(int a) { return a; } int main() { return f(1, 2); }`,
	}
	for name, src := range bad {
		if _, err := minic.CompileC(src); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

func TestStackOverflowDetected(t *testing.T) {
	prog, err := minic.CompileC(`
int down(int n) { return down(n + 1); }
int main() { return down(0); }`)
	if err != nil {
		t.Fatal(err)
	}
	win := browser.NewWindow(browser.Chrome28)
	vm, err := minic.NewVM(win, prog, minic.VMOptions{StackSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestPersistentSaveAcrossRuns(t *testing.T) {
	// The §7.2 save-game property: a second program run sees files the
	// first wrote, because they live in the mounted persistent store.
	win := browser.NewWindow(browser.Chrome28)
	bufs := &buffer.Factory{Typed: true}
	mount := vfs.NewMountFS(vfs.NewInMemory())
	mount.Mount("/save", vfs.NewLocalStorageFS(win.LocalStorage, bufs))
	fs := vfs.New(win.Loop, bufs, mount)

	writer, err := minic.CompileC(`
int main() {
    writefile("/save/progress", "level-3", 7);
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	vm1, err := minic.NewVM(win, writer, minic.VMOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm1.Run(); err != nil {
		t.Fatal(err)
	}

	// A fresh window with the same localStorage: the save persists.
	win2 := browser.NewWindow(browser.Chrome28)
	win2.LocalStorage = win.LocalStorage
	bufs2 := &buffer.Factory{Typed: true}
	mount2 := vfs.NewMountFS(vfs.NewInMemory())
	mount2.Mount("/save", vfs.NewLocalStorageFS(win2.LocalStorage, bufs2))
	fs2 := vfs.New(win2.Loop, bufs2, mount2)
	reader, err := minic.CompileC(`
int main() {
    char *p = readfile("/save/progress");
    if (p == 0) { puts("lost\n"); return 1; }
    puts(p);
    putchar('\n');
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	vm2, err := minic.NewVM(win2, reader, minic.VMOptions{Stdout: &stdout, FS: fs2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm2.Run(); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != "level-3\n" {
		t.Errorf("out = %q", stdout.String())
	}
}

func TestSetPriorityBuiltin(t *testing.T) {
	// setpriority(p) moves the calling thread to run-queue level p and
	// returns the effective (clamped) priority — syscall 14.
	out, _ := runC(t, `
int main() {
    putint(setpriority(8)); putchar('\n');
    putint(setpriority(99)); putchar('\n');
    putint(setpriority(-3)); putchar('\n');
    return 0;
}`, minic.VMOptions{})
	if out != "8\n10\n1\n" {
		t.Errorf("out = %q, want clamped priorities 8, 10, 1", out)
	}
}

package minic

import "fmt"

// expr compiles e, leaving its value on the stack, and returns its
// static type.
func (f *fnCompiler) expr(e cExpr) (cType, error) {
	switch ex := e.(type) {
	case *eNum:
		f.emit(IPush, ex.V)
		return tyInt, nil
	case *eStr:
		off, ok := f.c.strOffs[ex.S]
		if !ok {
			return 0, fmt.Errorf("minic: internal: string literal not collected")
		}
		f.emit(IAddrG, off)
		return tyPtrChar, nil
	case *eVar:
		if li, ok := f.lookupLocal(ex.Name); ok {
			if li.isArray {
				f.emit(IAddrL, int32(li.slot))
				return ptrTo(li.typ), nil
			}
			f.emit(ILoadL, int32(li.slot))
			return li.typ, nil
		}
		if g, ok := f.c.globals[ex.Name]; ok {
			if g.isArray {
				f.emit(IAddrG, g.off)
				return ptrTo(g.typ), nil
			}
			f.emit(IAddrG, g.off)
			f.emit(ILoadW, 0)
			return g.typ, nil
		}
		return 0, fmt.Errorf("minic: undefined variable %s in %s", ex.Name, f.fn.Name)
	case *eAddr:
		if li, ok := f.lookupLocal(ex.Name); ok {
			f.emit(IAddrL, int32(li.slot))
			return ptrTo(li.typ), nil
		}
		if g, ok := f.c.globals[ex.Name]; ok {
			f.emit(IAddrG, g.off)
			return ptrTo(g.typ), nil
		}
		return 0, fmt.Errorf("minic: undefined variable %s in %s", ex.Name, f.fn.Name)
	case *eAssign:
		return f.assign(ex)
	case *eBin:
		return f.binary(ex)
	case *eUn:
		t, err := f.expr(ex.E)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "-":
			f.emit(INeg, 0)
		case "~":
			f.emit(IBNot, 0)
		case "!":
			f.emit(ILNot, 0)
		}
		return t, nil
	case *eIncDec:
		return f.incDec(ex)
	case *eCall:
		return f.call(ex)
	case *eIndex:
		byteAccess, elem, err := f.elementAddr(ex)
		if err != nil {
			return 0, err
		}
		if byteAccess {
			f.emit(ILoadB, 0)
		} else {
			f.emit(ILoadW, 0)
		}
		return elem, nil
	case *eDeref:
		t, err := f.expr(ex.E)
		if err != nil {
			return 0, err
		}
		if t == tyPtrChar {
			f.emit(ILoadB, 0)
			return tyChar, nil
		}
		f.emit(ILoadW, 0)
		return tyInt, nil
	}
	return 0, fmt.Errorf("minic: unhandled expression %T", e)
}

// elementAddr compiles the address of base[index], returning whether
// the element is byte-sized and its type.
func (f *fnCompiler) elementAddr(ex *eIndex) (bool, cType, error) {
	bt, err := f.expr(ex.Base)
	if err != nil {
		return false, 0, err
	}
	if _, err := f.expr(ex.Index); err != nil {
		return false, 0, err
	}
	elem := bt.elem()
	if elem == tyChar {
		f.emit(IAdd, 0)
		return true, tyChar, nil
	}
	f.emit(IPush, 2)
	f.emit(IShl, 0)
	f.emit(IAdd, 0)
	return false, tyInt, nil
}

// lvAddr compiles the address of an lvalue (non-local-scalar case),
// returning byteAccess and element type. Local scalars are handled by
// the callers directly via ILoadL/IStoreL.
func (f *fnCompiler) lvAddr(target cExpr) (byteAccess bool, t cType, err error) {
	switch tv := target.(type) {
	case *eVar:
		if g, ok := f.c.globals[tv.Name]; ok && !g.isArray {
			f.emit(IAddrG, g.off)
			return false, g.typ, nil
		}
		return false, 0, fmt.Errorf("minic: cannot assign to %s", tv.Name)
	case *eIndex:
		b, elem, err := f.elementAddr(tv)
		return b, elem, err
	case *eDeref:
		pt, err := f.expr(tv.E)
		if err != nil {
			return false, 0, err
		}
		if pt == tyPtrChar {
			return true, tyChar, nil
		}
		return false, tyInt, nil
	}
	return false, 0, fmt.Errorf("minic: not an lvalue: %T", target)
}

func (f *fnCompiler) scratchSlot() int32 {
	if f.scratch < 0 {
		f.scratch = f.nSlots
		f.nSlots++
	}
	return int32(f.scratch)
}

func (f *fnCompiler) assign(ex *eAssign) (cType, error) {
	// Local scalar fast path.
	if v, ok := ex.Target.(*eVar); ok {
		if li, lok := f.lookupLocal(v.Name); lok && !li.isArray {
			if ex.Op == "=" {
				if _, err := f.expr(ex.Value); err != nil {
					return 0, err
				}
				f.emit(IStoreL, int32(li.slot))
				return li.typ, nil
			}
			f.emit(ILoadL, int32(li.slot))
			if err := f.applyCompound(ex, li.typ); err != nil {
				return 0, err
			}
			f.emit(IStoreL, int32(li.slot))
			return li.typ, nil
		}
	}
	byteAccess, t, err := f.lvAddr(ex.Target)
	if err != nil {
		return 0, err
	}
	if ex.Op == "=" {
		if _, err := f.expr(ex.Value); err != nil {
			return 0, err
		}
		if byteAccess {
			f.emit(IStoreB, 0)
		} else {
			f.emit(IStoreW, 0)
		}
		return t, nil
	}
	// Compound: [addr] → dup → load → op(value) → store.
	f.emit(IDup, 0)
	if byteAccess {
		f.emit(ILoadB, 0)
	} else {
		f.emit(ILoadW, 0)
	}
	if err := f.applyCompound(ex, t); err != nil {
		return 0, err
	}
	if byteAccess {
		f.emit(IStoreB, 0)
	} else {
		f.emit(IStoreW, 0)
	}
	return t, nil
}

// applyCompound compiles `<current> op= value` with the current value
// already on the stack, leaving the new value.
func (f *fnCompiler) applyCompound(ex *eAssign, t cType) error {
	if _, err := f.expr(ex.Value); err != nil {
		return err
	}
	switch ex.Op {
	case "+=":
		f.emit(IAdd, 0)
	case "-=":
		f.emit(ISub, 0)
	case "*=":
		f.emit(IMul, 0)
	case "/=":
		f.emit(IDiv, 0)
	case "%=":
		f.emit(IRem, 0)
	case "<<=":
		f.emit(IShl, 0)
	case ">>=":
		f.emit(IShr, 0)
	default:
		return fmt.Errorf("minic: unknown assignment %s", ex.Op)
	}
	return nil
}

func (f *fnCompiler) incDec(ex *eIncDec) (cType, error) {
	delta := int32(1)
	op := OpCode(IAdd)
	if ex.Op == "--" {
		op = ISub
	}
	// Local scalar.
	if v, ok := ex.Target.(*eVar); ok {
		if li, lok := f.lookupLocal(v.Name); lok && !li.isArray {
			if ex.Postfix {
				f.emit(ILoadL, int32(li.slot)) // old
				f.emit(IDup, 0)
				f.emit(IPush, delta)
				f.emit(op, 0)
				f.emit(IStoreL, int32(li.slot))
				f.emit(IPop, 0)
				return li.typ, nil
			}
			f.emit(ILoadL, int32(li.slot))
			f.emit(IPush, delta)
			f.emit(op, 0)
			f.emit(IStoreL, int32(li.slot))
			return li.typ, nil
		}
	}
	byteAccess, t, err := f.lvAddr(ex.Target)
	if err != nil {
		return 0, err
	}
	loadOp, storeOp := OpCode(ILoadW), OpCode(IStoreW)
	if byteAccess {
		loadOp, storeOp = ILoadB, IStoreB
	}
	f.emit(IDup, 0)
	f.emit(loadOp, 0)
	if ex.Postfix {
		// [addr, old] → stash old, compute, store, reload old.
		sc := f.scratchSlot()
		f.emit(IStoreL, sc)
		f.emit(IPush, delta)
		f.emit(op, 0)
		f.emit(storeOp, 0)
		f.emit(IPop, 0)
		f.emit(ILoadL, sc)
		return t, nil
	}
	f.emit(IPush, delta)
	f.emit(op, 0)
	f.emit(storeOp, 0)
	return t, nil
}

func (f *fnCompiler) binary(ex *eBin) (cType, error) {
	switch ex.Op {
	case "&&":
		if _, err := f.expr(ex.L); err != nil {
			return 0, err
		}
		jz1 := f.emit(IJz, 0)
		if _, err := f.expr(ex.R); err != nil {
			return 0, err
		}
		jz2 := f.emit(IJz, 0)
		f.emit(IPush, 1)
		jend := f.emit(IJmp, 0)
		f.patch(jz1, f.here())
		f.patch(jz2, f.here())
		f.emit(IPush, 0)
		f.patch(jend, f.here())
		return tyInt, nil
	case "||":
		if _, err := f.expr(ex.L); err != nil {
			return 0, err
		}
		jnz1 := f.emit(IJnz, 0)
		if _, err := f.expr(ex.R); err != nil {
			return 0, err
		}
		jnz2 := f.emit(IJnz, 0)
		f.emit(IPush, 0)
		jend := f.emit(IJmp, 0)
		f.patch(jnz1, f.here())
		f.patch(jnz2, f.here())
		f.emit(IPush, 1)
		f.patch(jend, f.here())
		return tyInt, nil
	}
	lt, err := f.expr(ex.L)
	if err != nil {
		return 0, err
	}
	if _, err := f.expr(ex.R); err != nil {
		return 0, err
	}
	// Pointer arithmetic: int-pointer strides are 4 bytes.
	isPtr := lt == tyPtrInt || lt == tyPtrChar
	if (ex.Op == "+" || ex.Op == "-") && lt == tyPtrInt {
		f.emit(IPush, 2)
		f.emit(IShl, 0)
	}
	switch ex.Op {
	case "+":
		f.emit(IAdd, 0)
	case "-":
		f.emit(ISub, 0)
	case "*":
		f.emit(IMul, 0)
	case "/":
		f.emit(IDiv, 0)
	case "%":
		f.emit(IRem, 0)
	case "&":
		f.emit(IAnd, 0)
	case "|":
		f.emit(IOr, 0)
	case "^":
		f.emit(IXor, 0)
	case "<<":
		f.emit(IShl, 0)
	case ">>":
		f.emit(IShr, 0)
	case "==":
		f.emit(IEq, 0)
		return tyInt, nil
	case "!=":
		f.emit(INe, 0)
		return tyInt, nil
	case "<":
		f.emit(ILt, 0)
		return tyInt, nil
	case "<=":
		f.emit(ILe, 0)
		return tyInt, nil
	case ">":
		f.emit(IGt, 0)
		return tyInt, nil
	case ">=":
		f.emit(IGe, 0)
		return tyInt, nil
	default:
		return 0, fmt.Errorf("minic: unknown operator %s", ex.Op)
	}
	if isPtr {
		return lt, nil
	}
	return tyInt, nil
}

func (f *fnCompiler) call(ex *eCall) (cType, error) {
	if b, ok := builtins[ex.Name]; ok {
		if len(ex.Args) != b.argc {
			return 0, fmt.Errorf("minic: %s takes %d args, got %d", ex.Name, b.argc, len(ex.Args))
		}
		for _, a := range ex.Args {
			if _, err := f.expr(a); err != nil {
				return 0, err
			}
		}
		f.emit(ISys, b.sys)
		return b.ret, nil
	}
	idx, ok := f.c.funcIdx[ex.Name]
	if !ok {
		return 0, fmt.Errorf("minic: undefined function %s", ex.Name)
	}
	target := f.c.prog.Funcs[idx]
	if len(ex.Args) != len(target.Params) {
		return 0, fmt.Errorf("minic: %s takes %d args, got %d", ex.Name, len(target.Params), len(ex.Args))
	}
	for _, a := range ex.Args {
		if _, err := f.expr(a); err != nil {
			return 0, err
		}
	}
	f.emit(ICall, int32(idx))
	return tyInt, nil
}

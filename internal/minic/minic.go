// Package minic is the reproduction's Emscripten analog (paper §7.2):
// a compiler from a small C-like language to a stack-machine IR whose
// entire memory — globals, stack frames, malloc'd data, string
// literals — lives in the Doppio unmanaged heap (the asm.js model),
// plus a VM that executes the IR inside the Doppio execution
// environment. Programs gain what the paper's Emscripten+Doppio case
// study demonstrates: automatic event segmentation, synchronous
// file loading through the Doppio file system, and blocking console
// input (the paper's §3.2 cin.getline example).
package minic

import (
	"fmt"
	"strings"
)

// --- lexer ---

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tChar
	tPunct
	tKw
)

type token struct {
	kind tokKind
	text string
	num  int32
	str  string
	line int
}

var cKeywords = map[string]bool{
	"int": true, "char": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "sizeof": true,
}

func lexC(src string) ([]token, error) {
	var out []token
	line := 1
	i := 0
	fail := func(msg string) ([]token, error) {
		return nil, fmt.Errorf("minic: line %d: %s", line, msg)
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			start := i
			for i < len(src) && (src[i] == '_' ||
				(src[i] >= 'a' && src[i] <= 'z') || (src[i] >= 'A' && src[i] <= 'Z') ||
				(src[i] >= '0' && src[i] <= '9')) {
				i++
			}
			text := src[start:i]
			k := tIdent
			if cKeywords[text] {
				k = tKw
			}
			out = append(out, token{kind: k, text: text, line: line})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			var v int64
			for _, d := range src[start:i] {
				v = v*10 + int64(d-'0')
			}
			out = append(out, token{kind: tNum, num: int32(v), line: line})
		case c == '"':
			i++
			var b strings.Builder
			for i < len(src) && src[i] != '"' {
				ch, n, err := cEscape(src[i:])
				if err != nil {
					return fail(err.Error())
				}
				b.WriteByte(ch)
				i += n
			}
			if i >= len(src) {
				return fail("unterminated string")
			}
			i++
			out = append(out, token{kind: tStr, str: b.String(), line: line})
		case c == '\'':
			i++
			if i >= len(src) {
				return fail("unterminated char")
			}
			ch, n, err := cEscape(src[i:])
			if err != nil {
				return fail(err.Error())
			}
			i += n
			if i >= len(src) || src[i] != '\'' {
				return fail("unterminated char")
			}
			i++
			out = append(out, token{kind: tChar, num: int32(ch), line: line})
		default:
			matched := false
			for _, p := range []string{"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||",
				"++", "--", "+=", "-=", "*=", "/=", "%=", "<<", ">>"} {
				if strings.HasPrefix(src[i:], p) {
					out = append(out, token{kind: tPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				if !strings.ContainsRune("{}()[];,=+-*/%<>!&|^~", rune(c)) {
					return fail(fmt.Sprintf("unexpected character %q", string(c)))
				}
				out = append(out, token{kind: tPunct, text: string(c), line: line})
				i++
			}
		}
	}
	out = append(out, token{kind: tEOF, line: line})
	return out, nil
}

func cEscape(s string) (byte, int, error) {
	if s[0] != '\\' {
		return s[0], 1, nil
	}
	if len(s) < 2 {
		return 0, 0, fmt.Errorf("bad escape")
	}
	switch s[1] {
	case 'n':
		return '\n', 2, nil
	case 't':
		return '\t', 2, nil
	case 'r':
		return '\r', 2, nil
	case '0':
		return 0, 2, nil
	case '\\':
		return '\\', 2, nil
	case '\'':
		return '\'', 2, nil
	case '"':
		return '"', 2, nil
	}
	return 0, 0, fmt.Errorf("unknown escape \\%c", s[1])
}

// --- AST ---

type cProgram struct {
	Globals []*cGlobal
	Funcs   []*cFunc
}

// cType is MiniC's four-point type lattice: values are int32 words;
// char narrows loads/stores to bytes; pointer types select the
// indexing stride.
type cType int

const (
	tyInt cType = iota
	tyChar
	tyPtrInt
	tyPtrChar
)

// elem returns the element type a pointer/array type indexes to.
func (t cType) elem() cType {
	if t == tyPtrChar || t == tyChar {
		return tyChar
	}
	return tyInt
}

// ptrTo returns the pointer type for an element type.
func ptrTo(elem cType) cType {
	if elem == tyChar {
		return tyPtrChar
	}
	return tyPtrInt
}

type cGlobal struct {
	Name string
	Type cType
	// Words is the size in 32-bit words (1 for scalars; arrays are
	// padded up from their element count).
	Words   int32
	IsArray bool
	Init    int32 // scalar initializer
}

type cFunc struct {
	Name       string
	Params     []string
	ParamTypes []cType
	Body       []cStmt
	line       int
}

type cStmt interface{ cstmt() }

type sExpr struct{ E cExpr }
type sDecl struct {
	Name    string
	Type    cType
	Words   int32 // element count for local arrays
	IsArray bool
	Init    cExpr
}
type sIf struct {
	Cond       cExpr
	Then, Else []cStmt
}
type sWhile struct {
	Cond cExpr
	Body []cStmt
}
type sFor struct {
	Init, Post cStmt
	Cond       cExpr
	Body       []cStmt
}
type sReturn struct{ E cExpr }
type sBreak struct{}
type sContinue struct{}

func (*sExpr) cstmt()     {}
func (*sDecl) cstmt()     {}
func (*sIf) cstmt()       {}
func (*sWhile) cstmt()    {}
func (*sFor) cstmt()      {}
func (*sReturn) cstmt()   {}
func (*sBreak) cstmt()    {}
func (*sContinue) cstmt() {}

type cExpr interface{ cexpr() }

type eNum struct{ V int32 }
type eStr struct{ S string }
type eVar struct{ Name string }
type eAssign struct {
	Target cExpr // eVar, eIndex or eDeref
	Op     string
	Value  cExpr
}
type eBin struct {
	Op   string
	L, R cExpr
}
type eUn struct {
	Op string
	E  cExpr
}
type eIncDec struct {
	Target  cExpr
	Op      string
	Postfix bool
}
type eCall struct {
	Name string
	Args []cExpr
}
type eIndex struct {
	Base  cExpr
	Index cExpr
	// Byte selects byte addressing (char arrays); word arrays use
	// 4-byte strides.
	Byte bool
}
type eDeref struct{ E cExpr }
type eAddr struct{ Name string }

func (*eNum) cexpr()    {}
func (*eStr) cexpr()    {}
func (*eVar) cexpr()    {}
func (*eAssign) cexpr() {}
func (*eBin) cexpr()    {}
func (*eUn) cexpr()     {}
func (*eIncDec) cexpr() {}
func (*eCall) cexpr()   {}
func (*eIndex) cexpr()  {}
func (*eDeref) cexpr()  {}
func (*eAddr) cexpr()   {}

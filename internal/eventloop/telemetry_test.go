package eventloop

import (
	"testing"
	"time"

	"doppio/internal/telemetry"
)

func TestTelemetryDispatchHistogram(t *testing.T) {
	hub := telemetry.NewHub().EnableTracing()
	l := New(Options{})
	l.EnableTelemetry(hub)

	const n = 20
	for i := 0; i < n; i++ {
		l.Post("work", func() {
			end := time.Now().Add(100 * time.Microsecond)
			for time.Now().Before(end) {
			}
		})
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}

	h := hub.Registry.Histogram("eventloop", "dispatch")
	if got := h.Count(); got != n {
		t.Fatalf("dispatch count = %d, want %d", got, n)
	}
	if p95 := h.Quantile(0.95); p95 < int64(50*time.Microsecond) {
		t.Errorf("dispatch p95 = %v, want >= 50µs", time.Duration(p95))
	}
	if got := hub.Registry.Counter("eventloop", "tasks").Value(); got != n {
		t.Errorf("tasks counter = %d, want %d", got, n)
	}
	if got := hub.Registry.Gauge("eventloop", "queue_depth_max").Value(); got != n {
		t.Errorf("queue_depth_max = %d, want %d", got, n)
	}

	// Every macrotask must appear as a complete span on the event-loop
	// track, plus the thread_name metadata event.
	spans := 0
	named := false
	for _, ev := range hub.Tracer.Events() {
		switch {
		case ev.Ph == "X" && ev.TID == telemetry.TIDEventLoop:
			spans++
		case ev.Ph == "M" && ev.Name == "thread_name":
			named = true
		}
	}
	if spans != n {
		t.Errorf("got %d spans, want %d", spans, n)
	}
	if !named {
		t.Error("missing thread_name metadata event")
	}
}

func TestTelemetryTimerClamp(t *testing.T) {
	hub := telemetry.NewHub()
	l := New(Options{MinTimeoutDelay: 4 * time.Millisecond})
	l.EnableTelemetry(hub)

	fired := false
	l.SetTimeout(func() { fired = true }, 0) // clamped up by 4ms
	l.SetTimeout(func() {}, 10*time.Millisecond)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer did not fire")
	}
	h := hub.Registry.Histogram("eventloop", "timer_clamp")
	if got := h.Count(); got != 1 {
		t.Fatalf("timer_clamp count = %d, want 1 (only the clamped timer)", got)
	}
	if got := h.Quantile(1.0); got != int64(4*time.Millisecond) {
		t.Errorf("clamp delay = %v, want 4ms", time.Duration(got))
	}
	if got := hub.Registry.Counter("eventloop", "timers_fired").Value(); got != 2 {
		t.Errorf("timers_fired = %d, want 2", got)
	}
}

func TestTelemetryMessages(t *testing.T) {
	hub := telemetry.NewHub()
	l := New(Options{})
	l.EnableTelemetry(hub)
	l.OnMessage(func(string) {})
	l.Post("kick", func() { l.PostMessage("hello") })
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Registry.Counter("eventloop", "messages").Value(); got != 1 {
		t.Errorf("messages = %d, want 1", got)
	}
}

// TestDisabledTelemetryZeroAllocs guards the paper-critical hot path:
// with telemetry disabled the per-macrotask dispatch must not allocate
// at all.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	l := New(Options{})
	tk := task{label: "hot", fn: func() {}}
	if n := testing.AllocsPerRun(1000, func() { l.runTask(tk, nil) }); n != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per task, want 0", n)
	}
}

// TestMetricsOnlyTelemetryZeroAllocs additionally documents that the
// metrics pillar alone (no tracer) stays allocation-free per task —
// histogram observation is pure atomics.
func TestMetricsOnlyTelemetryZeroAllocs(t *testing.T) {
	hub := telemetry.NewHub()
	l := New(Options{})
	l.EnableTelemetry(hub)
	tk := task{label: "hot", fn: func() {}}
	tel := l.tel
	if n := testing.AllocsPerRun(1000, func() { l.runTask(tk, tel) }); n != 0 {
		t.Fatalf("metrics-only telemetry allocates %.1f per task, want 0", n)
	}
}

package eventloop

import (
	"testing"
	"time"

	"doppio/internal/telemetry"
)

// slowTask posts a macrotask that busy-waits for d.
func slowTask(l *Loop, label string, d time.Duration) {
	l.Post(label, func() {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
	})
}

func TestStallMonitorFiresAfterConsecutiveOverruns(t *testing.T) {
	l := New(Options{})
	var events []StallEvent
	l.SetStallMonitor(time.Millisecond, 3, func(ev StallEvent) {
		events = append(events, ev)
	})
	for i := 0; i < 3; i++ {
		slowTask(l, "busy", 3*time.Millisecond)
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("stall events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.Consecutive != 3 || ev.Budget != time.Millisecond || ev.Label != "busy" {
		t.Fatalf("stall event = %+v", ev)
	}
	if ev.Elapsed < time.Millisecond {
		t.Fatalf("stall elapsed %v under budget", ev.Elapsed)
	}
}

func TestStallMonitorStreakResetsOnFastTask(t *testing.T) {
	l := New(Options{})
	fired := 0
	l.SetStallMonitor(2*time.Millisecond, 2, func(StallEvent) { fired++ })
	slowTask(l, "busy", 5*time.Millisecond)
	l.Post("fast", func() {}) // breaks the streak
	slowTask(l, "busy", 5*time.Millisecond)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("stall fired %d times despite broken streak", fired)
	}
}

func TestStallMonitorDisarm(t *testing.T) {
	l := New(Options{})
	fired := 0
	l.SetStallMonitor(time.Millisecond, 1, func(StallEvent) { fired++ })
	l.SetStallMonitor(0, 1, nil)
	slowTask(l, "busy", 3*time.Millisecond)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("disarmed monitor fired %d times", fired)
	}
}

func TestStallRecordsTelemetry(t *testing.T) {
	l := New(Options{})
	hub := telemetry.NewHub().EnableFlight(64)
	l.EnableTelemetry(hub)
	l.SetStallMonitor(time.Millisecond, 2, func(StallEvent) {})
	for i := 0; i < 2; i++ {
		slowTask(l, "busy", 3*time.Millisecond)
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if got := hub.Registry.Counter("eventloop", "stalls").Value(); got != 1 {
		t.Fatalf("eventloop.stalls = %d, want 1", got)
	}
	var found bool
	for _, ev := range hub.Flight.Events() {
		if ev.Cat == "loop" && ev.Event == "stall" {
			found = true
		}
	}
	if !found {
		t.Fatal("no loop/stall flight event recorded")
	}
}

func TestWatchdogKillRecordsFlight(t *testing.T) {
	l := New(Options{WatchdogLimit: time.Millisecond})
	hub := telemetry.NewHub().EnableFlight(64)
	l.EnableTelemetry(hub)
	slowTask(l, "runaway", 5*time.Millisecond)
	err := l.Run()
	if _, ok := err.(*WatchdogError); !ok {
		t.Fatalf("Run err = %v, want WatchdogError", err)
	}
	var found bool
	for _, ev := range hub.Flight.Events() {
		if ev.Cat == "loop" && ev.Event == "watchdog" && ev.Label == "runaway" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no loop/watchdog flight event: %+v", hub.Flight.Events())
	}
}

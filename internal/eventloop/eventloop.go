// Package eventloop simulates the JavaScript execution model that the
// Doppio paper (§3) identifies as the core obstacle to running
// conventional languages in the browser:
//
//   - a single thread of execution,
//   - run-to-completion events with no preemption,
//   - a watchdog that kills events that run too long,
//   - asynchronous-only APIs whose completions arrive as queued events,
//   - setTimeout's minimum-delay clamp (≥4 ms per the HTML5 spec),
//   - postMessage as a fast way to enqueue an event (§4.4),
//   - setImmediate where the browser supports it (IE10) (§4.4).
//
// Everything "inside the browser" runs on the single goroutine that
// called Run. External completions (storage latency, network frames,
// timer expiry) are injected from other goroutines via InvokeExternal
// and are delivered as ordinary macrotasks, preserving JavaScript's
// run-to-completion semantics.
package eventloop

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"doppio/internal/telemetry"
)

// Options configure the loop with the relevant per-browser quirks.
// They are usually derived from a browser.Profile.
type Options struct {
	// MinTimeoutDelay clamps SetTimeout's delay from below, as the
	// HTML5 timer specification requires (≥4 ms in real browsers).
	MinTimeoutDelay time.Duration

	// HasSetImmediate enables the setImmediate API (IE10 only in the
	// paper's browser population).
	HasSetImmediate bool

	// SyncPostMessage makes PostMessage dispatch the handler
	// synchronously, as Internet Explorer 8 does (§4.4). Doppio must
	// detect this and fall back to setTimeout.
	SyncPostMessage bool

	// WatchdogLimit is the longest a single event may run before the
	// browser kills the script. Zero disables the watchdog.
	WatchdogLimit time.Duration
}

// WatchdogError reports that the browser killed a long-running event.
type WatchdogError struct {
	Label   string
	Elapsed time.Duration
	Limit   time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("eventloop: script %q unresponsive: event ran %v (limit %v); killed by watchdog",
		e.Label, e.Elapsed.Round(time.Millisecond), e.Limit)
}

// StallEvent reports that macrotask latency exceeded the
// responsiveness budget for N consecutive tasks — the event loop is
// still alive (unlike a watchdog kill) but the page would feel frozen.
type StallEvent struct {
	// Label identifies the macrotask that completed the streak.
	Label string
	// Elapsed is that task's execution time.
	Elapsed time.Duration
	// Budget is the configured per-task responsiveness budget.
	Budget time.Duration
	// Consecutive is the length of the over-budget streak.
	Consecutive int
}

// Stats accumulate per-run instrumentation used by the benchmarks.
type Stats struct {
	TasksRun    int
	TimersFired int
	Messages    int
	BusyTime    time.Duration // time spent executing events
	IdleTime    time.Duration // time spent waiting for timers/externals
	LongestTask time.Duration
}

type task struct {
	label string
	fn    func()
}

// TimerID identifies a pending timer for ClearTimeout.
type TimerID int64

type timer struct {
	id       TimerID
	deadline time.Time
	fn       func()
	index    int // heap index
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].deadline.Before(h[j].deadline) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *timerHeap) Push(x interface{}) { t := x.(*timer); t.index = len(*h); *h = append(*h, t) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Loop is a single-threaded JavaScript-style event loop.
// Create one with New; it is driven by Run.
type Loop struct {
	opts Options

	mu       sync.Mutex
	queue    []task
	timers   timerHeap
	timerIDs map[TimerID]*timer
	nextID   TimerID
	pending  int // external operations in flight
	wake     chan struct{}
	stopped  bool
	killed   *WatchdogError

	msgHandlers []func(data string)

	// Stall monitor state (see SetStallMonitor).
	stallBudget time.Duration
	stallCount  int
	stallFn     func(StallEvent)
	stallRun    int

	stats Stats
	tel   *loopTelemetry
}

// loopTelemetry caches the loop's resolved metric handles so the hot
// dispatch path pays only a nil check when telemetry is disabled and
// lock-free atomics when it is enabled.
type loopTelemetry struct {
	dispatch    *telemetry.Histogram // macrotask execution duration
	clampDelay  *telemetry.Histogram // extra delay added by the timer clamp
	tasks       *telemetry.Counter
	timersFired *telemetry.Counter
	messages    *telemetry.Counter
	queueDepth  *telemetry.Gauge // depth after the latest enqueue
	queueMax    *telemetry.Gauge // high-watermark depth
	stalls      *telemetry.Counter
	tracer      *telemetry.Tracer
	flight      *telemetry.FlightRecorder
}

// EnableTelemetry attaches the loop to a telemetry hub: macrotask
// dispatch durations feed the "eventloop/dispatch" histogram, timer
// clamping the "eventloop/timer_clamp" histogram, and (when the hub
// traces) every macrotask becomes a span on the event-loop track.
// Passing nil detaches. Safe to call while the loop runs.
func (l *Loop) EnableTelemetry(h *telemetry.Hub) {
	var t *loopTelemetry
	if h != nil {
		t = &loopTelemetry{
			dispatch:    h.Registry.Histogram("eventloop", "dispatch"),
			clampDelay:  h.Registry.Histogram("eventloop", "timer_clamp"),
			tasks:       h.Registry.Counter("eventloop", "tasks"),
			timersFired: h.Registry.Counter("eventloop", "timers_fired"),
			messages:    h.Registry.Counter("eventloop", "messages"),
			queueDepth:  h.Registry.Gauge("eventloop", "queue_depth"),
			queueMax:    h.Registry.Gauge("eventloop", "queue_depth_max"),
			stalls:      h.Registry.Counter("eventloop", "stalls"),
			tracer:      h.Tracer,
			flight:      h.Flight,
		}
		if h.Tracer != nil {
			h.Tracer.ThreadName(telemetry.TIDEventLoop, "event loop")
		}
	}
	l.mu.Lock()
	l.tel = t
	l.mu.Unlock()
}

// New creates an idle event loop.
func New(opts Options) *Loop {
	l := &Loop{
		opts:     opts,
		timerIDs: make(map[TimerID]*timer),
		wake:     make(chan struct{}, 1),
	}
	heap.Init(&l.timers)
	return l
}

// Options returns the loop's configuration.
func (l *Loop) Options() Options { return l.opts }

// Stats returns a snapshot of the run statistics.
func (l *Loop) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Post appends a macrotask to the back of the event queue. The label
// is used in watchdog diagnostics. Post is safe to call from the loop
// goroutine; use InvokeExternal from other goroutines.
func (l *Loop) Post(label string, fn func()) {
	l.mu.Lock()
	l.queue = append(l.queue, task{label: label, fn: fn})
	if tel := l.tel; tel != nil {
		depth := int64(len(l.queue))
		tel.queueDepth.Set(depth)
		tel.queueMax.SetMax(depth)
	}
	l.mu.Unlock()
	l.signal()
}

// SetTimeout schedules fn to run after at least d, subject to the
// browser's minimum-delay clamp. It returns an id for ClearTimeout.
func (l *Loop) SetTimeout(fn func(), d time.Duration) TimerID {
	requested := d
	if d < l.opts.MinTimeoutDelay {
		d = l.opts.MinTimeoutDelay
	}
	l.mu.Lock()
	if tel := l.tel; tel != nil && d > requested {
		// Record how much the HTML5 minimum-delay clamp inflated the
		// requested timeout (§4.4's motivation for avoiding setTimeout).
		tel.clampDelay.ObserveDuration(d - requested)
	}
	l.nextID++
	id := l.nextID
	t := &timer{id: id, deadline: time.Now().Add(d), fn: fn}
	heap.Push(&l.timers, t)
	l.timerIDs[id] = t
	l.mu.Unlock()
	l.signal()
	return id
}

// ClearTimeout cancels a pending timer. Cancelling an already-fired or
// unknown timer is a no-op, as in the browser.
func (l *Loop) ClearTimeout(id TimerID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := l.timerIDs[id]; ok {
		heap.Remove(&l.timers, t.index)
		delete(l.timerIDs, id)
	}
}

// OnMessage registers a window message listener. Like the browser's
// addEventListener("message", ...) it is additive: every registered
// listener sees every message, in registration order. Listeners that
// multiplex (core.Runtime's postMessage resumption) ignore messages
// they don't recognize.
func (l *Loop) OnMessage(fn func(data string)) {
	l.mu.Lock()
	l.msgHandlers = append(l.msgHandlers, fn)
	l.mu.Unlock()
}

// PostMessage sends a string message to the window itself. In most
// browsers the handler is enqueued as an event at the back of the
// queue; with Options.SyncPostMessage (IE8) the handler runs
// synchronously before PostMessage returns.
func (l *Loop) PostMessage(data string) {
	l.mu.Lock()
	hs := l.msgHandlers
	if len(hs) == 0 {
		l.mu.Unlock()
		return
	}
	l.stats.Messages++
	if tel := l.tel; tel != nil {
		tel.messages.Inc()
	}
	l.mu.Unlock()
	dispatch := func() {
		for _, h := range hs {
			h(data)
		}
	}
	if l.opts.SyncPostMessage {
		dispatch()
		return
	}
	l.Post("message", dispatch)
}

// ErrNoSetImmediate is returned by SetImmediate on browsers without it.
var ErrNoSetImmediate = fmt.Errorf("eventloop: setImmediate is not defined")

// SetImmediate places fn at the back of the event queue with no delay.
// Only browsers with Options.HasSetImmediate support it.
func (l *Loop) SetImmediate(fn func()) error {
	if !l.opts.HasSetImmediate {
		return ErrNoSetImmediate
	}
	l.Post("setImmediate", fn)
	return nil
}

// InvokeExternal delivers fn as a macrotask from another goroutine.
// It pairs with AddPending/DonePending to keep Run alive while external
// operations are in flight.
func (l *Loop) InvokeExternal(label string, fn func()) {
	l.Post(label, fn)
}

// AddPending records that an external asynchronous operation has been
// launched; Run will not exit while operations are pending.
func (l *Loop) AddPending() {
	l.mu.Lock()
	l.pending++
	l.mu.Unlock()
}

// DonePending records the completion of an external operation.
func (l *Loop) DonePending() {
	l.mu.Lock()
	if l.pending <= 0 {
		l.mu.Unlock()
		panic("eventloop: DonePending without AddPending")
	}
	l.pending--
	l.mu.Unlock()
	l.signal()
}

// SetStallMonitor arms stall detection: when a macrotask's execution
// time exceeds budget for consecutive tasks in a row, fn fires (on the
// loop goroutine, after the offending task completes) and the streak
// resets. This catches responsiveness collapse the watchdog never
// sees — many tasks each just long enough to freeze the page (§4.3's
// responsiveness concern), none long enough to be killed. A zero
// budget or nil fn disarms the monitor; consecutive < 1 is treated
// as 1. Safe to call while the loop runs.
func (l *Loop) SetStallMonitor(budget time.Duration, consecutive int, fn func(StallEvent)) {
	if consecutive < 1 {
		consecutive = 1
	}
	l.mu.Lock()
	l.stallBudget = budget
	l.stallCount = consecutive
	l.stallFn = fn
	l.stallRun = 0
	l.mu.Unlock()
}

// Stop makes Run return after the current event completes.
func (l *Loop) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	l.signal()
}

func (l *Loop) signal() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Run executes events until the queue is empty, no timers remain, and
// no external operations are pending — or until Stop is called or the
// watchdog kills the script. It returns a *WatchdogError in the latter
// case and nil otherwise. Run must not be called concurrently.
func (l *Loop) Run() error {
	l.mu.Lock()
	l.stopped = false
	l.killed = nil
	l.mu.Unlock()
	for {
		l.mu.Lock()
		if l.stopped {
			l.mu.Unlock()
			return nil
		}
		if l.killed != nil {
			err := l.killed
			l.mu.Unlock()
			return err
		}
		// Promote due timers to the queue.
		now := time.Now()
		for len(l.timers) > 0 && !l.timers[0].deadline.After(now) {
			t := heap.Pop(&l.timers).(*timer)
			delete(l.timerIDs, t.id)
			l.queue = append(l.queue, task{label: "timer", fn: t.fn})
			l.stats.TimersFired++
			if tel := l.tel; tel != nil {
				tel.timersFired.Inc()
			}
		}
		if len(l.queue) > 0 {
			tk := l.queue[0]
			l.queue = l.queue[1:]
			tel := l.tel
			l.mu.Unlock()
			l.runTask(tk, tel)
			continue
		}
		// Queue empty: exit, or wait for a timer/external event.
		if l.pending == 0 && len(l.timers) == 0 {
			l.mu.Unlock()
			return nil
		}
		var waitCh <-chan time.Time
		if len(l.timers) > 0 {
			waitCh = time.After(time.Until(l.timers[0].deadline))
		}
		l.mu.Unlock()

		idleStart := time.Now()
		select {
		case <-l.wake:
		case <-waitCh:
		}
		l.mu.Lock()
		l.stats.IdleTime += time.Since(idleStart)
		l.mu.Unlock()
	}
}

// runTask executes one macrotask. tel is the telemetry state captured
// under the loop mutex by the caller; when nil (telemetry disabled)
// this path performs zero additional allocations.
func (l *Loop) runTask(tk task, tel *loopTelemetry) {
	var span telemetry.Span
	if tel != nil && tel.tracer != nil {
		span = tel.tracer.Begin(telemetry.TIDEventLoop, "eventloop", tk.label)
	}
	start := time.Now()
	tk.fn()
	elapsed := time.Since(start)
	if tel != nil {
		span.End()
		tel.dispatch.ObserveDuration(elapsed)
		tel.tasks.Inc()
	}

	l.mu.Lock()
	l.stats.TasksRun++
	l.stats.BusyTime += elapsed
	if elapsed > l.stats.LongestTask {
		l.stats.LongestTask = elapsed
	}
	if l.opts.WatchdogLimit > 0 && elapsed > l.opts.WatchdogLimit {
		l.killed = &WatchdogError{Label: tk.label, Elapsed: elapsed, Limit: l.opts.WatchdogLimit}
		if tel != nil {
			tel.flight.RecordNote("loop", "watchdog", tk.label, "killed", elapsed.Milliseconds())
		}
	}
	var stall func(StallEvent)
	var stallEv StallEvent
	if l.stallBudget > 0 && l.stallFn != nil {
		if elapsed > l.stallBudget {
			l.stallRun++
			if l.stallRun >= l.stallCount {
				stall = l.stallFn
				stallEv = StallEvent{Label: tk.label, Elapsed: elapsed, Budget: l.stallBudget, Consecutive: l.stallRun}
				l.stallRun = 0
			}
		} else {
			l.stallRun = 0
		}
	}
	l.mu.Unlock()
	if stall != nil {
		if tel != nil {
			tel.stalls.Inc()
			tel.flight.RecordNote("loop", "stall", stallEv.Label, "over-budget", int64(stallEv.Consecutive))
		}
		stall(stallEv)
	}
}

package eventloop

import (
	"fmt"
	"sync"
	"testing"
)

// TestManyLoopsInvokeExternalConcurrent is the fleet hosting shape: a
// pool of loops each pinned to its own goroutine, hammered by many
// external producer goroutines at once. Every InvokeExternal must be
// delivered exactly once to its loop, with no cross-loop leakage —
// the -race run is the real assertion.
func TestManyLoopsInvokeExternalConcurrent(t *testing.T) {
	const (
		loops     = 16
		producers = 4
		perProd   = 50
	)
	type shard struct {
		loop *Loop
		got  int // loop-goroutine confined
		done chan error
	}
	shards := make([]*shard, loops)
	for i := range shards {
		sh := &shard{loop: New(Options{}), done: make(chan error, 1)}
		shards[i] = sh
		sh.loop.AddPending()
		go func() { sh.done <- sh.loop.Run() }()
	}

	want := producers * perProd
	var wg sync.WaitGroup
	for i, sh := range shards {
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(sh *shard, label string) {
				defer wg.Done()
				for m := 0; m < perProd; m++ {
					sh.loop.InvokeExternal(label, func() {
						sh.got++
						if sh.got == want {
							sh.loop.DonePending()
						}
					})
				}
			}(sh, fmt.Sprintf("producer-%d-%d", i, p))
		}
	}
	wg.Wait()
	for i, sh := range shards {
		if err := <-sh.done; err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		if sh.got != want {
			t.Errorf("loop %d delivered %d tasks, want %d", i, sh.got, want)
		}
	}
}

// TestManyLoopsOnMessageConcurrent layers window messaging on top:
// external producers InvokeExternal a PostMessage onto each loop, and
// every registered listener must see every message in order, while
// sibling loops run the same traffic concurrently.
func TestManyLoopsOnMessageConcurrent(t *testing.T) {
	const (
		loops     = 8
		producers = 4
		perProd   = 25
		listeners = 3
	)
	type shard struct {
		loop *Loop
		seen [listeners]int // loop-goroutine confined
		done chan error
	}
	want := producers * perProd
	shards := make([]*shard, loops)
	for i := range shards {
		sh := &shard{loop: New(Options{}), done: make(chan error, 1)}
		shards[i] = sh
		for li := 0; li < listeners; li++ {
			li := li
			sh.loop.OnMessage(func(data string) {
				sh.seen[li]++
				// The last listener of the last message releases the loop.
				if li == listeners-1 && sh.seen[li] == want {
					sh.loop.DonePending()
				}
			})
		}
		sh.loop.AddPending()
		go func() { sh.done <- sh.loop.Run() }()
	}

	var wg sync.WaitGroup
	for i, sh := range shards {
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(sh *shard, label string) {
				defer wg.Done()
				for m := 0; m < perProd; m++ {
					sh.loop.InvokeExternal(label, func() {
						sh.loop.PostMessage(label)
					})
				}
			}(sh, fmt.Sprintf("msg-%d-%d", i, p))
		}
	}
	wg.Wait()
	for i, sh := range shards {
		if err := <-sh.done; err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		for li, n := range sh.seen {
			if n != want {
				t.Errorf("loop %d listener %d saw %d messages, want %d", i, li, n, want)
			}
		}
	}
}

package eventloop

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunToCompletionOrder(t *testing.T) {
	l := New(Options{})
	var order []int
	l.Post("a", func() {
		order = append(order, 1)
		l.Post("b", func() { order = append(order, 3) })
		order = append(order, 2) // events run to completion
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSetTimeoutClamp(t *testing.T) {
	l := New(Options{MinTimeoutDelay: 20 * time.Millisecond})
	var fired time.Time
	start := time.Now()
	l.SetTimeout(func() { fired = time.Now() }, 0)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fired.Sub(start); got < 20*time.Millisecond {
		t.Errorf("timer fired after %v, want >= 20ms clamp", got)
	}
}

func TestSetTimeoutOrdering(t *testing.T) {
	l := New(Options{})
	var order []string
	l.SetTimeout(func() { order = append(order, "late") }, 30*time.Millisecond)
	l.SetTimeout(func() { order = append(order, "early") }, 5*time.Millisecond)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Errorf("order = %v", order)
	}
}

func TestClearTimeout(t *testing.T) {
	l := New(Options{})
	fired := false
	id := l.SetTimeout(func() { fired = true }, 5*time.Millisecond)
	l.ClearTimeout(id)
	l.ClearTimeout(id) // idempotent
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestPostMessageAsync(t *testing.T) {
	l := New(Options{})
	var order []string
	l.OnMessage(func(data string) { order = append(order, "handler:"+data) })
	l.Post("main", func() {
		l.PostMessage("x")
		order = append(order, "after-post")
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "after-post,handler:x" {
		t.Errorf("order = %v, want async dispatch", order)
	}
}

func TestPostMessageSyncIE8(t *testing.T) {
	l := New(Options{SyncPostMessage: true})
	var order []string
	l.OnMessage(func(data string) { order = append(order, "handler:"+data) })
	l.Post("main", func() {
		l.PostMessage("x")
		order = append(order, "after-post")
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "handler:x,after-post" {
		t.Errorf("order = %v, want synchronous dispatch (IE8)", order)
	}
}

func TestSetImmediateAvailability(t *testing.T) {
	ie10 := New(Options{HasSetImmediate: true})
	ran := false
	if err := ie10.SetImmediate(func() { ran = true }); err != nil {
		t.Fatalf("IE10 SetImmediate: %v", err)
	}
	if err := ie10.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("setImmediate callback did not run")
	}

	chrome := New(Options{})
	if err := chrome.SetImmediate(func() {}); err != ErrNoSetImmediate {
		t.Errorf("got %v, want ErrNoSetImmediate", err)
	}
}

func TestWatchdogKillsLongEvent(t *testing.T) {
	l := New(Options{WatchdogLimit: 10 * time.Millisecond})
	l.Post("hog", func() { time.Sleep(30 * time.Millisecond) })
	survived := false
	l.Post("next", func() { survived = true })
	err := l.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("Run() = %v, want *WatchdogError", err)
	}
	if we.Label != "hog" {
		t.Errorf("killed label = %q, want hog", we.Label)
	}
	if survived {
		t.Error("event after the kill still ran")
	}
	if !strings.Contains(we.Error(), "unresponsive") {
		t.Errorf("error text = %q", we.Error())
	}
}

func TestWatchdogAllowsSegmentedEvents(t *testing.T) {
	l := New(Options{WatchdogLimit: 20 * time.Millisecond})
	// 10 short events totalling more than the limit must all survive,
	// because each individually finishes in time.
	count := 0
	var step func()
	step = func() {
		time.Sleep(4 * time.Millisecond)
		count++
		if count < 10 {
			l.Post("step", step)
		}
	}
	l.Post("step", step)
	if err := l.Run(); err != nil {
		t.Fatalf("segmented run killed: %v", err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestExternalCompletion(t *testing.T) {
	l := New(Options{})
	var got atomic.Int32
	l.Post("start", func() {
		l.AddPending()
		go func() { // simulated async browser API
			time.Sleep(10 * time.Millisecond)
			l.InvokeExternal("io-done", func() {
				got.Store(42)
				l.DonePending()
			})
		}()
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 42 {
		t.Errorf("external completion not delivered, got %d", got.Load())
	}
}

func TestStop(t *testing.T) {
	l := New(Options{})
	n := 0
	var loop func()
	loop = func() {
		n++
		if n == 5 {
			l.Stop()
		}
		l.Post("loop", loop)
	}
	l.Post("loop", loop)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("n = %d, want 5", n)
	}
}

func TestStats(t *testing.T) {
	l := New(Options{})
	l.OnMessage(func(string) {})
	l.Post("a", func() { l.PostMessage("m") })
	l.SetTimeout(func() {}, time.Millisecond)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.TasksRun != 3 { // a, message, timer
		t.Errorf("TasksRun = %d, want 3", s.TasksRun)
	}
	if s.TimersFired != 1 {
		t.Errorf("TimersFired = %d, want 1", s.TimersFired)
	}
	if s.Messages != 1 {
		t.Errorf("Messages = %d, want 1", s.Messages)
	}
}

func TestDonePendingWithoutAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Options{}).DonePending()
}

func TestRunReturnsWhenDrained(t *testing.T) {
	l := New(Options{})
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return on an empty loop")
	}
}

package minijava

import (
	"doppio/internal/classfile"
)

// genExpr emits code leaving e's value on the operand stack and
// returns its static type.
func (g *genCtx) genExpr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *Lit:
		switch ex.Kind {
		case INTLIT:
			g.a.pushInt(int32(ex.Int))
		case LONGLIT:
			g.a.pushLong(ex.Int)
		case FLOATLIT:
			g.a.pushFloat(float32(ex.F))
		case DOUBLELIT:
			g.a.pushDouble(ex.F)
		case CHARLIT:
			g.a.pushInt(int32(ex.Int))
		case STRINGLIT:
			g.a.ldc(g.a.pool.String(ex.Str), 1)
		case KEYWORD:
			switch ex.Text {
			case "true":
				g.a.op(classfile.OpIconst1, 1)
			case "false":
				g.a.op(classfile.OpIconst0, 1)
			case "null":
				g.a.op(classfile.OpAconstNull, 1)
			}
		}
		return ex.T, nil

	case *This:
		g.a.op(classfile.OpAload0, 1)
		return ex.T, nil

	case *Ident:
		switch {
		case ex.Local != nil:
			g.a.loadLocal(ex.Local.Type, ex.Local.Slot)
		case ex.Field != nil:
			g.genFieldLoad(ex.Field, true)
		default:
			return nil, errf(ex.Pos_, "unresolved identifier %s in codegen", ex.Name)
		}
		return ex.T, nil

	case *Unary:
		return g.genUnary(ex)

	case *Binary:
		return g.genBinary(ex)

	case *Ternary:
		elseL := g.a.newLabel()
		endL := g.a.newLabel()
		if _, err := g.genExpr(ex.Cond); err != nil {
			return nil, err
		}
		g.a.branch(classfile.OpIfeq, elseL, -1)
		at, err := g.genExpr(ex.A)
		if err != nil {
			return nil, err
		}
		g.convert(at, ex.T)
		g.a.branch(classfile.OpGoto, endL, 0)
		g.a.bind(elseL)
		bt, err := g.genExpr(ex.B)
		if err != nil {
			return nil, err
		}
		g.convert(bt, ex.T)
		g.a.bind(endL)
		return ex.T, nil

	case *Assign:
		if err := g.genAssign(ex, true); err != nil {
			return nil, err
		}
		return ex.T, nil

	case *Call:
		return g.genCall(ex)

	case *FieldAccess:
		if ex.IsArrayLen {
			if _, err := g.genExpr(ex.Recv); err != nil {
				return nil, err
			}
			g.a.op(classfile.OpArraylength, 0)
			return TInt, nil
		}
		if ex.Sym.Static {
			// Evaluate a value receiver for effect, if any.
			if ex.Recv != nil && ex.StaticCls == nil {
				if err := g.genExprStmt(ex.Recv); err != nil {
					return nil, err
				}
			}
			g.genFieldLoad(ex.Sym, false)
			return ex.T, nil
		}
		if _, err := g.genExpr(ex.Recv); err != nil {
			return nil, err
		}
		idx := g.a.pool.FieldRef(ex.Sym.Owner.Name, ex.Sym.Name, ex.Sym.Type.Desc())
		g.a.opU16(classfile.OpGetfield, idx, -1+slotWidth(ex.Sym.Type))
		return ex.T, nil

	case *Index:
		if _, err := g.genExpr(ex.Arr); err != nil {
			return nil, err
		}
		it, err := g.genExpr(ex.I)
		if err != nil {
			return nil, err
		}
		g.convert(it, TInt)
		g.a.op(arrayLoadOp(ex.T), -2+slotWidth(ex.T))
		return ex.T, nil

	case *New:
		idx := g.a.pool.Class(ex.T.Cls.Name)
		g.a.opU16(classfile.OpNew, idx, 1)
		g.a.op(classfile.OpDup, 1)
		argSlots, err := g.genArgs(ex.Args, ex.Ctor.Params)
		if err != nil {
			return nil, err
		}
		mref := g.a.pool.MethodRef(ex.T.Cls.Name, "<init>", ex.Ctor.Descriptor())
		g.a.opU16(classfile.OpInvokespecial, mref, -1-argSlots)
		return ex.T, nil

	case *NewArray:
		return g.genNewArray(ex)

	case *Cast:
		et, err := g.genExpr(ex.E)
		if err != nil {
			return nil, err
		}
		if ex.T.IsRef() {
			if et.Kind != KNull && !ex.T.Equal(et) && convertCost(et, ex.T) < 0 {
				// Downcast: runtime check.
				g.a.opU16(classfile.OpCheckcast, g.a.pool.Class(refName(ex.T)), 0)
			}
			return ex.T, nil
		}
		g.convert(et, ex.T)
		return ex.T, nil

	case *InstanceOf:
		if _, err := g.genExpr(ex.E); err != nil {
			return nil, err
		}
		g.a.opU16(classfile.OpInstanceof, g.a.pool.Class(ex.Cls.Name), 0)
		return TBool, nil
	}
	return nil, errf(e.pos(), "unhandled expression in codegen: %T", e)
}

func (g *genCtx) genExpr2(e Expr) error {
	_, err := g.genExpr(e)
	return err
}

// refName returns the class-constant name for a reference type
// (array types use their descriptor form).
func refName(t *Type) string {
	if t.Kind == KArray {
		return t.Desc()
	}
	return t.Cls.Name
}

func (g *genCtx) genFieldLoad(f *FieldSym, implicitThis bool) {
	idx := g.a.pool.FieldRef(f.Owner.Name, f.Name, f.Type.Desc())
	if f.Static {
		g.a.opU16(classfile.OpGetstatic, idx, slotWidth(f.Type))
		return
	}
	g.a.op(classfile.OpAload0, 1)
	g.a.opU16(classfile.OpGetfield, idx, -1+slotWidth(f.Type))
}

// genArgs evaluates call arguments with conversions, returning the
// total argument slot count.
func (g *genCtx) genArgs(args []Expr, params []*Type) (int, error) {
	slots := 0
	for i, arg := range args {
		t, err := g.genExpr(arg)
		if err != nil {
			return 0, err
		}
		g.convert(t, params[i])
		slots += slotWidth(params[i])
	}
	return slots, nil
}

func (g *genCtx) genCall(ex *Call) (*Type, error) {
	sym := ex.Sym
	// this()/super() constructor delegation.
	if ex.Name == "<init>" {
		g.a.op(classfile.OpAload0, 1)
		argSlots, err := g.genArgs(ex.Args, sym.Params)
		if err != nil {
			return nil, err
		}
		mref := g.a.pool.MethodRef(sym.Owner.Name, "<init>", sym.Descriptor())
		g.a.opU16(classfile.OpInvokespecial, mref, -1-argSlots)
		return TVoid, nil
	}
	retSlots := slotWidth(sym.Ret)
	if sym.Ret == TVoid {
		retSlots = 0
	}
	if sym.Static {
		// A value receiver (rare: expr.staticMethod()) still evaluates.
		if ex.Recv != nil && ex.StaticCls == nil {
			if err := g.genExprStmt(ex.Recv); err != nil {
				return nil, err
			}
		}
		argSlots, err := g.genArgs(ex.Args, sym.Params)
		if err != nil {
			return nil, err
		}
		mref := g.a.pool.MethodRef(sym.Owner.Name, sym.Name, sym.Descriptor())
		g.a.opU16(classfile.OpInvokestatic, mref, -argSlots+retSlots)
		return sym.Ret, nil
	}
	// Instance call: receiver first.
	if ex.Recv != nil {
		if _, err := g.genExpr(ex.Recv); err != nil {
			return nil, err
		}
	} else {
		g.a.op(classfile.OpAload0, 1)
	}
	argSlots, err := g.genArgs(ex.Args, sym.Params)
	if err != nil {
		return nil, err
	}
	delta := -1 - argSlots + retSlots
	switch {
	case ex.Super:
		mref := g.a.pool.MethodRef(sym.Owner.Name, sym.Name, sym.Descriptor())
		g.a.opU16(classfile.OpInvokespecial, mref, delta)
	case sym.Owner.IsInterface:
		mref := g.a.pool.InterfaceMethodRef(sym.Owner.Name, sym.Name, sym.Descriptor())
		g.a.code = append(g.a.code, classfile.OpInvokeinterface,
			byte(mref>>8), byte(mref), byte(1+argSlots), 0)
		g.a.adj(delta)
	default:
		mref := g.a.pool.MethodRef(sym.Owner.Name, sym.Name, sym.Descriptor())
		g.a.opU16(classfile.OpInvokevirtual, mref, delta)
	}
	return sym.Ret, nil
}

func (g *genCtx) genNewArray(ex *NewArray) (*Type, error) {
	for _, d := range ex.DimExprs {
		dt, err := g.genExpr(d)
		if err != nil {
			return nil, err
		}
		g.convert(dt, TInt)
	}
	totalDims := len(ex.DimExprs) + ex.ExtraDims
	elem := ex.T
	for i := 0; i < totalDims; i++ {
		elem = elem.Elem
	}
	switch {
	case totalDims == 1 && !elem.IsRef():
		g.a.opU8(classfile.OpNewarray, newarrayCode(elem), 0)
	case totalDims == 1:
		g.a.opU16(classfile.OpAnewarray, g.a.pool.Class(refName(elem)), 0)
	default:
		idx := g.a.pool.Class(ex.T.Desc())
		dims := byte(len(ex.DimExprs))
		g.a.code = append(g.a.code, classfile.OpMultianewarray,
			byte(idx>>8), byte(idx), dims)
		g.a.adj(1 - len(ex.DimExprs))
	}
	return ex.T, nil
}

func newarrayCode(t *Type) byte {
	switch t.Kind {
	case KBool:
		return 4
	case KChar:
		return 5
	case KFloat:
		return 6
	case KDouble:
		return 7
	case KByte:
		return 8
	case KShort:
		return 9
	case KInt:
		return 10
	case KLong:
		return 11
	}
	return 10
}

func arrayLoadOp(elem *Type) byte {
	switch elem.Kind {
	case KLong:
		return classfile.OpLaload
	case KFloat:
		return classfile.OpFaload
	case KDouble:
		return classfile.OpDaload
	case KRef, KArray, KNull:
		return classfile.OpAaload
	case KByte, KBool:
		return classfile.OpBaload
	case KChar:
		return classfile.OpCaload
	case KShort:
		return classfile.OpSaload
	default:
		return classfile.OpIaload
	}
}

func arrayStoreOp(elem *Type) byte {
	switch elem.Kind {
	case KLong:
		return classfile.OpLastore
	case KFloat:
		return classfile.OpFastore
	case KDouble:
		return classfile.OpDastore
	case KRef, KArray, KNull:
		return classfile.OpAastore
	case KByte, KBool:
		return classfile.OpBastore
	case KChar:
		return classfile.OpCastore
	case KShort:
		return classfile.OpSastore
	default:
		return classfile.OpIastore
	}
}

// convert emits the conversion from static type `from` to `to`.
func (g *genCtx) convert(from, to *Type) {
	if from.Equal(to) || to == TVoid || from.IsRef() || to.IsRef() {
		return
	}
	// Normalize the small int types: on the stack they are ints.
	fk := from.Kind
	if fk == KByte || fk == KShort || fk == KChar || fk == KBool {
		fk = KInt
	}
	switch fk {
	case KInt:
		switch to.Kind {
		case KInt, KBool:
		case KByte:
			g.a.op(classfile.OpI2b, 0)
		case KChar:
			g.a.op(classfile.OpI2c, 0)
		case KShort:
			g.a.op(classfile.OpI2s, 0)
		case KLong:
			g.a.op(classfile.OpI2l, 1)
		case KFloat:
			g.a.op(classfile.OpI2f, 0)
		case KDouble:
			g.a.op(classfile.OpI2d, 1)
		}
	case KLong:
		switch to.Kind {
		case KLong:
		case KInt:
			g.a.op(classfile.OpL2i, -1)
		case KByte:
			g.a.op(classfile.OpL2i, -1)
			g.a.op(classfile.OpI2b, 0)
		case KChar:
			g.a.op(classfile.OpL2i, -1)
			g.a.op(classfile.OpI2c, 0)
		case KShort:
			g.a.op(classfile.OpL2i, -1)
			g.a.op(classfile.OpI2s, 0)
		case KFloat:
			g.a.op(classfile.OpL2f, -1)
		case KDouble:
			g.a.op(classfile.OpL2d, 0)
		}
	case KFloat:
		switch to.Kind {
		case KFloat:
		case KInt:
			g.a.op(classfile.OpF2i, 0)
		case KByte:
			g.a.op(classfile.OpF2i, 0)
			g.a.op(classfile.OpI2b, 0)
		case KChar:
			g.a.op(classfile.OpF2i, 0)
			g.a.op(classfile.OpI2c, 0)
		case KShort:
			g.a.op(classfile.OpF2i, 0)
			g.a.op(classfile.OpI2s, 0)
		case KLong:
			g.a.op(classfile.OpF2l, 1)
		case KDouble:
			g.a.op(classfile.OpF2d, 1)
		}
	case KDouble:
		switch to.Kind {
		case KDouble:
		case KInt:
			g.a.op(classfile.OpD2i, -1)
		case KByte:
			g.a.op(classfile.OpD2i, -1)
			g.a.op(classfile.OpI2b, 0)
		case KChar:
			g.a.op(classfile.OpD2i, -1)
			g.a.op(classfile.OpI2c, 0)
		case KShort:
			g.a.op(classfile.OpD2i, -1)
			g.a.op(classfile.OpI2s, 0)
		case KLong:
			g.a.op(classfile.OpD2l, 0)
		case KFloat:
			g.a.op(classfile.OpD2f, -1)
		}
	}
}

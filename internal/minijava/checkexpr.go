package minijava

import "strings"

// checkExpr types an expression, annotating the node, and returns its
// type.
func (c *bodyCtx) checkExpr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *Lit:
		switch ex.Kind {
		case INTLIT:
			ex.T = TInt
		case LONGLIT:
			ex.T = TLong
		case FLOATLIT:
			ex.T = TFloat
		case DOUBLELIT:
			ex.T = TDouble
		case CHARLIT:
			ex.T = TChar
		case STRINGLIT:
			str := c.prog.Classes["java/lang/String"]
			if str == nil {
				return nil, errf(ex.Pos_, "compile set lacks java/lang/String")
			}
			ex.T = str.Type()
		case KEYWORD:
			switch ex.Text {
			case "true", "false":
				ex.T = TBool
			case "null":
				ex.T = TNull
			}
		}
		return ex.T, nil

	case *This:
		if c.method.Static {
			return nil, errf(ex.Pos_, "this in static context")
		}
		ex.T = c.cls.Type()
		return ex.T, nil

	case *Ident:
		if li := c.lookupLocal(ex.Name); li != nil {
			ex.Local = li
			ex.T = li.Type
			return ex.T, nil
		}
		if f := lookupField(c.cls, ex.Name); f != nil {
			if !f.Static && c.method.Static {
				return nil, errf(ex.Pos_, "instance field %s in static context", ex.Name)
			}
			ex.Field = f
			ex.T = f.Type
			return ex.T, nil
		}
		return nil, errf(ex.Pos_, "undefined name %s", ex.Name)

	case *Unary:
		return c.checkUnary(ex)

	case *Binary:
		return c.checkBinary(ex)

	case *Ternary:
		if err := c.checkCond(ex.Cond); err != nil {
			return nil, err
		}
		at, err := c.checkExpr(ex.A)
		if err != nil {
			return nil, err
		}
		bt, err := c.checkExpr(ex.B)
		if err != nil {
			return nil, err
		}
		switch {
		case at.Equal(bt):
			ex.T = at
		case at.IsNumeric() && bt.IsNumeric():
			ex.T = promote(at, bt)
		case at.IsRef() && bt.IsRef():
			switch {
			case convertCost(at, bt) >= 0:
				ex.T = bt
			case convertCost(bt, at) >= 0:
				ex.T = at
			default:
				ex.T = c.prog.Classes["java/lang/Object"].Type()
			}
		default:
			return nil, errf(ex.Pos_, "incompatible ternary arms: %s and %s", at, bt)
		}
		return ex.T, nil

	case *Assign:
		return c.checkAssign(ex)

	case *Call:
		return c.checkCall(ex)

	case *FieldAccess:
		return c.checkFieldAccess(ex)

	case *Index:
		at, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, err
		}
		if at.Kind != KArray {
			return nil, errf(ex.Pos_, "indexing non-array type %s", at)
		}
		it, err := c.checkExpr(ex.I)
		if err != nil {
			return nil, err
		}
		if convertCost(it, TInt) < 0 {
			return nil, errf(ex.Pos_, "array index must be int, got %s", it)
		}
		ex.T = at.Elem
		return ex.T, nil

	case *New:
		t, err := c.prog.resolveType(c.cls, ex.Type)
		if err != nil {
			return nil, err
		}
		if t.Kind != KRef {
			return nil, errf(ex.Pos_, "cannot instantiate %s", t)
		}
		if t.Cls.IsInterface || t.Cls.IsAbstract {
			return nil, errf(ex.Pos_, "cannot instantiate abstract %s", t.Cls.Name)
		}
		args, err := c.checkArgs(ex.Args)
		if err != nil {
			return nil, err
		}
		var ctors []*MethodSym
		for _, m := range t.Cls.Methods {
			if m.Name == "<init>" {
				ctors = append(ctors, m)
			}
		}
		ctor, err := resolveOverload(ex.Pos_, ctors, args, false)
		if err != nil {
			return nil, err
		}
		ex.Ctor = ctor
		ex.T = t
		return t, nil

	case *NewArray:
		elem, err := c.prog.resolveType(c.cls, ex.Elem)
		if err != nil {
			return nil, err
		}
		if elem == TVoid {
			return nil, errf(ex.Pos_, "array of void")
		}
		for _, d := range ex.DimExprs {
			dt, err := c.checkExpr(d)
			if err != nil {
				return nil, err
			}
			if convertCost(dt, TInt) < 0 {
				return nil, errf(ex.Pos_, "array dimension must be int, got %s", dt)
			}
		}
		t := elem
		for i := 0; i < len(ex.DimExprs)+ex.ExtraDims; i++ {
			t = ArrayOf(t)
		}
		ex.T = t
		return t, nil

	case *Cast:
		t, err := c.prog.resolveType(c.cls, ex.Type)
		if err != nil {
			return nil, err
		}
		et, err := c.checkExpr(ex.E)
		if err != nil {
			return nil, err
		}
		if !castAllowed(et, t) {
			return nil, errf(ex.Pos_, "cannot cast %s to %s", et, t)
		}
		ex.T = t
		return t, nil

	case *InstanceOf:
		et, err := c.checkExpr(ex.E)
		if err != nil {
			return nil, err
		}
		if !et.IsRef() {
			return nil, errf(ex.Pos_, "instanceof on non-reference %s", et)
		}
		t, err := c.prog.resolveType(c.cls, ex.Type)
		if err != nil {
			return nil, err
		}
		if t.Kind != KRef {
			return nil, errf(ex.Pos_, "instanceof against non-class type %s", t)
		}
		ex.Cls = t.Cls
		ex.T = TBool
		return TBool, nil
	}
	return nil, errf(e.pos(), "unhandled expression %T", e)
}

func (c *bodyCtx) checkArgs(args []Expr) ([]*Type, error) {
	out := make([]*Type, len(args))
	for i, a := range args {
		t, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

func (c *bodyCtx) checkUnary(ex *Unary) (*Type, error) {
	t, err := c.checkExpr(ex.E)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "!":
		if t != TBool {
			return nil, errf(ex.Pos_, "! on non-boolean %s", t)
		}
		ex.T = TBool
	case "~":
		if !t.IsIntegral() {
			return nil, errf(ex.Pos_, "~ on non-integral %s", t)
		}
		ex.T = promote(t, TInt)
	case "-":
		if !t.IsNumeric() {
			return nil, errf(ex.Pos_, "- on non-numeric %s", t)
		}
		ex.T = promote(t, TInt)
	case "++", "--":
		if !t.IsNumeric() {
			return nil, errf(ex.Pos_, "%s on non-numeric %s", ex.Op, t)
		}
		if !isLValue(ex.E) {
			return nil, errf(ex.Pos_, "%s on non-assignable expression", ex.Op)
		}
		ex.T = t
	default:
		return nil, errf(ex.Pos_, "unknown unary operator %s", ex.Op)
	}
	return ex.T, nil
}

func isLValue(e Expr) bool {
	switch ex := e.(type) {
	case *Ident:
		return true
	case *FieldAccess:
		return !ex.IsArrayLen
	case *Index:
		return true
	}
	return false
}

func (c *bodyCtx) stringType() *Type {
	return c.prog.Classes["java/lang/String"].Type()
}

func (c *bodyCtx) isString(t *Type) bool {
	return t.Kind == KRef && t.Cls.Name == "java/lang/String"
}

func (c *bodyCtx) checkBinary(ex *Binary) (*Type, error) {
	lt, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "&&", "||":
		if lt != TBool || rt != TBool {
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		ex.T = TBool
	case "+":
		if c.isString(lt) || c.isString(rt) {
			ex.IsConcat = true
			ex.T = c.stringType()
			break
		}
		fallthrough
	case "-", "*", "/", "%":
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		ex.T = promote(lt, rt)
	case "&", "|", "^":
		if lt == TBool && rt == TBool {
			ex.T = TBool
			break
		}
		if !lt.IsIntegral() || !rt.IsIntegral() {
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		ex.T = promote(lt, rt)
	case "<<", ">>", ">>>":
		if !lt.IsIntegral() || !rt.IsIntegral() {
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		// Shift result type comes from the left operand only.
		ex.T = promote(lt, TInt)
	case "<", "<=", ">", ">=":
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		ex.T = TBool
	case "==", "!=":
		switch {
		case lt.IsNumeric() && rt.IsNumeric():
		case lt == TBool && rt == TBool:
		case lt.IsRef() && rt.IsRef():
		default:
			return nil, errf(ex.Pos_, "%s on %s and %s", ex.Op, lt, rt)
		}
		ex.T = TBool
	default:
		return nil, errf(ex.Pos_, "unknown binary operator %s", ex.Op)
	}
	return ex.T, nil
}

func (c *bodyCtx) checkAssign(ex *Assign) (*Type, error) {
	lt, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	if !isLValue(ex.L) {
		return nil, errf(ex.Pos_, "assignment to non-assignable expression")
	}
	if fa, ok := ex.L.(*FieldAccess); ok && fa.Sym != nil && fa.Sym.Final && c.method.Name != "<init>" && c.method.Name != "<clinit>" && c.method.Name != "<fieldinit>" {
		// Final fields may only be written in initializers; library
		// code relies on this being permissive inside constructors.
		if fa.Sym.Owner != c.cls {
			return nil, errf(ex.Pos_, "assignment to final field %s", fa.Name)
		}
	}
	rt, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	if ex.Op == "=" {
		if err := c.requireAssignable(ex.Pos_, rt, lt, ex.R); err != nil {
			return nil, err
		}
		ex.T = lt
		return lt, nil
	}
	// Compound assignment: the binary op must apply, and the result is
	// implicitly narrowed back to the LHS type.
	op := strings.TrimSuffix(ex.Op, "=")
	if op == "+" && c.isString(lt) {
		ex.T = lt
		return lt, nil
	}
	tmp := &Binary{Pos_: ex.Pos_, Op: op, L: ex.L, R: ex.R}
	if _, err := c.checkBinary(tmp); err != nil {
		return nil, err
	}
	ex.T = lt
	return lt, nil
}

// resolveQualifier classifies a receiver expression as a value, a
// class reference (static access), or a package prefix.
func (c *bodyCtx) resolveQualifier(e Expr) (valT *Type, cls *ClassSym, pkg string, err error) {
	switch ex := e.(type) {
	case *Ident:
		if li := c.lookupLocal(ex.Name); li != nil {
			ex.Local = li
			ex.T = li.Type
			return li.Type, nil, "", nil
		}
		if f := lookupField(c.cls, ex.Name); f != nil {
			if !f.Static && c.method.Static {
				return nil, nil, "", errf(ex.Pos_, "instance field %s in static context", ex.Name)
			}
			ex.Field = f
			ex.T = f.Type
			return f.Type, nil, "", nil
		}
		if cs, cerr := c.prog.resolveClassName(c.cls, ex.Name, ex.Pos_); cerr == nil {
			ex.Cls = cs
			return nil, cs, "", nil
		}
		return nil, nil, ex.Name, nil
	case *FieldAccess:
		vt, cs, prefix, err := c.resolveQualifier(ex.Recv)
		if err != nil {
			return nil, nil, "", err
		}
		switch {
		case prefix != "":
			full := prefix + "." + ex.Name
			if cs, cerr := c.prog.resolveClassName(c.cls, full, ex.Pos_); cerr == nil {
				return nil, cs, "", nil
			}
			return nil, nil, full, nil
		case cs != nil:
			f := lookupField(cs, ex.Name)
			if f == nil || !f.Static {
				return nil, nil, "", errf(ex.Pos_, "no static field %s in %s", ex.Name, cs.Name)
			}
			ex.Sym = f
			ex.StaticCls = cs
			ex.T = f.Type
			return f.Type, nil, "", nil
		default:
			t, err := c.finishFieldAccess(ex, vt)
			return t, nil, "", err
		}
	default:
		t, err := c.checkExpr(e)
		return t, nil, "", err
	}
}

func (c *bodyCtx) finishFieldAccess(ex *FieldAccess, recvT *Type) (*Type, error) {
	if recvT.Kind == KArray {
		if ex.Name != "length" {
			return nil, errf(ex.Pos_, "arrays have no field %s", ex.Name)
		}
		ex.IsArrayLen = true
		ex.T = TInt
		return TInt, nil
	}
	if recvT.Kind != KRef {
		return nil, errf(ex.Pos_, "field access on non-reference %s", recvT)
	}
	f := lookupField(recvT.Cls, ex.Name)
	if f == nil {
		return nil, errf(ex.Pos_, "no field %s in %s", ex.Name, recvT.Cls.Name)
	}
	ex.Sym = f
	ex.T = f.Type
	return f.Type, nil
}

func (c *bodyCtx) checkFieldAccess(ex *FieldAccess) (*Type, error) {
	vt, cls, pkg, err := c.resolveQualifier(ex.Recv)
	if err != nil {
		return nil, err
	}
	switch {
	case pkg != "":
		full := pkg + "." + ex.Name
		return nil, errf(ex.Pos_, "undefined name %s", full)
	case cls != nil:
		f := lookupField(cls, ex.Name)
		if f == nil || !f.Static {
			return nil, errf(ex.Pos_, "no static field %s in %s", ex.Name, cls.Name)
		}
		ex.Sym = f
		ex.StaticCls = cls
		ex.T = f.Type
		return f.Type, nil
	default:
		return c.finishFieldAccess(ex, vt)
	}
}

func (c *bodyCtx) checkCall(ex *Call) (*Type, error) {
	args, err := c.checkArgs(ex.Args)
	if err != nil {
		return nil, err
	}
	// this(...) / super(...) constructor calls.
	if ex.Name == "<init>" {
		if c.method.Name != "<init>" {
			return nil, errf(ex.Pos_, "constructor call outside constructor")
		}
		target := c.cls
		if ex.Super {
			target = c.cls.Super
			if target == nil {
				return nil, errf(ex.Pos_, "super() in class without superclass")
			}
		}
		var ctors []*MethodSym
		for _, m := range target.Methods {
			if m.Name == "<init>" {
				ctors = append(ctors, m)
			}
		}
		sym, err := resolveOverload(ex.Pos_, ctors, args, false)
		if err != nil {
			return nil, err
		}
		ex.Sym = sym
		ex.T = TVoid
		return TVoid, nil
	}
	if ex.Super {
		if c.method.Static {
			return nil, errf(ex.Pos_, "super call in static context")
		}
		if c.cls.Super == nil {
			return nil, errf(ex.Pos_, "super call in class without superclass")
		}
		sym, err := resolveOverload(ex.Pos_, methodsNamed(c.cls.Super, ex.Name), args, false)
		if err != nil {
			return nil, err
		}
		ex.Sym = sym
		ex.T = sym.Ret
		return sym.Ret, nil
	}
	if ex.Recv == nil {
		// Unqualified call: current class (static or instance).
		sym, err := resolveOverload(ex.Pos_, methodsNamed(c.cls, ex.Name), args, false)
		if err != nil {
			return nil, err
		}
		if !sym.Static && c.method.Static {
			return nil, errf(ex.Pos_, "instance method %s called from static context", ex.Name)
		}
		ex.Sym = sym
		ex.T = sym.Ret
		return sym.Ret, nil
	}
	vt, cls, pkg, err := c.resolveQualifier(ex.Recv)
	if err != nil {
		return nil, err
	}
	switch {
	case pkg != "":
		return nil, errf(ex.Pos_, "undefined name %s", pkg)
	case cls != nil:
		sym, err := resolveOverload(ex.Pos_, methodsNamed(cls, ex.Name), args, true)
		if err != nil {
			return nil, err
		}
		if !sym.Static {
			return nil, errf(ex.Pos_, "instance method %s.%s accessed statically", cls.Name, ex.Name)
		}
		ex.Sym = sym
		ex.StaticCls = cls
		ex.T = sym.Ret
		return sym.Ret, nil
	default:
		recvCls := (*ClassSym)(nil)
		switch vt.Kind {
		case KRef:
			recvCls = vt.Cls
		case KArray:
			recvCls = c.prog.Classes["java/lang/Object"]
		default:
			return nil, errf(ex.Pos_, "method call on non-reference %s", vt)
		}
		sym, err := resolveOverload(ex.Pos_, methodsNamed(recvCls, ex.Name), args, false)
		if err != nil {
			return nil, err
		}
		ex.Sym = sym
		ex.T = sym.Ret
		return sym.Ret, nil
	}
}

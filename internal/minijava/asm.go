package minijava

import (
	"fmt"

	"doppio/internal/classfile"
)

// label is a branch target being assembled.
type label struct {
	pc      int // -1 until bound
	stackAt int // operand stack depth at the target, -1 unknown
}

// fixup records a branch operand awaiting a label's pc.
type fixup struct {
	at    int // offset of the 2-byte operand
	opcPC int // pc of the owning opcode (branch offsets are relative)
	l     *label
	wide  bool // 4-byte operand (switch entries)
}

// asm assembles one method body.
type asm struct {
	pool   *classfile.PoolBuilder
	code   []byte
	fixups []fixup

	stack    int // current operand depth; -1 = unreachable
	maxStack int

	excs []classfile.ExceptionEntry
}

func newAsm(pool *classfile.PoolBuilder) *asm {
	return &asm{pool: pool}
}

func (a *asm) pc() int { return len(a.code) }

func (a *asm) newLabel() *label { return &label{pc: -1, stackAt: -1} }

// adj adjusts the tracked stack depth by delta.
func (a *asm) adj(delta int) {
	if a.stack < 0 {
		return
	}
	a.stack += delta
	if a.stack > a.maxStack {
		a.maxStack = a.stack
	}
	if a.stack < 0 {
		panic(fmt.Sprintf("minijava: operand stack underflow at pc %d", a.pc()))
	}
}

// op emits a plain opcode with the given stack delta.
func (a *asm) op(opcode byte, delta int) {
	a.code = append(a.code, opcode)
	a.adj(delta)
}

// opU8 emits opcode + one operand byte.
func (a *asm) opU8(opcode, operand byte, delta int) {
	a.code = append(a.code, opcode, operand)
	a.adj(delta)
}

// opU16 emits opcode + a 2-byte operand.
func (a *asm) opU16(opcode byte, operand uint16, delta int) {
	a.code = append(a.code, opcode, byte(operand>>8), byte(operand))
	a.adj(delta)
}

// branch emits a 2-byte-offset branch to l; delta is the stack effect
// of the branch instruction itself (e.g. -1 for ifeq).
func (a *asm) branch(opcode byte, l *label, delta int) {
	opc := a.pc()
	a.code = append(a.code, opcode, 0, 0)
	a.adj(delta)
	a.noteStack(l)
	a.fixups = append(a.fixups, fixup{at: opc + 1, opcPC: opc, l: l})
	if opcode == classfile.OpGoto {
		a.stack = -1 // following code unreachable until a label binds
	}
}

func (a *asm) noteStack(l *label) {
	if a.stack >= 0 {
		if l.stackAt >= 0 && l.stackAt != a.stack {
			// Merge conservatively: keep the larger depth for maxStack
			// purposes; real verification is out of scope.
			if a.stack > l.stackAt {
				l.stackAt = a.stack
			}
			return
		}
		l.stackAt = a.stack
	}
}

// bind places l at the current pc.
func (a *asm) bind(l *label) {
	if l.pc >= 0 {
		panic("minijava: label bound twice")
	}
	l.pc = a.pc()
	if a.stack < 0 {
		a.stack = l.stackAt
		if a.stack < 0 {
			a.stack = 0
		}
	} else {
		a.noteStack(l)
	}
	if a.stack > a.maxStack {
		a.maxStack = a.stack
	}
}

// bindHandler places l at the current pc as an exception handler
// (stack = the thrown exception only).
func (a *asm) bindHandler(l *label) {
	if l.pc >= 0 {
		panic("minijava: label bound twice")
	}
	l.pc = a.pc()
	a.stack = 1
	if a.stack > a.maxStack {
		a.maxStack = a.stack
	}
}

// deadEnd marks the following code unreachable (after return/athrow).
func (a *asm) deadEnd() { a.stack = -1 }

// exception records an exception-table row using labels.
func (a *asm) exception(start, end, handler *label, catchType uint16) {
	a.excs = append(a.excs, classfile.ExceptionEntry{
		StartPC:   uint16(start.pc),
		EndPC:     uint16(end.pc),
		HandlerPC: uint16(handler.pc),
		CatchType: catchType,
	})
}

// tableswitch emits a tableswitch; targets[i] handles low+i.
func (a *asm) tableswitch(low, high int32, def *label, targets []*label) {
	opc := a.pc()
	a.code = append(a.code, classfile.OpTableswitch)
	for a.pc()%4 != 0 {
		a.code = append(a.code, 0)
	}
	a.adj(-1)
	put := func(l *label) {
		a.noteStack(l)
		a.fixups = append(a.fixups, fixup{at: a.pc(), opcPC: opc, l: l, wide: true})
		a.code = append(a.code, 0, 0, 0, 0)
	}
	put(def)
	a.code = append(a.code, byte(low>>24), byte(low>>16), byte(low>>8), byte(low))
	a.code = append(a.code, byte(high>>24), byte(high>>16), byte(high>>8), byte(high))
	for _, t := range targets {
		put(t)
	}
	a.stack = -1
}

// lookupswitch emits a lookupswitch; pairs must be sorted by key.
func (a *asm) lookupswitch(def *label, keys []int32, targets []*label) {
	opc := a.pc()
	a.code = append(a.code, classfile.OpLookupswitch)
	for a.pc()%4 != 0 {
		a.code = append(a.code, 0)
	}
	a.adj(-1)
	put := func(l *label) {
		a.noteStack(l)
		a.fixups = append(a.fixups, fixup{at: a.pc(), opcPC: opc, l: l, wide: true})
		a.code = append(a.code, 0, 0, 0, 0)
	}
	put(def)
	n := int32(len(keys))
	a.code = append(a.code, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	for i, k := range keys {
		a.code = append(a.code, byte(k>>24), byte(k>>16), byte(k>>8), byte(k))
		put(targets[i])
	}
	a.stack = -1
}

// finish patches all branch fixups and returns the Code attribute.
func (a *asm) finish(maxLocals int) (*classfile.Code, error) {
	for _, f := range a.fixups {
		if f.l.pc < 0 {
			return nil, fmt.Errorf("minijava: unbound label")
		}
		off := f.l.pc - f.opcPC
		if f.wide {
			a.code[f.at] = byte(off >> 24)
			a.code[f.at+1] = byte(off >> 16)
			a.code[f.at+2] = byte(off >> 8)
			a.code[f.at+3] = byte(off)
			continue
		}
		if off > 32767 || off < -32768 {
			return nil, fmt.Errorf("minijava: branch offset %d exceeds 16 bits (method too large)", off)
		}
		a.code[f.at] = byte(off >> 8)
		a.code[f.at+1] = byte(off)
	}
	if len(a.code) > 65535 {
		return nil, fmt.Errorf("minijava: method body exceeds 64KB of bytecode")
	}
	return &classfile.Code{
		MaxStack:   uint16(a.maxStack + 2), // headroom for merge imprecision
		MaxLocals:  uint16(maxLocals),
		Bytecode:   a.code,
		Exceptions: a.excs,
	}, nil
}

// --- convenience emitters ---

// loadLocal emits the best load instruction for a slot of type t.
func (a *asm) loadLocal(t *Type, slot int) {
	var base, short0 byte
	delta := 1
	switch t.Kind {
	case KLong:
		base, short0, delta = classfile.OpLload, classfile.OpLload0, 2
	case KFloat:
		base, short0 = classfile.OpFload, classfile.OpFload0
	case KDouble:
		base, short0, delta = classfile.OpDload, classfile.OpDload0, 2
	case KRef, KArray, KNull:
		base, short0 = classfile.OpAload, classfile.OpAload0
	default:
		base, short0 = classfile.OpIload, classfile.OpIload0
	}
	switch {
	case slot < 4:
		a.op(short0+byte(slot), delta)
	case slot < 256:
		a.opU8(base, byte(slot), delta)
	default:
		a.code = append(a.code, classfile.OpWide, base, byte(slot>>8), byte(slot))
		a.adj(delta)
	}
}

// storeLocal emits the best store instruction for a slot of type t.
func (a *asm) storeLocal(t *Type, slot int) {
	var base, short0 byte
	delta := -1
	switch t.Kind {
	case KLong:
		base, short0, delta = classfile.OpLstore, classfile.OpLstore0, -2
	case KFloat:
		base, short0 = classfile.OpFstore, classfile.OpFstore0
	case KDouble:
		base, short0, delta = classfile.OpDstore, classfile.OpDstore0, -2
	case KRef, KArray, KNull:
		base, short0 = classfile.OpAstore, classfile.OpAstore0
	default:
		base, short0 = classfile.OpIstore, classfile.OpIstore0
	}
	switch {
	case slot < 4:
		a.op(short0+byte(slot), delta)
	case slot < 256:
		a.opU8(base, byte(slot), delta)
	default:
		a.code = append(a.code, classfile.OpWide, base, byte(slot>>8), byte(slot))
		a.adj(delta)
	}
}

// pushInt emits the smallest instruction producing the int constant v.
func (a *asm) pushInt(v int32) {
	switch {
	case v >= -1 && v <= 5:
		a.op(byte(classfile.OpIconst0+int(v)), 1)
	case v >= -128 && v <= 127:
		a.opU8(classfile.OpBipush, byte(v), 1)
	case v >= -32768 && v <= 32767:
		a.opU16(classfile.OpSipush, uint16(v), 1)
	default:
		a.ldc(a.pool.Int(v), 1)
	}
}

// ldc emits ldc or ldc_w for the pool index.
func (a *asm) ldc(idx uint16, delta int) {
	if idx < 256 {
		a.opU8(classfile.OpLdc, byte(idx), delta)
	} else {
		a.opU16(classfile.OpLdcW, idx, delta)
	}
}

// pushLong emits a long constant.
func (a *asm) pushLong(v int64) {
	switch v {
	case 0:
		a.op(classfile.OpLconst0, 2)
	case 1:
		a.op(classfile.OpLconst1, 2)
	default:
		a.opU16(classfile.OpLdc2W, a.pool.Long(v), 2)
	}
}

// pushFloat emits a float constant.
func (a *asm) pushFloat(v float32) {
	switch v {
	case 0:
		a.op(classfile.OpFconst0, 1)
	case 1:
		a.op(classfile.OpFconst1, 1)
	case 2:
		a.op(classfile.OpFconst2, 1)
	default:
		a.ldc(a.pool.Float(v), 1)
	}
}

// pushDouble emits a double constant.
func (a *asm) pushDouble(v float64) {
	switch v {
	case 0:
		a.op(classfile.OpDconst0, 2)
	case 1:
		a.op(classfile.OpDconst1, 2)
	default:
		a.opU16(classfile.OpLdc2W, a.pool.Double(v), 2)
	}
}

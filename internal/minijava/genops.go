package minijava

import "doppio/internal/classfile"

// arithmetic opcode families, indexed by promoted kind.
func arithOp(op string, k TypeKind) byte {
	var base byte
	switch op {
	case "+":
		base = classfile.OpIadd
	case "-":
		base = classfile.OpIsub
	case "*":
		base = classfile.OpImul
	case "/":
		base = classfile.OpIdiv
	case "%":
		base = classfile.OpIrem
	}
	switch k {
	case KLong:
		return base + 1
	case KFloat:
		return base + 2
	case KDouble:
		return base + 3
	default:
		return base
	}
}

func bitOp(op string, k TypeKind) byte {
	var base byte
	switch op {
	case "&":
		base = classfile.OpIand
	case "|":
		base = classfile.OpIor
	case "^":
		base = classfile.OpIxor
	}
	if k == KLong {
		return base + 1
	}
	return base
}

func shiftOp(op string, k TypeKind) byte {
	var base byte
	switch op {
	case "<<":
		base = classfile.OpIshl
	case ">>":
		base = classfile.OpIshr
	case ">>>":
		base = classfile.OpIushr
	}
	if k == KLong {
		return base + 1
	}
	return base
}

func (g *genCtx) genUnary(ex *Unary) (*Type, error) {
	switch ex.Op {
	case "++", "--":
		if err := g.genIncDec(ex, true); err != nil {
			return nil, err
		}
		return ex.T, nil
	case "!":
		// !x == x ^ 1 for 0/1 booleans.
		if _, err := g.genExpr(ex.E); err != nil {
			return nil, err
		}
		g.a.op(classfile.OpIconst1, 1)
		g.a.op(classfile.OpIxor, -1)
		return TBool, nil
	case "~":
		t, err := g.genExpr(ex.E)
		if err != nil {
			return nil, err
		}
		g.convert(t, ex.T)
		if ex.T.Kind == KLong {
			g.a.pushLong(-1)
			g.a.op(classfile.OpLxor, -2)
		} else {
			g.a.op(classfile.OpIconstM1, 1)
			g.a.op(classfile.OpIxor, -1)
		}
		return ex.T, nil
	case "-":
		t, err := g.genExpr(ex.E)
		if err != nil {
			return nil, err
		}
		g.convert(t, ex.T)
		switch ex.T.Kind {
		case KLong:
			g.a.op(classfile.OpLneg, 0)
		case KFloat:
			g.a.op(classfile.OpFneg, 0)
		case KDouble:
			g.a.op(classfile.OpDneg, 0)
		default:
			g.a.op(classfile.OpIneg, 0)
		}
		return ex.T, nil
	}
	return nil, errf(ex.Pos_, "unhandled unary %s in codegen", ex.Op)
}

func (g *genCtx) genBinary(ex *Binary) (*Type, error) {
	switch ex.Op {
	case "&&":
		end := g.a.newLabel()
		fal := g.a.newLabel()
		if _, err := g.genExpr(ex.L); err != nil {
			return nil, err
		}
		g.a.branch(classfile.OpIfeq, fal, -1)
		if _, err := g.genExpr(ex.R); err != nil {
			return nil, err
		}
		g.a.branch(classfile.OpGoto, end, 0)
		g.a.bind(fal)
		g.a.op(classfile.OpIconst0, 1)
		g.a.bind(end)
		return TBool, nil
	case "||":
		end := g.a.newLabel()
		tru := g.a.newLabel()
		if _, err := g.genExpr(ex.L); err != nil {
			return nil, err
		}
		g.a.branch(classfile.OpIfne, tru, -1)
		if _, err := g.genExpr(ex.R); err != nil {
			return nil, err
		}
		g.a.branch(classfile.OpGoto, end, 0)
		g.a.bind(tru)
		g.a.op(classfile.OpIconst1, 1)
		g.a.bind(end)
		return TBool, nil
	}
	if ex.IsConcat {
		return g.genConcat(ex)
	}
	lt, err := g.genExpr(ex.L)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "+", "-", "*", "/", "%":
		g.convert(lt, ex.T)
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return nil, err
		}
		g.convert(rt, ex.T)
		g.a.op(arithOp(ex.Op, ex.T.Kind), -slotWidth(ex.T))
		return ex.T, nil
	case "&", "|", "^":
		g.convert(lt, ex.T)
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return nil, err
		}
		g.convert(rt, ex.T)
		g.a.op(bitOp(ex.Op, ex.T.Kind), -slotWidth(ex.T))
		return ex.T, nil
	case "<<", ">>", ">>>":
		g.convert(lt, ex.T)
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return nil, err
		}
		g.convert(rt, TInt) // shift count is always int
		g.a.op(shiftOp(ex.Op, ex.T.Kind), -1)
		return ex.T, nil
	case "<", "<=", ">", ">=", "==", "!=":
		return g.genComparison(ex, lt)
	}
	return nil, errf(ex.Pos_, "unhandled binary %s in codegen", ex.Op)
}

// genComparison emits a comparison producing a 0/1 boolean. The left
// operand is already on the stack with type lt.
func (g *genCtx) genComparison(ex *Binary, lt *Type) (*Type, error) {
	rtStatic := exprType(ex.R)
	ltStatic := exprType(ex.L)

	// Reference comparison.
	if ltStatic.IsRef() {
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return nil, err
		}
		_ = rt
		tru := g.a.newLabel()
		end := g.a.newLabel()
		if ex.Op == "==" {
			g.a.branch(classfile.OpIfAcmpeq, tru, -2)
		} else {
			g.a.branch(classfile.OpIfAcmpne, tru, -2)
		}
		g.a.op(classfile.OpIconst0, 1)
		g.a.branch(classfile.OpGoto, end, 0)
		g.a.bind(tru)
		g.a.op(classfile.OpIconst1, 1)
		g.a.bind(end)
		return TBool, nil
	}

	// Boolean ==/!= compare as ints.
	cmpT := TInt
	if ltStatic.IsNumeric() && rtStatic.IsNumeric() {
		cmpT = promote(ltStatic, rtStatic)
	}
	g.convert(lt, cmpT)
	rt, err := g.genExpr(ex.R)
	if err != nil {
		return nil, err
	}
	g.convert(rt, cmpT)

	tru := g.a.newLabel()
	end := g.a.newLabel()
	if cmpT.Kind == KInt || cmpT == TBool {
		var opc byte
		switch ex.Op {
		case "==":
			opc = classfile.OpIfIcmpeq
		case "!=":
			opc = classfile.OpIfIcmpne
		case "<":
			opc = classfile.OpIfIcmplt
		case "<=":
			opc = classfile.OpIfIcmple
		case ">":
			opc = classfile.OpIfIcmpgt
		case ">=":
			opc = classfile.OpIfIcmpge
		}
		g.a.branch(opc, tru, -2)
	} else {
		switch cmpT.Kind {
		case KLong:
			g.a.op(classfile.OpLcmp, -3)
		case KFloat:
			if ex.Op == "<" || ex.Op == "<=" {
				g.a.op(classfile.OpFcmpg, -1)
			} else {
				g.a.op(classfile.OpFcmpl, -1)
			}
		case KDouble:
			if ex.Op == "<" || ex.Op == "<=" {
				g.a.op(classfile.OpDcmpg, -3)
			} else {
				g.a.op(classfile.OpDcmpl, -3)
			}
		}
		var opc byte
		switch ex.Op {
		case "==":
			opc = classfile.OpIfeq
		case "!=":
			opc = classfile.OpIfne
		case "<":
			opc = classfile.OpIflt
		case "<=":
			opc = classfile.OpIfle
		case ">":
			opc = classfile.OpIfgt
		case ">=":
			opc = classfile.OpIfge
		}
		g.a.branch(opc, tru, -1)
	}
	g.a.op(classfile.OpIconst0, 1)
	g.a.branch(classfile.OpGoto, end, 0)
	g.a.bind(tru)
	g.a.op(classfile.OpIconst1, 1)
	g.a.bind(end)
	return TBool, nil
}

// exprType reads the checker's type annotation.
func exprType(e Expr) *Type {
	switch ex := e.(type) {
	case *Lit:
		return ex.T
	case *Ident:
		return ex.T
	case *This:
		return ex.T
	case *Unary:
		return ex.T
	case *Binary:
		return ex.T
	case *Ternary:
		return ex.T
	case *Assign:
		return ex.T
	case *Call:
		return ex.T
	case *FieldAccess:
		return ex.T
	case *Index:
		return ex.T
	case *New:
		return ex.T
	case *NewArray:
		return ex.T
	case *Cast:
		return ex.T
	case *InstanceOf:
		return ex.T
	}
	return nil
}

// genConcat compiles string concatenation by flattening the +-chain
// into one StringBuilder append sequence, as javac does.
func (g *genCtx) genConcat(ex *Binary) (*Type, error) {
	var operands []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.IsConcat {
			flatten(b.L)
			flatten(b.R)
			return
		}
		operands = append(operands, e)
	}
	flatten(ex)

	sb := "java/lang/StringBuilder"
	g.a.opU16(classfile.OpNew, g.a.pool.Class(sb), 1)
	g.a.op(classfile.OpDup, 1)
	g.a.opU16(classfile.OpInvokespecial, g.a.pool.MethodRef(sb, "<init>", "()V"), -1)
	for _, operand := range operands {
		t, err := g.genExpr(operand)
		if err != nil {
			return nil, err
		}
		desc, conv := appendDescriptor(t)
		if conv != nil {
			g.convert(t, conv)
		}
		delta := -1
		if desc == "(J)Ljava/lang/StringBuilder;" || desc == "(D)Ljava/lang/StringBuilder;" {
			delta = -2
		}
		g.a.opU16(classfile.OpInvokevirtual, g.a.pool.MethodRef(sb, "append", desc), delta)
	}
	g.a.opU16(classfile.OpInvokevirtual,
		g.a.pool.MethodRef(sb, "toString", "()Ljava/lang/String;"), 0)
	return ex.T, nil
}

// appendDescriptor picks the StringBuilder.append overload for a type,
// plus any pre-conversion of the operand.
func appendDescriptor(t *Type) (string, *Type) {
	switch t.Kind {
	case KBool:
		return "(Z)Ljava/lang/StringBuilder;", nil
	case KChar:
		return "(C)Ljava/lang/StringBuilder;", nil
	case KByte, KShort, KInt:
		return "(I)Ljava/lang/StringBuilder;", TInt
	case KLong:
		return "(J)Ljava/lang/StringBuilder;", nil
	case KFloat:
		return "(D)Ljava/lang/StringBuilder;", TDouble
	case KDouble:
		return "(D)Ljava/lang/StringBuilder;", nil
	case KRef:
		if t.Cls.Name == "java/lang/String" {
			return "(Ljava/lang/String;)Ljava/lang/StringBuilder;", nil
		}
		return "(Ljava/lang/Object;)Ljava/lang/StringBuilder;", nil
	default: // arrays, null
		return "(Ljava/lang/Object;)Ljava/lang/StringBuilder;", nil
	}
}

package minijava

import (
	"fmt"
	"sort"

	"doppio/internal/classfile"
)

// Compile parses, analyzes, and compiles a set of sources (file name →
// contents) into class files keyed by internal class name.
func Compile(sources map[string]string) (map[string][]byte, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*File
	for _, n := range names {
		f, err := ParseFile(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	prog, err := Analyze(files)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(prog.Order))
	for _, cs := range prog.Order {
		data, err := genClass(prog, cs)
		if err != nil {
			return nil, err
		}
		out[cs.Name] = data
	}
	return out, nil
}

// genClass emits one class file.
func genClass(prog *Program, cs *ClassSym) ([]byte, error) {
	pool := classfile.NewPoolBuilder()
	cf := &classfile.ClassFile{
		Minor: classfile.MinorVersion, Major: classfile.MajorVersion,
		Flags:     classfile.AccPublic | classfile.AccSuper,
		ThisClass: pool.Class(cs.Name),
	}
	if cs.IsInterface {
		cf.Flags = classfile.AccPublic | classfile.AccInterface | classfile.AccAbstract
	} else if cs.IsAbstract {
		cf.Flags |= classfile.AccAbstract
	}
	if cs.Super != nil {
		cf.SuperClass = pool.Class(cs.Super.Name)
	} else if cs.Name != "java/lang/Object" {
		cf.SuperClass = pool.Class("java/lang/Object")
	}
	for _, i := range cs.Interfaces {
		cf.Interfaces = append(cf.Interfaces, pool.Class(i.Name))
	}
	for _, fs := range cs.Fields {
		flags := uint16(classfile.AccPublic)
		if fs.Static {
			flags |= classfile.AccStatic
		}
		if fs.Final {
			flags |= classfile.AccFinal
		}
		cf.Fields = append(cf.Fields, classfile.Member{
			Flags: flags,
			Name:  pool.Utf8(fs.Name),
			Desc:  pool.Utf8(fs.Type.Desc()),
		})
	}
	for _, ms := range cs.Methods {
		m, err := genMethod(prog, cs, ms, pool)
		if err != nil {
			return nil, err
		}
		cf.Methods = append(cf.Methods, *m)
	}
	// Synthesize <clinit> when static state needs initialization.
	if clinit, err := genClinit(prog, cs, pool); err != nil {
		return nil, err
	} else if clinit != nil {
		cf.Methods = append(cf.Methods, *clinit)
	}
	cf.ConstPool = pool.Pool()
	return cf.Write(), nil
}

// genCtx generates code for one method body.
type genCtx struct {
	prog *Program
	cls  *ClassSym
	ms   *MethodSym
	a    *asm

	// Exit bookkeeping for break/continue/return across finally
	// blocks and synchronized regions.
	actions   []exitAction
	breaks    []exitTarget
	continues []exitTarget

	scratch int // scratch local base (2 slots)
}

type exitAction interface{ emitExit(g *genCtx) }

type finallyExit struct{ sub *label }

func (f finallyExit) emitExit(g *genCtx) { g.a.jsr(f.sub) }

type monitorRelease struct{ slot int }

func (m monitorRelease) emitExit(g *genCtx) {
	g.a.loadLocal(TNull, m.slot)
	g.a.op(classfile.OpMonitorexit, -1)
}

type exitTarget struct {
	l     *label
	depth int // len(actions) when the construct was entered
}

// jsr emits a jump-to-subroutine; the subroutine sees the return
// address on its stack.
func (a *asm) jsr(l *label) {
	opc := a.pc()
	a.code = append(a.code, classfile.OpJsr, 0, 0)
	a.adj(1) // the address as seen at the target
	a.noteStack(l)
	a.adj(-1) // fall-through resumes at the pre-jsr depth
	a.fixups = append(a.fixups, fixup{at: opc + 1, opcPC: opc, l: l})
}

func genMethod(prog *Program, cs *ClassSym, ms *MethodSym, pool *classfile.PoolBuilder) (*classfile.Member, error) {
	flags := uint16(classfile.AccPublic)
	if ms.Static {
		flags |= classfile.AccStatic
	}
	if ms.Native {
		flags |= classfile.AccNative
	}
	if ms.Abstract {
		flags |= classfile.AccAbstract
	}
	m := &classfile.Member{
		Flags: flags,
		Name:  pool.Utf8(ms.Name),
		Desc:  pool.Utf8(ms.Descriptor()),
	}
	if ms.Native || ms.Abstract || ms.Decl == nil || (!ms.Decl.HasBody && ms.Name != "<init>") {
		return m, nil
	}
	g := &genCtx{prog: prog, cls: cs, ms: ms, a: newAsm(pool)}
	minLocals := 0
	if !ms.Static {
		minLocals = 1
	}
	for _, p := range ms.Params {
		minLocals += slotWidth(p)
	}
	maxLocals := ms.MaxLocals
	if maxLocals < minLocals {
		maxLocals = minLocals
	}
	g.scratch = maxLocals
	maxLocals += 2

	if ms.Name == "<init>" {
		if err := g.genCtorPrologue(); err != nil {
			return nil, err
		}
	}
	for _, s := range ms.Decl.Body {
		if err := g.genStmt(s); err != nil {
			return nil, err
		}
	}
	// Implicit trailing return for void methods (and constructors).
	if ms.Ret == TVoid {
		g.a.op(classfile.OpReturn, 0)
	} else if g.a.stack >= 0 {
		// Unreachable per the checker, but keep the verifier-lite of
		// the VM happy with a throwable tail.
		g.a.op(classfile.OpAconstNull, 1)
		g.a.op(classfile.OpAthrow, -1)
	}
	code, err := g.a.finish(maxLocals)
	if err != nil {
		return nil, fmt.Errorf("%s.%s: %w", cs.Name, ms.Name, err)
	}
	m.Attrs = append(m.Attrs, classfile.Attribute{
		Name: pool.Utf8("Code"),
		Data: classfile.EncodeCode(code),
	})
	return m, nil
}

func slotWidth(t *Type) int {
	if t.Wide() {
		return 2
	}
	return 1
}

// genCtorPrologue emits the implicit super() call (when the body does
// not begin with an explicit this()/super() call) followed by instance
// field initializers.
func (g *genCtx) genCtorPrologue() error {
	explicit := false
	if body := g.ms.Decl.Body; len(body) > 0 {
		if es, ok := body[0].(*ExprStmt); ok {
			if call, ok := es.E.(*Call); ok && call.Name == "<init>" {
				explicit = true
			}
		}
	}
	if !explicit && g.cls.Super != nil {
		g.a.op(classfile.OpAload0, 1)
		idx := g.a.pool.MethodRef(g.cls.Super.Name, "<init>", "()V")
		g.a.opU16(classfile.OpInvokespecial, idx, -1)
	}
	// Field initializers run after the super call. When the explicit
	// call is this(...), the delegate constructor already ran them;
	// Java still re-runs them only for super(...) — we approximate by
	// running them unless the first statement is this(...), which our
	// subset does not support anyway.
	for _, fs := range g.cls.Fields {
		if fs.Static || fs.Decl == nil || fs.Decl.Init == nil {
			continue
		}
		g.a.op(classfile.OpAload0, 1)
		t, err := g.genExpr(fs.Decl.Init)
		if err != nil {
			return err
		}
		g.convert(t, fs.Type)
		idx := g.a.pool.FieldRef(g.cls.Name, fs.Name, fs.Type.Desc())
		g.a.opU16(classfile.OpPutfield, idx, -1-slotWidth(fs.Type))
	}
	return nil
}

// genClinit synthesizes <clinit> from static field initializers and
// static blocks.
func genClinit(prog *Program, cs *ClassSym, pool *classfile.PoolBuilder) (*classfile.Member, error) {
	hasWork := len(cs.Decl.StaticInit) > 0
	for _, fs := range cs.Fields {
		if fs.Static && fs.Decl != nil && fs.Decl.Init != nil {
			hasWork = true
		}
	}
	if !hasWork {
		return nil, nil
	}
	ms := &MethodSym{Owner: cs, Name: "<clinit>", Static: true, Ret: TVoid,
		MaxLocals: cs.ClinitMaxLocals}
	g := &genCtx{prog: prog, cls: cs, ms: ms, a: newAsm(pool)}
	g.scratch = ms.MaxLocals
	for _, fs := range cs.Fields {
		if !fs.Static || fs.Decl == nil || fs.Decl.Init == nil {
			continue
		}
		t, err := g.genExpr(fs.Decl.Init)
		if err != nil {
			return nil, err
		}
		g.convert(t, fs.Type)
		idx := pool.FieldRef(cs.Name, fs.Name, fs.Type.Desc())
		g.a.opU16(classfile.OpPutstatic, idx, -slotWidth(fs.Type))
	}
	for _, s := range cs.Decl.StaticInit {
		if err := g.genStmt(s); err != nil {
			return nil, err
		}
	}
	g.a.op(classfile.OpReturn, 0)
	code, err := g.a.finish(ms.MaxLocals + 2)
	if err != nil {
		return nil, fmt.Errorf("%s.<clinit>: %w", cs.Name, err)
	}
	return &classfile.Member{
		Flags: classfile.AccStatic,
		Name:  pool.Utf8("<clinit>"),
		Desc:  pool.Utf8("()V"),
		Attrs: []classfile.Attribute{{Name: pool.Utf8("Code"), Data: classfile.EncodeCode(code)}},
	}, nil
}

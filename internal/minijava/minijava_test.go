package minijava_test

import (
	"strings"
	"testing"

	"doppio/internal/classfile"
	"doppio/internal/jvm/rt"
	"doppio/internal/minijava"
)

// compile builds the runtime library plus a test source.
func compile(t *testing.T, src string) map[string][]byte {
	t.Helper()
	classes, err := rt.CompileWith(map[string]string{"T.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return classes
}

func disasmOf(t *testing.T, classes map[string][]byte, name string) string {
	t.Helper()
	data, ok := classes[name]
	if !ok {
		t.Fatalf("class %s not produced", name)
	}
	cf, err := classfile.Parse(data)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return classfile.Disassemble(cf)
}

func TestEmitsValidClassFiles(t *testing.T) {
	classes := compile(t, `
public class T {
    int field;
    static long counter;
    public static void main(String[] args) {
        System.out.println("x");
    }
}`)
	for name, data := range classes {
		cf, err := classfile.Parse(data)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cf.Name() != name {
			t.Errorf("%s: class file declares %s", name, cf.Name())
		}
	}
}

func TestDenseSwitchUsesTableswitch(t *testing.T) {
	classes := compile(t, `
public class T {
    static int pick(int v) {
        switch (v) {
        case 1: return 10;
        case 2: return 20;
        case 3: return 30;
        default: return 0;
        }
    }
    public static void main(String[] args) {}
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "tableswitch") {
		t.Errorf("dense switch did not use tableswitch:\n%s", dis)
	}
}

func TestSparseSwitchUsesLookupswitch(t *testing.T) {
	classes := compile(t, `
public class T {
    static int pick(int v) {
        switch (v) {
        case 1: return 1;
        case 1000: return 2;
        case 1000000: return 3;
        default: return 0;
        }
    }
    public static void main(String[] args) {}
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "lookupswitch") {
		t.Errorf("sparse switch did not use lookupswitch:\n%s", dis)
	}
}

func TestFinallyCompilesToJsrRet(t *testing.T) {
	classes := compile(t, `
public class T {
    static int f(int x) {
        try {
            return x;
        } finally {
            x++;
        }
    }
    public static void main(String[] args) {}
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "jsr") || !strings.Contains(dis, "ret") {
		t.Errorf("finally did not compile to jsr/ret:\n%s", dis)
	}
	if !strings.Contains(dis, "type any") {
		t.Errorf("missing catch-all exception row:\n%s", dis)
	}
}

func TestInterfaceCallUsesInvokeinterface(t *testing.T) {
	classes := compile(t, `
interface Greeter { String hi(); }
class English implements Greeter {
    public String hi() { return "hello"; }
}
public class T {
    public static void main(String[] args) {
        Greeter g = new English();
        System.out.println(g.hi());
    }
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "invokeinterface") {
		t.Errorf("interface call did not use invokeinterface:\n%s", dis)
	}
	// The interface itself is marked as such.
	idis := disasmOf(t, classes, "Greeter")
	if !strings.HasPrefix(idis, "interface Greeter") {
		t.Errorf("Greeter not an interface:\n%s", idis)
	}
}

func TestSynchronizedEmitsMonitorOps(t *testing.T) {
	classes := compile(t, `
public class T {
    static Object lock = new Object();
    static void inc() {
        synchronized (lock) {
            System.out.println("x");
        }
    }
    public static void main(String[] args) {}
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "monitorenter") || !strings.Contains(dis, "monitorexit") {
		t.Errorf("synchronized block missing monitor ops:\n%s", dis)
	}
}

func TestStringConcatUsesStringBuilder(t *testing.T) {
	classes := compile(t, `
public class T {
    static String f(int n) { return "n=" + n + "!"; }
    public static void main(String[] args) {}
}`)
	dis := disasmOf(t, classes, "T")
	if !strings.Contains(dis, "java/lang/StringBuilder.append") {
		t.Errorf("concat missing StringBuilder chain:\n%s", dis)
	}
	// The chain is flattened: exactly one StringBuilder allocation.
	if n := strings.Count(dis, "new java/lang/StringBuilder"); n != 1 {
		t.Errorf("expected 1 StringBuilder allocation, found %d:\n%s", n, dis)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unknown type": `
public class T { Unknown f; public static void main(String[] args) {} }`,
		"undefined name": `
public class T { public static void main(String[] args) { int x = y; } }`,
		"type mismatch": `
public class T { public static void main(String[] args) { int x = "s"; } }`,
		"missing return": `
public class T { static int f() { int x = 1; } public static void main(String[] args) {} }`,
		"bad condition": `
public class T { public static void main(String[] args) { if (1) {} } }`,
		"duplicate method": `
public class T {
    static void f(int a) {}
    static void f(int b) {}
    public static void main(String[] args) {}
}`,
		"duplicate local": `
public class T { public static void main(String[] args) { int a = 1; int a = 2; } }`,
		"break outside loop": `
public class T { public static void main(String[] args) { break; } }`,
		"this in static": `
public class T { public static void main(String[] args) { Object o = this; } }`,
		"abstract instantiation": `
abstract class A { }
public class T { public static void main(String[] args) { Object o = new A(); } }`,
		"wrong arg count": `
public class T {
    static void f(int a) {}
    public static void main(String[] args) { f(1, 2); }
}`,
		"void local": `
public class T { public static void main(String[] args) { void v; } }`,
		"non-throwable throw": `
public class T { public static void main(String[] args) { throw "x"; } }`,
		"instance from static": `
public class T {
    int x;
    public static void main(String[] args) { int y = x; }
}`,
		"inheritance cycle": `
class A extends B {}
class B extends A {}
public class T { public static void main(String[] args) {} }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := rt.CompileWith(map[string]string{"T.mj": src}); err == nil {
				t.Errorf("compiled without error")
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated class":   `public class T {`,
		"bad token":            `public class T { § }`,
		"unterminated string":  `public class T { String s = "abc; }`,
		"missing semicolon":    `public class T { int f() { return 1 } }`,
		"try without catch":    `public class T { void f() { try { } } }`,
		"unterminated comment": `/* public class T {}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := minijava.ParseFile("t.mj", src); err == nil {
				t.Errorf("parsed without error")
			}
		})
	}
}

func TestParseRecovery(t *testing.T) {
	// Constructs that are easy to get wrong in a hand-written parser.
	f, err := minijava.ParseFile("t.mj", `
package a.b;
import java.util.ArrayList;
import java.io.*;

public class T {
    int[] xs;
    int[][] grid;
    static final int K = 3, L = 4;

    T(int a, char b) {}

    int f(int[] a, String s) {
        int x = (a[0] + 1) * -2;
        boolean ok = x > 0 && s != null || false;
        Object o = (Object) s;
        String t = o instanceof String ? "yes" : "no";
        for (int i = 0; i < 3; i++) { x += i; }
        do { x--; } while (x > 0);
        return ok ? x : -x;
    }
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.Package != "a.b" || len(f.Imports) != 2 || len(f.Classes) != 1 {
		t.Errorf("file = %+v", f)
	}
	cls := f.Classes[0]
	if len(cls.Fields) != 4 || len(cls.Methods) != 1 || len(cls.Ctors) != 1 {
		t.Errorf("class members: fields=%d methods=%d ctors=%d",
			len(cls.Fields), len(cls.Methods), len(cls.Ctors))
	}
}

func TestRuntimeLibraryCompilesStandalone(t *testing.T) {
	classes, err := rt.Classes()
	if err != nil {
		t.Fatalf("runtime library: %v", err)
	}
	required := []string{
		"java/lang/Object", "java/lang/String", "java/lang/StringBuilder",
		"java/lang/System", "java/lang/Throwable", "java/lang/Thread",
		"java/io/PrintStream", "java/io/File", "java/util/ArrayList",
		"java/util/HashMap", "sun/misc/Unsafe", "doppio/io/FileSystem",
		"doppio/lang/JS", "java/net/Socket",
	}
	for _, name := range required {
		if _, ok := classes[name]; !ok {
			t.Errorf("runtime library missing %s", name)
		}
	}
}

package minijava

// File is one parsed compilation unit.
type File struct {
	Package string // dotted, may be ""
	Imports []string
	Classes []*ClassDecl
}

// ClassDecl declares a class or interface.
type ClassDecl struct {
	Pos         Pos
	Name        string
	IsInterface bool
	IsAbstract  bool
	Super       string   // dotted name, "" = Object
	Interfaces  []string // dotted names
	Fields      []*FieldDecl
	Methods     []*MethodDecl
	Ctors       []*MethodDecl
	StaticInit  []Stmt // bodies of static { } blocks, concatenated
}

// FieldDecl declares one field.
type FieldDecl struct {
	Pos    Pos
	Name   string
	Type   TypeExpr
	Static bool
	Final  bool
	Init   Expr // may be nil
}

// MethodDecl declares a method or constructor.
type MethodDecl struct {
	Pos          Pos
	Name         string // "<init>" for constructors
	Params       []Param
	Ret          TypeExpr // nil for constructors and void
	Static       bool
	Native       bool
	Abstract     bool
	Synchronized bool
	Body         []Stmt // statements; meaningful only when HasBody
	// HasBody distinguishes an empty body {} from no body (native or
	// abstract declarations).
	HasBody bool
}

// Param is one method parameter.
type Param struct {
	Pos  Pos
	Name string
	Type TypeExpr
}

// TypeExpr is a syntactic type: a primitive or dotted class name with
// array dimensions.
type TypeExpr struct {
	Pos  Pos
	Name string // "int", "boolean", ..., "void", or dotted class name
	Dims int
}

// --- statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is { stmts }.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// LocalVar declares a local variable.
type LocalVar struct {
	Pos  Pos
	Name string
	Type TypeExpr
	Init Expr // may be nil
	// Info is the checker's slot assignment.
	Info *LocalInfo
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// If is if/else.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// For is a C-style for loop.
type For struct {
	Pos  Pos
	Init Stmt // LocalVar or ExprStmt or nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// Return exits the method.
type Return struct {
	Pos Pos
	E   Expr // may be nil
}

// Break exits the nearest loop/switch.
type Break struct{ Pos Pos }

// Continue jumps to the nearest loop's next iteration.
type Continue struct{ Pos Pos }

// Throw raises an exception.
type Throw struct {
	Pos Pos
	E   Expr
}

// Try is try/catch/finally.
type Try struct {
	Pos     Pos
	Body    *Block
	Catches []*Catch
	Finally *Block // may be nil
	// RetSlot and ExcSlot are hidden locals used by the jsr/ret
	// finally subroutine (assigned by the checker).
	RetSlot, ExcSlot int
}

// Catch is one catch clause.
type Catch struct {
	Pos  Pos
	Type TypeExpr
	Name string
	Body *Block
	// Resolution:
	Cls  *ClassSym
	Info *LocalInfo
}

// Switch is a switch on an int-typed expression.
type Switch struct {
	Pos     Pos
	Subject Expr
	Cases   []*SwitchCase
}

// SwitchCase is one `case K:`/`default:` group.
type SwitchCase struct {
	Pos       Pos
	Values    []int32 // constant labels; empty = default
	IsDefault bool
	Body      []Stmt
}

// Synchronized is synchronized (expr) { ... }.
type Synchronized struct {
	Pos  Pos
	Lock Expr
	Body *Block
	// LockSlot is the hidden local holding the monitor reference.
	LockSlot int
}

func (*Block) stmtNode()        {}
func (*LocalVar) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*If) stmtNode()           {}
func (*While) stmtNode()        {}
func (*DoWhile) stmtNode()      {}
func (*For) stmtNode()          {}
func (*Return) stmtNode()       {}
func (*Break) stmtNode()        {}
func (*Continue) stmtNode()     {}
func (*Throw) stmtNode()        {}
func (*Try) stmtNode()          {}
func (*Switch) stmtNode()       {}
func (*Synchronized) stmtNode() {}

// --- expressions ---

// Expr is an expression node. The checker stores each node's type in
// its T field.
type Expr interface {
	exprNode()
	pos() Pos
}

// Lit is a literal: int, long, float, double, char, boolean, String,
// or null.
type Lit struct {
	Pos_ Pos
	Kind Kind   // INTLIT, LONGLIT, FLOATLIT, DOUBLELIT, CHARLIT, STRINGLIT, KEYWORD (true/false/null)
	Text string // for KEYWORD literals
	Int  int64
	F    float64
	Str  string
	T    *Type
}

// Ident names a local, parameter, field, or (qualified prefix) class.
type Ident struct {
	Pos_ Pos
	Name string
	T    *Type
	// Resolution (filled by the checker):
	Local *LocalInfo // non-nil if a local/param
	Field *FieldSym  // non-nil if an implicit this/static field
	Cls   *ClassSym  // non-nil when the name denotes a class
}

// This is the receiver reference.
type This struct {
	Pos_ Pos
	T    *Type
}

// Unary is !x, ~x, -x, +x, ++x, --x, x++, x--.
type Unary struct {
	Pos_    Pos
	Op      string
	Postfix bool // for ++/--
	E       Expr
	T       *Type
}

// Binary is a binary operator (arithmetic, comparison, logical,
// bitwise, shift). && and || short-circuit.
type Binary struct {
	Pos_ Pos
	Op   string
	L, R Expr
	T    *Type
	// IsConcat marks string concatenation (op "+").
	IsConcat bool
}

// Ternary is cond ? a : b.
type Ternary struct {
	Pos_ Pos
	Cond Expr
	A, B Expr
	T    *Type
}

// Assign is lhs = rhs or a compound assignment.
type Assign struct {
	Pos_ Pos
	Op   string // "=", "+=", ...
	L, R Expr
	T    *Type
}

// Call invokes a method: recv.Name(args), Name(args), or
// Class.Name(args); super.Name(args) when Super is set.
type Call struct {
	Pos_  Pos
	Recv  Expr // nil = implicit this or static in current class
	Super bool
	Name  string
	Args  []Expr
	T     *Type
	// Resolution:
	Sym       *MethodSym
	StaticCls *ClassSym // non-nil when Recv was a class name
}

// FieldAccess is recv.Name (or array .length).
type FieldAccess struct {
	Pos_ Pos
	Recv Expr // nil when accessed via class name
	Name string
	T    *Type
	// Resolution:
	Sym        *FieldSym
	StaticCls  *ClassSym
	IsArrayLen bool
}

// Index is arr[i].
type Index struct {
	Pos_   Pos
	Arr, I Expr
	T      *Type
}

// New is new T(args).
type New struct {
	Pos_ Pos
	Type TypeExpr
	Args []Expr
	T    *Type
	Ctor *MethodSym
}

// NewArray is new T[d0][d1]...[]...
type NewArray struct {
	Pos_      Pos
	Elem      TypeExpr // element type without dims
	DimExprs  []Expr   // sized dimensions
	ExtraDims int      // trailing empty dims
	T         *Type
}

// Cast is (T) expr.
type Cast struct {
	Pos_ Pos
	Type TypeExpr
	E    Expr
	T    *Type
}

// InstanceOf is expr instanceof T.
type InstanceOf struct {
	Pos_ Pos
	E    Expr
	Type TypeExpr
	T    *Type
	Cls  *ClassSym
}

func (e *Lit) exprNode()         {}
func (e *Ident) exprNode()       {}
func (e *This) exprNode()        {}
func (e *Unary) exprNode()       {}
func (e *Binary) exprNode()      {}
func (e *Ternary) exprNode()     {}
func (e *Assign) exprNode()      {}
func (e *Call) exprNode()        {}
func (e *FieldAccess) exprNode() {}
func (e *Index) exprNode()       {}
func (e *New) exprNode()         {}
func (e *NewArray) exprNode()    {}
func (e *Cast) exprNode()        {}
func (e *InstanceOf) exprNode()  {}

func (e *Lit) pos() Pos         { return e.Pos_ }
func (e *Ident) pos() Pos       { return e.Pos_ }
func (e *This) pos() Pos        { return e.Pos_ }
func (e *Unary) pos() Pos       { return e.Pos_ }
func (e *Binary) pos() Pos      { return e.Pos_ }
func (e *Ternary) pos() Pos     { return e.Pos_ }
func (e *Assign) pos() Pos      { return e.Pos_ }
func (e *Call) pos() Pos        { return e.Pos_ }
func (e *FieldAccess) pos() Pos { return e.Pos_ }
func (e *Index) pos() Pos       { return e.Pos_ }
func (e *New) pos() Pos         { return e.Pos_ }
func (e *NewArray) pos() Pos    { return e.Pos_ }
func (e *Cast) pos() Pos        { return e.Pos_ }
func (e *InstanceOf) pos() Pos  { return e.Pos_ }

package minijava

// Expression parsing: precedence climbing.

var binaryLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="}, // instanceof handled at this level
	{"<<", ">>", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
}

func (p *parser) expr() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == PUNCT && assignOps[t.Text] {
		p.pos++
		rhs, err := p.assignment() // right associative
		if err != nil {
			return nil, err
		}
		return &Assign{Pos_: t.Pos, Op: t.Text, L: lhs, R: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) ternary() (Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.isP("?") {
		pos := p.cur().Pos
		p.pos++
		a, err := p.assignment()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(":"); err != nil {
			return nil, err
		}
		b, err := p.ternary()
		if err != nil {
			return nil, err
		}
		return &Ternary{Pos_: pos, Cond: cond, A: a, B: b}, nil
	}
	return cond, nil
}

func (p *parser) binary(level int) (Expr, error) {
	if level == len(binaryLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		// instanceof sits at the relational level.
		if level == 6 && t.Kind == KEYWORD && t.Text == "instanceof" {
			p.pos++
			typ, err := p.typeExpr(false)
			if err != nil {
				return nil, err
			}
			lhs = &InstanceOf{Pos_: t.Pos, E: lhs, Type: typ}
			continue
		}
		if t.Kind != PUNCT {
			return lhs, nil
		}
		matched := false
		for _, op := range binaryLevels[level] {
			if t.Text == op {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos_: t.Pos, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == PUNCT {
		switch t.Text {
		case "!", "~", "-", "+":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			// Fold -literal immediately so INT_MIN parses.
			if t.Text == "-" {
				if lit, ok := e.(*Lit); ok && (lit.Kind == INTLIT || lit.Kind == LONGLIT) {
					lit.Int = -lit.Int
					if lit.Kind == INTLIT {
						lit.Int = int64(int32(lit.Int))
					}
					return lit, nil
				}
				if lit, ok := e.(*Lit); ok && (lit.Kind == DOUBLELIT || lit.Kind == FLOATLIT) {
					lit.F = -lit.F
					return lit, nil
				}
			}
			if t.Text == "+" {
				return e, nil
			}
			return &Unary{Pos_: t.Pos, Op: t.Text, E: e}, nil
		case "++", "--":
			p.pos++
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos_: t.Pos, Op: t.Text, E: e}, nil
		case "(":
			// Cast or parenthesized expression.
			if e, ok, err := p.tryCast(); ok || err != nil {
				return e, err
			}
		}
	}
	return p.postfix()
}

// tryCast speculatively parses "( Type ) unary".
func (p *parser) tryCast() (Expr, bool, error) {
	save := p.pos
	pos := p.cur().Pos
	p.pos++ // (
	t := p.cur()
	isPrim := t.Kind == KEYWORD && primTypeNames[t.Text]
	if !isPrim && t.Kind != IDENT {
		p.pos = save
		return nil, false, nil
	}
	typ, err := p.typeExpr(false)
	if err != nil {
		p.pos = save
		return nil, false, nil
	}
	if !p.acceptP(")") {
		p.pos = save
		return nil, false, nil
	}
	// A cast must be followed by something that can start a unary
	// expression. For class-name casts, operators like +/- mean the
	// parenthesized-expression reading was intended.
	nt := p.cur()
	castFollows := false
	switch nt.Kind {
	case IDENT, INTLIT, LONGLIT, FLOATLIT, DOUBLELIT, CHARLIT, STRINGLIT:
		castFollows = true
	case KEYWORD:
		castFollows = nt.Text == "this" || nt.Text == "new" || nt.Text == "true" ||
			nt.Text == "false" || nt.Text == "null" || nt.Text == "super"
	case PUNCT:
		if nt.Text == "(" || nt.Text == "!" || nt.Text == "~" {
			castFollows = true
		}
		// "-"/"+" after a primitive cast is still a cast: (int) -x.
		if isPrim && (nt.Text == "-" || nt.Text == "+") {
			castFollows = true
		}
	}
	if !castFollows {
		p.pos = save
		return nil, false, nil
	}
	e, err := p.unary()
	if err != nil {
		return nil, true, err
	}
	return &Cast{Pos_: pos, Type: typ, E: e}, true, nil
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.isP("."):
			p.pos++
			nameTok, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.isP("(") {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				e = &Call{Pos_: nameTok.Pos, Recv: e, Name: nameTok.Text, Args: args}
			} else {
				e = &FieldAccess{Pos_: nameTok.Pos, Recv: e, Name: nameTok.Text}
			}
		case p.isP("["):
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectP("]"); err != nil {
				return nil, err
			}
			e = &Index{Pos_: t.Pos, Arr: e, I: idx}
		case p.isP("++") || p.isP("--"):
			p.pos++
			e = &Unary{Pos_: t.Pos, Op: t.Text, Postfix: true, E: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) args() ([]Expr, error) {
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	var out []Expr
	if p.acceptP(")") {
		return out, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptP(",") {
			break
		}
	}
	return out, p.expectP(")")
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT, LONGLIT, FLOATLIT, DOUBLELIT, CHARLIT:
		p.pos++
		return &Lit{Pos_: t.Pos, Kind: t.Kind, Int: t.Int, F: t.F}, nil
	case STRINGLIT:
		p.pos++
		return &Lit{Pos_: t.Pos, Kind: STRINGLIT, Str: t.Str}, nil
	case KEYWORD:
		switch t.Text {
		case "true", "false", "null":
			p.pos++
			return &Lit{Pos_: t.Pos, Kind: KEYWORD, Text: t.Text}, nil
		case "this":
			p.pos++
			if p.isP("(") {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				return &Call{Pos_: t.Pos, Name: "<init>", Args: args}, nil
			}
			return &This{Pos_: t.Pos}, nil
		case "super":
			p.pos++
			if p.isP("(") {
				// super(...) constructor call.
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				return &Call{Pos_: t.Pos, Super: true, Name: "<init>", Args: args}, nil
			}
			if err := p.expectP("."); err != nil {
				return nil, err
			}
			nameTok, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &Call{Pos_: nameTok.Pos, Super: true, Name: nameTok.Text, Args: args}, nil
		case "new":
			return p.newExpr()
		}
	case IDENT:
		p.pos++
		if p.isP("(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &Call{Pos_: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &Ident{Pos_: t.Pos, Name: t.Text}, nil
	case PUNCT:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectP(")")
		}
	}
	return nil, errf(t.Pos, "unexpected token %q in expression", t.Text)
}

func (p *parser) newExpr() (Expr, error) {
	start := p.cur().Pos
	p.pos++ // new
	t := p.cur()
	var elem TypeExpr
	elem.Pos = t.Pos
	switch {
	case t.Kind == KEYWORD && primTypeNames[t.Text]:
		p.pos++
		elem.Name = t.Text
	case t.Kind == IDENT:
		name, err := p.qualified()
		if err != nil {
			return nil, err
		}
		elem.Name = name
	default:
		return nil, errf(t.Pos, "expected type after new")
	}
	if p.isP("(") {
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		return &New{Pos_: start, Type: elem, Args: args}, nil
	}
	if !p.isP("[") {
		return nil, errf(p.cur().Pos, "expected '(' or '[' after new %s", elem.Name)
	}
	na := &NewArray{Pos_: start, Elem: elem}
	// Sized dims.
	for p.isP("[") && !(p.toks[p.pos+1].Kind == PUNCT && p.toks[p.pos+1].Text == "]") {
		p.pos++
		d, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP("]"); err != nil {
			return nil, err
		}
		na.DimExprs = append(na.DimExprs, d)
	}
	// Trailing empty dims.
	for p.isP("[") && p.toks[p.pos+1].Kind == PUNCT && p.toks[p.pos+1].Text == "]" {
		p.pos += 2
		na.ExtraDims++
	}
	if len(na.DimExprs) == 0 {
		return nil, errf(start, "array creation needs at least one sized dimension")
	}
	return na, nil
}

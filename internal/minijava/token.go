// Package minijava implements a compiler from MiniJava — a substantial
// subset of Java — to real JVM class files (see internal/classfile).
//
// The reproduction uses it the way the paper uses javac: it compiles
// the runtime class library (runtime/src) and all benchmark workloads
// into the bytecode that DoppioJVM executes. The subset covers
// classes, inheritance, interfaces, overloading, constructors, static
// and instance members, all eight primitive types, arrays (including
// multi-dimensional), strings with concatenation, exceptions with
// try/catch/finally (compiled to jsr/ret subroutines, as the
// 2nd-edition JVM spec intended), switch (tableswitch/lookupswitch),
// synchronized blocks, and native method declarations.
package minijava

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT    // 123
	LONGLIT   // 123L
	FLOATLIT  // 1.5f
	DOUBLELIT // 1.5
	CHARLIT   // 'a'
	STRINGLIT // "abc"
	KEYWORD
	PUNCT
)

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier, keyword or punctuation text
	Int  int64  // value for INTLIT/LONGLIT/CHARLIT
	F    float64
	Str  string // decoded value for STRINGLIT
	Pos  Pos
}

// Pos locates a token in its source file.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"abstract": true, "boolean": true, "break": true, "byte": true,
	"case": true, "catch": true, "char": true, "class": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "extends": true, "final": true, "finally": true,
	"float": true, "for": true, "if": true, "implements": true,
	"import": true, "instanceof": true, "int": true, "interface": true,
	"long": true, "native": true, "new": true, "null": true,
	"package": true, "private": true, "protected": true, "public": true,
	"return": true, "short": true, "static": true, "super": true,
	"switch": true, "synchronized": true, "this": true, "throw": true,
	"throws": true, "true": true, "false": true, "try": true,
	"void": true, "while": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	">>>=", "<<=", ">>=", ">>>", "==", "!=", "<=", ">=", "&&", "||",
	"++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "+", "-", "*",
	"/", "%", "<", ">", "!", "~", "&", "|", "^", "?", ":",
}

// lexer produces tokens from one source file.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) at() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := l.at()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lex tokenizes the whole file.
func lex(file, src string) ([]Token, error) {
	l := newLexer(file, src)
	var out []Token
	for {
		if err := l.skipSpaceAndComments(); err != nil {
			return nil, err
		}
		if l.pos >= len(l.src) {
			out = append(out, Token{Kind: EOF, Pos: l.at()})
			return out, nil
		}
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
	}
}

func (l *lexer) next() (Token, error) {
	pos := l.at()
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return Token{Kind: KEYWORD, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		return l.number(pos)
	case c == '\'':
		return l.charLit(pos)
	case c == '"':
		return l.stringLit(pos)
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: PUNCT, Text: p, Pos: pos}, nil
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func (l *lexer) number(pos Pos) (Token, error) {
	start := l.pos
	isHex := false
	if l.peekByte() == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		isHex = true
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	isFloat := false
	if !isHex && l.peekByte() == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if !isHex && (l.peekByte() == 'e' || l.peekByte() == 'E') {
		save := l.pos
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		if isDigit(l.peekByte()) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	switch l.peekByte() {
	case 'L', 'l':
		l.advance()
		v, err := parseIntLit(text, pos, true)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: LONGLIT, Int: v, Pos: pos, Text: text}, nil
	case 'f', 'F':
		l.advance()
		f, err := parseFloatLit(text, pos)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: FLOATLIT, F: f, Pos: pos, Text: text}, nil
	case 'd', 'D':
		l.advance()
		f, err := parseFloatLit(text, pos)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: DOUBLELIT, F: f, Pos: pos, Text: text}, nil
	}
	if isFloat {
		f, err := parseFloatLit(text, pos)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: DOUBLELIT, F: f, Pos: pos, Text: text}, nil
	}
	v, err := parseIntLit(text, pos, false)
	if err != nil {
		return Token{}, err
	}
	return Token{Kind: INTLIT, Int: v, Pos: pos, Text: text}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func parseIntLit(text string, pos Pos, isLong bool) (int64, error) {
	var v uint64
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		for _, c := range text[2:] {
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			}
			v = v*16 + d
		}
	} else {
		for _, c := range text {
			v = v*10 + uint64(c-'0')
		}
	}
	// Allow the full unsigned range (e.g. 0xFFFFFFFF as int wraps).
	if !isLong && v > 0xFFFFFFFF {
		return 0, errf(pos, "integer literal %s too large", text)
	}
	if !isLong {
		return int64(int32(uint32(v))), nil
	}
	return int64(v), nil
}

func parseFloatLit(text string, pos Pos) (float64, error) {
	var f float64
	n, err := fmt.Sscanf(text, "%g", &f)
	if err != nil || n != 1 {
		return 0, errf(pos, "bad floating point literal %s", text)
	}
	return f, nil
}

func (l *lexer) charLit(pos Pos) (Token, error) {
	l.advance() // '
	if l.pos >= len(l.src) {
		return Token{}, errf(pos, "unterminated char literal")
	}
	var v int64
	c := l.advance()
	if c == '\\' {
		e, err := l.escape(pos)
		if err != nil {
			return Token{}, err
		}
		v = int64(e)
	} else {
		v = int64(c)
	}
	if l.pos >= len(l.src) || l.advance() != '\'' {
		return Token{}, errf(pos, "unterminated char literal")
	}
	return Token{Kind: CHARLIT, Int: v, Pos: pos}, nil
}

func (l *lexer) stringLit(pos Pos) (Token, error) {
	l.advance() // "
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: STRINGLIT, Str: b.String(), Pos: pos}, nil
		case '\\':
			e, err := l.escape(pos)
			if err != nil {
				return Token{}, err
			}
			b.WriteRune(e)
		case '\n':
			return Token{}, errf(pos, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
}

func (l *lexer) escape(pos Pos) (rune, error) {
	if l.pos >= len(l.src) {
		return 0, errf(pos, "unterminated escape")
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'u':
		v := rune(0)
		for i := 0; i < 4; i++ {
			if l.pos >= len(l.src) || !isHexDigit(l.peekByte()) {
				return 0, errf(pos, "bad unicode escape")
			}
			d := l.advance()
			switch {
			case d >= '0' && d <= '9':
				v = v*16 + rune(d-'0')
			case d >= 'a' && d <= 'f':
				v = v*16 + rune(d-'a') + 10
			default:
				v = v*16 + rune(d-'A') + 10
			}
		}
		return v, nil
	}
	return 0, errf(pos, "unknown escape \\%c", c)
}

package minijava

import "doppio/internal/classfile"

// lvKind classifies an assignable expression.
type lvKind int

const (
	lvLocal lvKind = iota
	lvStatic
	lvField
	lvArray
)

// lvalue captures the addressing of an assignable expression so that
// loads, stores, and read-modify-write sequences can share it.
type lvalue struct {
	kind  lvKind
	t     *Type // value type
	local *LocalInfo
	field *FieldSym
}

// prepLValue classifies e and emits its addressing components (nothing
// for locals and statics; the receiver for fields; array + index for
// elements).
func (g *genCtx) prepLValue(e Expr) (*lvalue, error) {
	switch ex := e.(type) {
	case *Ident:
		if ex.Local != nil {
			return &lvalue{kind: lvLocal, t: ex.T, local: ex.Local}, nil
		}
		if ex.Field != nil {
			if ex.Field.Static {
				return &lvalue{kind: lvStatic, t: ex.T, field: ex.Field}, nil
			}
			g.a.op(classfile.OpAload0, 1)
			return &lvalue{kind: lvField, t: ex.T, field: ex.Field}, nil
		}
	case *FieldAccess:
		if ex.Sym != nil && ex.Sym.Static {
			if ex.Recv != nil && ex.StaticCls == nil {
				if err := g.genExprStmt(ex.Recv); err != nil {
					return nil, err
				}
			}
			return &lvalue{kind: lvStatic, t: ex.T, field: ex.Sym}, nil
		}
		if ex.Sym != nil {
			if _, err := g.genExpr(ex.Recv); err != nil {
				return nil, err
			}
			return &lvalue{kind: lvField, t: ex.T, field: ex.Sym}, nil
		}
	case *Index:
		if _, err := g.genExpr(ex.Arr); err != nil {
			return nil, err
		}
		it, err := g.genExpr(ex.I)
		if err != nil {
			return nil, err
		}
		g.convert(it, TInt)
		return &lvalue{kind: lvArray, t: ex.T}, nil
	}
	return nil, errf(e.pos(), "not an assignable expression")
}

// addrSlots returns how many stack slots the addressing occupies.
func (lv *lvalue) addrSlots() int {
	switch lv.kind {
	case lvField:
		return 1
	case lvArray:
		return 2
	}
	return 0
}

// dupAddr duplicates the addressing components in place.
func (g *genCtx) dupAddr(lv *lvalue) {
	switch lv.kind {
	case lvField:
		g.a.op(classfile.OpDup, 1)
	case lvArray:
		g.a.op(classfile.OpDup2, 2)
	}
}

// loadAddressed reads the value through (and consuming) one copy of
// the addressing.
func (g *genCtx) loadAddressed(lv *lvalue) {
	w := slotWidth(lv.t)
	switch lv.kind {
	case lvLocal:
		g.a.loadLocal(lv.t, lv.local.Slot)
	case lvStatic:
		idx := g.a.pool.FieldRef(lv.field.Owner.Name, lv.field.Name, lv.field.Type.Desc())
		g.a.opU16(classfile.OpGetstatic, idx, w)
	case lvField:
		idx := g.a.pool.FieldRef(lv.field.Owner.Name, lv.field.Name, lv.field.Type.Desc())
		g.a.opU16(classfile.OpGetfield, idx, -1+w)
	case lvArray:
		g.a.op(arrayLoadOp(lv.t), -2+w)
	}
}

// dupValueUnderAddr duplicates the value on top of the stack beneath
// the addressing components (used to keep a copy as the expression's
// result).
func (g *genCtx) dupValueUnderAddr(lv *lvalue) {
	wide := lv.t.Wide()
	switch lv.addrSlots() {
	case 0:
		if wide {
			g.a.op(classfile.OpDup2, 2)
		} else {
			g.a.op(classfile.OpDup, 1)
		}
	case 1:
		if wide {
			g.a.op(classfile.OpDup2X1, 2)
		} else {
			g.a.op(classfile.OpDupX1, 1)
		}
	case 2:
		if wide {
			g.a.op(classfile.OpDup2X2, 2)
		} else {
			g.a.op(classfile.OpDupX2, 1)
		}
	}
}

// storeAddressed writes the value (on top of the stack) through the
// addressing components, consuming both.
func (g *genCtx) storeAddressed(lv *lvalue) {
	w := slotWidth(lv.t)
	switch lv.kind {
	case lvLocal:
		g.a.storeLocal(lv.t, lv.local.Slot)
	case lvStatic:
		idx := g.a.pool.FieldRef(lv.field.Owner.Name, lv.field.Name, lv.field.Type.Desc())
		g.a.opU16(classfile.OpPutstatic, idx, -w)
	case lvField:
		idx := g.a.pool.FieldRef(lv.field.Owner.Name, lv.field.Name, lv.field.Type.Desc())
		g.a.opU16(classfile.OpPutfield, idx, -1-w)
	case lvArray:
		g.a.op(arrayStoreOp(lv.t), -2-w)
	}
}

// genAssign compiles simple and compound assignment. When wantValue is
// true a copy of the stored value remains on the stack.
func (g *genCtx) genAssign(ex *Assign, wantValue bool) error {
	lv, err := g.prepLValue(ex.L)
	if err != nil {
		return err
	}
	if ex.Op == "=" {
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return err
		}
		g.convert(rt, lv.t)
		if wantValue {
			g.dupValueUnderAddr(lv)
		}
		g.storeAddressed(lv)
		return nil
	}
	// Compound assignment: read through a duplicate of the address,
	// apply the operator, narrow back, store.
	op := ex.Op[:len(ex.Op)-1]
	g.dupAddr(lv)
	g.loadAddressed(lv)

	if op == "+" && lv.t.Kind == KRef { // string +=
		sb := "java/lang/StringBuilder"
		// current value is a String on the stack; build the result.
		// [.., old] → [.., sb, old, sb] → init → [.., sb, old] →
		// append(old) → [.., sb].
		g.a.opU16(classfile.OpNew, g.a.pool.Class(sb), 1)
		g.a.op(classfile.OpDupX1, 1)
		g.a.opU16(classfile.OpInvokespecial, g.a.pool.MethodRef(sb, "<init>", "()V"), -1)
		g.a.opU16(classfile.OpInvokevirtual,
			g.a.pool.MethodRef(sb, "append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;"), -1)
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return err
		}
		desc, conv := appendDescriptor(rt)
		if conv != nil {
			g.convert(rt, conv)
		}
		delta := -1
		if rt.Wide() {
			delta = -2
		}
		g.a.opU16(classfile.OpInvokevirtual, g.a.pool.MethodRef(sb, "append", desc), delta)
		g.a.opU16(classfile.OpInvokevirtual,
			g.a.pool.MethodRef(sb, "toString", "()Ljava/lang/String;"), 0)
	} else {
		// Promote the current value, apply the operator, convert back.
		opT := lv.t
		rtStatic := exprType(ex.R)
		if lv.t.IsNumeric() && rtStatic.IsNumeric() {
			opT = promote(lv.t, rtStatic)
		}
		if opT == TBool {
			opT = TInt
		}
		isShift := op == "<<" || op == ">>" || op == ">>>"
		if isShift {
			opT = promote(lv.t, TInt)
		}
		g.convert(lv.t, opT)
		rt, err := g.genExpr(ex.R)
		if err != nil {
			return err
		}
		switch op {
		case "+", "-", "*", "/", "%":
			g.convert(rt, opT)
			g.a.op(arithOp(op, opT.Kind), -slotWidth(opT))
		case "&", "|", "^":
			if lv.t == TBool {
				g.a.op(bitOp(op, KInt), -1)
			} else {
				g.convert(rt, opT)
				g.a.op(bitOp(op, opT.Kind), -slotWidth(opT))
			}
		case "<<", ">>", ">>>":
			g.convert(rt, TInt)
			g.a.op(shiftOp(op, opT.Kind), -1)
		}
		g.convert(opT, lv.t)
	}
	if wantValue {
		g.dupValueUnderAddr(lv)
	}
	g.storeAddressed(lv)
	return nil
}

// genIncDec compiles ++/-- in all four forms.
func (g *genCtx) genIncDec(ex *Unary, wantValue bool) error {
	// Fast path: int local with iinc.
	if id, ok := ex.E.(*Ident); ok && id.Local != nil && id.Local.Type.Kind == KInt && id.Local.Slot < 256 {
		amount := byte(1)
		if ex.Op == "--" {
			amount = 0xFF // -1 as signed byte
		}
		if wantValue && ex.Postfix {
			g.a.loadLocal(TInt, id.Local.Slot)
		}
		g.a.code = append(g.a.code, classfile.OpIinc, byte(id.Local.Slot), amount)
		if wantValue && !ex.Postfix {
			g.a.loadLocal(TInt, id.Local.Slot)
		}
		return nil
	}
	lv, err := g.prepLValue(ex.E)
	if err != nil {
		return err
	}
	g.dupAddr(lv)
	g.loadAddressed(lv)
	if wantValue && ex.Postfix {
		g.dupValueUnderAddr(lv)
	}
	one := lv.t
	switch one.Kind {
	case KLong:
		g.a.pushLong(1)
	case KFloat:
		g.a.pushFloat(1)
	case KDouble:
		g.a.pushDouble(1)
	default:
		g.a.op(classfile.OpIconst1, 1)
	}
	opName := "+"
	if ex.Op == "--" {
		opName = "-"
	}
	opT := lv.t
	if !opT.Wide() && opT.Kind != KFloat {
		opT = TInt
	}
	g.a.op(arithOp(opName, opT.Kind), -slotWidth(opT))
	g.convert(opT, lv.t)
	if wantValue && !ex.Postfix {
		g.dupValueUnderAddr(lv)
	}
	g.storeAddressed(lv)
	return nil
}

package minijava

import (
	"fmt"
	"sort"
	"strings"
)

// Analyze builds a Program from parsed files: it registers classes,
// resolves supertypes and member signatures, then type-checks every
// method body, annotating the AST for the code generator.
func Analyze(files []*File) (*Program, error) {
	prog := &Program{Classes: make(map[string]*ClassSym)}

	// Pass 1: register all classes.
	for _, f := range files {
		pkg := strings.ReplaceAll(f.Package, ".", "/")
		for _, cd := range f.Classes {
			internal := cd.Name
			if pkg != "" {
				internal = pkg + "/" + cd.Name
			}
			if prog.Classes[internal] != nil {
				return nil, errf(cd.Pos, "duplicate class %s", internal)
			}
			cs := &ClassSym{
				Name: internal, Decl: cd, File: f,
				IsInterface: cd.IsInterface,
				IsAbstract:  cd.IsAbstract || cd.IsInterface,
			}
			prog.Classes[internal] = cs
			prog.Order = append(prog.Order, cs)
		}
	}
	object := prog.Classes["java/lang/Object"]
	if object == nil {
		return nil, fmt.Errorf("minijava: compile set must include java/lang/Object")
	}

	// Pass 2: resolve supertypes and member signatures.
	for _, cs := range prog.Order {
		cd := cs.Decl
		if cd.Super != "" {
			super, err := prog.resolveClassName(cs, cd.Super, cd.Pos)
			if err != nil {
				return nil, err
			}
			if super.IsInterface {
				return nil, errf(cd.Pos, "%s extends interface %s", cs.Name, super.Name)
			}
			cs.Super = super
		} else if !cs.IsInterface && cs != object {
			cs.Super = object
		}
		for _, iname := range cd.Interfaces {
			iface, err := prog.resolveClassName(cs, iname, cd.Pos)
			if err != nil {
				return nil, err
			}
			if !iface.IsInterface {
				return nil, errf(cd.Pos, "%s implements non-interface %s", cs.Name, iface.Name)
			}
			cs.Interfaces = append(cs.Interfaces, iface)
		}
	}
	// Cycle check.
	for _, cs := range prog.Order {
		seen := map[*ClassSym]bool{}
		for k := cs; k != nil; k = k.Super {
			if seen[k] {
				return nil, errf(cs.Decl.Pos, "inheritance cycle involving %s", cs.Name)
			}
			seen[k] = true
		}
	}
	for _, cs := range prog.Order {
		if err := prog.resolveMembers(cs); err != nil {
			return nil, err
		}
	}

	// Pass 3: check bodies.
	for _, cs := range prog.Order {
		if err := prog.checkClass(cs); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// resolveClassName resolves a dotted source name in the context of the
// class's file: fully-qualified, same package, imported, or java.lang.
func (p *Program) resolveClassName(from *ClassSym, dotted string, pos Pos) (*ClassSym, error) {
	internal := strings.ReplaceAll(dotted, ".", "/")
	if c, ok := p.Classes[internal]; ok {
		return c, nil
	}
	if !strings.Contains(dotted, ".") {
		// Same package.
		if pkg := strings.ReplaceAll(from.File.Package, ".", "/"); pkg != "" {
			if c, ok := p.Classes[pkg+"/"+dotted]; ok {
				return c, nil
			}
		}
		// Explicit imports.
		for _, imp := range from.File.Imports {
			if strings.HasSuffix(imp, "."+dotted) {
				if c, ok := p.Classes[strings.ReplaceAll(imp, ".", "/")]; ok {
					return c, nil
				}
			}
			if strings.HasSuffix(imp, ".*") {
				prefix := strings.ReplaceAll(strings.TrimSuffix(imp, ".*"), ".", "/")
				if c, ok := p.Classes[prefix+"/"+dotted]; ok {
					return c, nil
				}
			}
		}
		// Implicit java.lang.
		if c, ok := p.Classes["java/lang/"+dotted]; ok {
			return c, nil
		}
		// Default (unnamed) package.
		if c, ok := p.Classes[dotted]; ok {
			return c, nil
		}
	}
	return nil, errf(pos, "unknown class %s", dotted)
}

// resolveType resolves a syntactic type in a class's context.
func (p *Program) resolveType(from *ClassSym, te TypeExpr) (*Type, error) {
	var base *Type
	switch te.Name {
	case "void":
		base = TVoid
	case "boolean":
		base = TBool
	case "byte":
		base = TByte
	case "char":
		base = TChar
	case "short":
		base = TShort
	case "int":
		base = TInt
	case "long":
		base = TLong
	case "float":
		base = TFloat
	case "double":
		base = TDouble
	default:
		cls, err := p.resolveClassName(from, te.Name, te.Pos)
		if err != nil {
			return nil, err
		}
		base = cls.Type()
	}
	if te.Dims > 0 && base == TVoid {
		return nil, errf(te.Pos, "array of void")
	}
	for i := 0; i < te.Dims; i++ {
		base = ArrayOf(base)
	}
	return base, nil
}

func (p *Program) resolveMembers(cs *ClassSym) error {
	cd := cs.Decl
	for _, fd := range cd.Fields {
		t, err := p.resolveType(cs, fd.Type)
		if err != nil {
			return err
		}
		if t == TVoid {
			return errf(fd.Pos, "field %s has type void", fd.Name)
		}
		for _, existing := range cs.Fields {
			if existing.Name == fd.Name {
				return errf(fd.Pos, "duplicate field %s", fd.Name)
			}
		}
		cs.Fields = append(cs.Fields, &FieldSym{
			Owner: cs, Name: fd.Name, Type: t,
			Static: fd.Static, Final: fd.Final, Decl: fd,
		})
	}
	addMethod := func(md *MethodDecl, isCtor bool) error {
		ms := &MethodSym{
			Owner: cs, Name: md.Name,
			Static: md.Static, Native: md.Native,
			Abstract: md.Abstract, Synchronized: md.Synchronized,
			Decl: md,
		}
		for _, prm := range md.Params {
			t, err := p.resolveType(cs, prm.Type)
			if err != nil {
				return err
			}
			if t == TVoid {
				return errf(prm.Pos, "parameter %s has type void", prm.Name)
			}
			ms.Params = append(ms.Params, t)
		}
		if isCtor {
			ms.Ret = TVoid
		} else {
			t, err := p.resolveType(cs, md.Ret)
			if err != nil {
				return err
			}
			ms.Ret = t
		}
		desc := ms.Descriptor()
		for _, existing := range cs.Methods {
			if existing.Name == ms.Name && existing.Descriptor() == desc {
				return errf(md.Pos, "duplicate method %s%s", ms.Name, desc)
			}
		}
		cs.Methods = append(cs.Methods, ms)
		return nil
	}
	for _, md := range cd.Ctors {
		if cs.IsInterface {
			return errf(md.Pos, "interface %s cannot have constructors", cs.Name)
		}
		if err := addMethod(md, true); err != nil {
			return err
		}
	}
	for _, md := range cd.Methods {
		if err := addMethod(md, false); err != nil {
			return err
		}
	}
	// Implicit no-arg constructor.
	if !cs.IsInterface && len(cd.Ctors) == 0 {
		cs.Methods = append(cs.Methods, &MethodSym{
			Owner: cs, Name: "<init>", Ret: TVoid,
			Decl: &MethodDecl{Pos: cd.Pos, Name: "<init>"},
		})
	}
	return nil
}

// --- conversions ---

// wideningRank orders the numeric primitives for widening.
var wideningRank = map[TypeKind]int{
	KByte: 1, KShort: 2, KChar: 2, KInt: 3, KLong: 4, KFloat: 5, KDouble: 6,
}

// convertCost returns the cost of implicitly converting from → to,
// or -1 when no implicit conversion exists.
func convertCost(from, to *Type) int {
	if from.Equal(to) {
		return 0
	}
	// Primitive widening.
	if from.IsNumeric() && to.IsNumeric() {
		rf, rt := wideningRank[from.Kind], wideningRank[to.Kind]
		// char and short are mutually inconvertible; byte→char is not
		// a widening either.
		if from.Kind == KChar && (to.Kind == KShort || to.Kind == KByte) {
			return -1
		}
		if from.Kind == KShort && to.Kind == KChar {
			return -1
		}
		if from.Kind == KByte && to.Kind == KChar {
			return -1
		}
		if rt > rf {
			return rt - rf
		}
		return -1
	}
	// null → any reference type.
	if from.Kind == KNull && (to.Kind == KRef || to.Kind == KArray) {
		return 1
	}
	// Reference widening.
	if from.Kind == KRef && to.Kind == KRef {
		if refDist := refDistance(from.Cls, to.Cls); refDist >= 0 {
			return refDist
		}
		return -1
	}
	// Arrays widen to Object and covariantly on reference elements.
	if from.Kind == KArray && to.Kind == KRef {
		if to.Cls.Name == "java/lang/Object" {
			return 1
		}
		return -1
	}
	if from.Kind == KArray && to.Kind == KArray {
		if from.Elem.IsRef() && to.Elem.IsRef() {
			c := convertCost(from.Elem, to.Elem)
			if c >= 0 {
				return c
			}
		}
		return -1
	}
	return -1
}

// refDistance counts hierarchy steps from sub to super, or -1.
func refDistance(sub, super *ClassSym) int {
	if sub == super {
		return 0
	}
	best := -1
	if sub.Super != nil {
		if d := refDistance(sub.Super, super); d >= 0 {
			best = d + 1
		}
	}
	for _, i := range sub.Interfaces {
		if d := refDistance(i, super); d >= 0 && (best < 0 || d+1 < best) {
			best = d + 1
		}
	}
	return best
}

// castAllowed reports whether an explicit cast from → to can compile.
func castAllowed(from, to *Type) bool {
	if from.Equal(to) {
		return true
	}
	if from.IsNumeric() && to.IsNumeric() {
		return true
	}
	if from.IsRef() && to.IsRef() {
		return true // runtime checkcast decides
	}
	return false
}

// promote computes the binary numeric promotion of a and b.
func promote(a, b *Type) *Type {
	if a.Kind == KDouble || b.Kind == KDouble {
		return TDouble
	}
	if a.Kind == KFloat || b.Kind == KFloat {
		return TFloat
	}
	if a.Kind == KLong || b.Kind == KLong {
		return TLong
	}
	return TInt
}

// --- method resolution ---

// resolveOverload picks the most specific applicable method.
func resolveOverload(pos Pos, cands []*MethodSym, args []*Type, wantStatic bool) (*MethodSym, error) {
	type scored struct {
		m    *MethodSym
		cost int
	}
	var applicable []scored
	for _, m := range cands {
		if len(m.Params) != len(args) {
			continue
		}
		total := 0
		ok := true
		for i, at := range args {
			c := convertCost(at, m.Params[i])
			if c < 0 {
				ok = false
				break
			}
			total += c
		}
		if ok {
			applicable = append(applicable, scored{m, total})
		}
	}
	if len(applicable) == 0 {
		return nil, errf(pos, "no applicable method for argument types %s", typeListString(args))
	}
	sort.SliceStable(applicable, func(i, j int) bool { return applicable[i].cost < applicable[j].cost })
	if len(applicable) > 1 && applicable[0].cost == applicable[1].cost &&
		applicable[0].m.Descriptor() != applicable[1].m.Descriptor() {
		return nil, errf(pos, "ambiguous call: %s%s vs %s%s",
			applicable[0].m.Name, applicable[0].m.Descriptor(),
			applicable[1].m.Name, applicable[1].m.Descriptor())
	}
	return applicable[0].m, nil
}

func typeListString(ts []*Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

package minijava

// Body checking: resolves names, types every expression, and annotates
// the AST for the code generator.

type bodyCtx struct {
	prog   *Program
	cls    *ClassSym
	method *MethodSym
	scopes []map[string]*LocalInfo
	next   int // next free local slot
	max    int
	loops  int // enclosing loop depth
	sw     int // enclosing switch depth
}

func (p *Program) checkClass(cs *ClassSym) error {
	// Field initializers.
	for _, fs := range cs.Fields {
		if fs.Decl == nil || fs.Decl.Init == nil {
			continue
		}
		ctx := &bodyCtx{prog: p, cls: cs, method: &MethodSym{Owner: cs, Name: "<fieldinit>", Static: fs.Static, Ret: TVoid}}
		ctx.push()
		if !fs.Static {
			ctx.next = 1 // this
		}
		t, err := ctx.checkExpr(fs.Decl.Init)
		if err != nil {
			return err
		}
		if err := ctx.requireAssignable(fs.Decl.Pos, t, fs.Type, fs.Decl.Init); err != nil {
			return err
		}
	}
	// Static initializer blocks.
	if len(cs.Decl.StaticInit) > 0 {
		ctx := &bodyCtx{prog: p, cls: cs, method: &MethodSym{Owner: cs, Name: "<clinit>", Static: true, Ret: TVoid}}
		ctx.push()
		for _, s := range cs.Decl.StaticInit {
			if err := ctx.checkStmt(s); err != nil {
				return err
			}
		}
		cs.ClinitMaxLocals = ctx.maxLocals()
	}
	// Method and constructor bodies.
	for _, ms := range cs.Methods {
		if ms.Decl == nil || (!ms.Decl.HasBody && ms.Decl.Name != "<init>") {
			continue
		}
		ctx := &bodyCtx{prog: p, cls: cs, method: ms}
		ctx.push()
		if !ms.Static {
			ctx.declare(ms.Decl.Pos, "this", cs.Type())
		}
		for i, prm := range ms.Decl.Params {
			if _, err := ctx.declare(prm.Pos, prm.Name, ms.Params[i]); err != nil {
				return err
			}
		}
		for _, s := range ms.Decl.Body {
			if err := ctx.checkStmt(s); err != nil {
				return err
			}
		}
		if ms.Ret != TVoid && ms.Name != "<init>" && !stmtsAlwaysExit(ms.Decl.Body) {
			return errf(ms.Decl.Pos, "method %s.%s: missing return statement", cs.Name, ms.Name)
		}
		ms.MaxLocals = ctx.maxLocals()
	}
	return nil
}

func (c *bodyCtx) maxLocals() int {
	if c.max > c.next {
		return c.max
	}
	return c.next
}

func (c *bodyCtx) push() { c.scopes = append(c.scopes, map[string]*LocalInfo{}) }
func (c *bodyCtx) pop() {
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *bodyCtx) declare(pos Pos, name string, t *Type) (*LocalInfo, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[name]; exists {
		return nil, errf(pos, "duplicate local %s", name)
	}
	li := &LocalInfo{Name: name, Type: t, Slot: c.next}
	c.next++
	if t.Wide() {
		c.next++
	}
	if c.next > c.max {
		c.max = c.next
	}
	top[name] = li
	return li, nil
}

func (c *bodyCtx) lookupLocal(name string) *LocalInfo {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if li, ok := c.scopes[i][name]; ok {
			return li
		}
	}
	return nil
}

// requireAssignable checks from → to assignability, additionally
// allowing constant-int narrowing to byte/short/char.
func (c *bodyCtx) requireAssignable(pos Pos, from, to *Type, rhs Expr) error {
	if convertCost(from, to) >= 0 {
		return nil
	}
	if v, ok := litIntValue(rhs); ok && (from.Kind == KInt || from.Kind == KChar) && fitsIn(v, to) {
		return nil
	}
	return errf(pos, "cannot assign %s to %s", from, to)
}

func litIntValue(e Expr) (int64, bool) {
	if lit, ok := e.(*Lit); ok && (lit.Kind == INTLIT || lit.Kind == CHARLIT) {
		return lit.Int, true
	}
	return 0, false
}

func fitsIn(pair int64, to *Type) bool {
	v := pair
	switch to.Kind {
	case KByte:
		return v >= -128 && v <= 127
	case KShort:
		return v >= -32768 && v <= 32767
	case KChar:
		return v >= 0 && v <= 0xFFFF
	}
	return false
}

// --- statements ---

func (c *bodyCtx) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		c.push()
		defer c.pop()
		for _, inner := range st.Stmts {
			if err := c.checkStmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *LocalVar:
		t, err := c.prog.resolveType(c.cls, st.Type)
		if err != nil {
			return err
		}
		if t == TVoid {
			return errf(st.Pos, "local %s has type void", st.Name)
		}
		if st.Init != nil {
			it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if err := c.requireAssignable(st.Pos, it, t, st.Init); err != nil {
				return err
			}
		}
		li, err := c.declare(st.Pos, st.Name, t)
		if err != nil {
			return err
		}
		st.Info = li
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.E)
		return err
	case *If:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *DoWhile:
		c.loops++
		if err := c.checkStmt(st.Body); err != nil {
			c.loops--
			return err
		}
		c.loops--
		return c.checkCond(st.Cond)
	case *For:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *Return:
		want := c.method.Ret
		if st.E == nil {
			if want != TVoid {
				return errf(st.Pos, "missing return value (want %s)", want)
			}
			return nil
		}
		if want == TVoid {
			return errf(st.Pos, "void method returns a value")
		}
		t, err := c.checkExpr(st.E)
		if err != nil {
			return err
		}
		return c.requireAssignable(st.Pos, t, want, st.E)
	case *Break:
		if c.loops == 0 && c.sw == 0 {
			return errf(st.Pos, "break outside loop or switch")
		}
		return nil
	case *Continue:
		if c.loops == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *Throw:
		t, err := c.checkExpr(st.E)
		if err != nil {
			return err
		}
		throwable := c.prog.Classes["java/lang/Throwable"]
		if throwable == nil {
			return errf(st.Pos, "compile set lacks java/lang/Throwable")
		}
		if convertCost(t, throwable.Type()) < 0 {
			return errf(st.Pos, "thrown value of type %s is not Throwable", t)
		}
		return nil
	case *Try:
		if err := c.checkStmt(st.Body); err != nil {
			return err
		}
		for _, cat := range st.Catches {
			t, err := c.prog.resolveType(c.cls, cat.Type)
			if err != nil {
				return err
			}
			if t.Kind != KRef {
				return errf(cat.Pos, "catch of non-reference type %s", t)
			}
			throwable := c.prog.Classes["java/lang/Throwable"]
			if throwable != nil && convertCost(t, throwable.Type()) < 0 {
				return errf(cat.Pos, "catch of non-Throwable type %s", t)
			}
			cat.Cls = t.Cls
			c.push()
			li, err := c.declare(cat.Pos, cat.Name, t)
			if err != nil {
				c.pop()
				return err
			}
			cat.Info = li
			if err := c.checkStmt(cat.Body); err != nil {
				c.pop()
				return err
			}
			c.pop()
		}
		if st.Finally != nil {
			// The finally subroutine needs two hidden slots (return
			// address + pending exception); reserve them now.
			st.RetSlot = c.next
			st.ExcSlot = c.next + 1
			c.next += 2
			if c.next > c.max {
				c.max = c.next
			}
			return c.checkStmt(st.Finally)
		}
		return nil
	case *Switch:
		t, err := c.checkExpr(st.Subject)
		if err != nil {
			return err
		}
		if convertCost(t, TInt) < 0 {
			return errf(st.Pos, "switch subject must be int-compatible, got %s", t)
		}
		seen := map[int32]bool{}
		defaults := 0
		c.sw++
		defer func() { c.sw-- }()
		for _, cs := range st.Cases {
			for _, v := range cs.Values {
				if seen[v] {
					return errf(cs.Pos, "duplicate case label %d", v)
				}
				seen[v] = true
			}
			if cs.IsDefault {
				defaults++
				if defaults > 1 {
					return errf(cs.Pos, "multiple default labels")
				}
			}
			c.push()
			for _, inner := range cs.Body {
				if err := c.checkStmt(inner); err != nil {
					c.pop()
					return err
				}
			}
			c.pop()
		}
		return nil
	case *Synchronized:
		t, err := c.checkExpr(st.Lock)
		if err != nil {
			return err
		}
		if !t.IsRef() {
			return errf(st.Pos, "synchronized on non-reference type %s", t)
		}
		// Hidden slot for the saved lock reference.
		st.LockSlot = c.next
		c.next++
		if c.next > c.max {
			c.max = c.next
		}
		return c.checkStmt(st.Body)
	}
	return errf(Pos{}, "unhandled statement %T", s)
}

func (c *bodyCtx) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t != TBool {
		return errf(e.pos(), "condition must be boolean, got %s", t)
	}
	return nil
}

// stmtsAlwaysExit reports whether control cannot fall off the end.
func stmtsAlwaysExit(stmts []Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtAlwaysExits(stmts[len(stmts)-1])
}

func stmtAlwaysExits(s Stmt) bool {
	switch st := s.(type) {
	case *Return, *Throw:
		return true
	case *Block:
		return stmtsAlwaysExit(st.Stmts)
	case *If:
		return st.Else != nil && stmtAlwaysExits(st.Then) && stmtAlwaysExits(st.Else)
	case *While:
		// while(true) without break counts as exiting.
		if lit, ok := st.Cond.(*Lit); ok && lit.Kind == KEYWORD && lit.Text == "true" {
			return !containsBreak(st.Body)
		}
	case *Try:
		ok := stmtAlwaysExits(st.Body)
		for _, cat := range st.Catches {
			ok = ok && stmtAlwaysExits(cat.Body)
		}
		return ok
	case *Synchronized:
		return stmtAlwaysExits(st.Body)
	case *Switch:
		// Conservative: a switch always exits only if every case and a
		// default exist and all end in return/throw.
		hasDefault := false
		for _, cs := range st.Cases {
			if cs.IsDefault {
				hasDefault = true
			}
			if !stmtsAlwaysExit(cs.Body) {
				return false
			}
		}
		return hasDefault
	}
	return false
}

func containsBreak(s Stmt) bool {
	switch st := s.(type) {
	case *Break:
		return true
	case *Block:
		for _, inner := range st.Stmts {
			if containsBreak(inner) {
				return true
			}
		}
	case *If:
		if containsBreak(st.Then) {
			return true
		}
		if st.Else != nil && containsBreak(st.Else) {
			return true
		}
	case *Try:
		if containsBreak(st.Body) {
			return true
		}
		for _, cat := range st.Catches {
			if containsBreak(cat.Body) {
				return true
			}
		}
		if st.Finally != nil && containsBreak(st.Finally) {
			return true
		}
	case *Synchronized:
		return containsBreak(st.Body)
	}
	// break inside nested loops/switches binds to them, but being
	// conservative here only weakens the always-exits analysis.
	return false
}

package minijava

import "strings"

// parser is a recursive-descent parser with single-token backtracking
// via saved cursor positions.
type parser struct {
	toks []Token
	pos  int
}

// ParseFile parses one source file.
func ParseFile(filename, src string) (*File, error) {
	toks, err := lex(filename, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.Kind == KEYWORD && t.Text == kw
}

func (p *parser) isP(punct string) bool {
	t := p.cur()
	return t.Kind == PUNCT && t.Text == punct
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptP(punct string) bool {
	if p.isP(punct) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectP(punct string) error {
	if !p.acceptP(punct) {
		return errf(p.cur().Pos, "expected %q, found %q", punct, p.cur().Text)
	}
	return nil
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return errf(p.cur().Pos, "expected %q, found %q", kw, p.cur().Text)
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != IDENT {
		return t, errf(t.Pos, "expected identifier, found %q", t.Text)
	}
	p.pos++
	return t, nil
}

// qualified parses Ident{.Ident} into a dotted name.
func (p *parser) qualified() (string, error) {
	t, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	parts := []string{t.Text}
	for p.isP(".") && p.toks[p.pos+1].Kind == IDENT {
		p.pos++
		t, _ := p.expectIdent()
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, "."), nil
}

func (p *parser) file() (*File, error) {
	f := &File{}
	if p.acceptKw("package") {
		name, err := p.qualified()
		if err != nil {
			return nil, err
		}
		f.Package = name
		if err := p.expectP(";"); err != nil {
			return nil, err
		}
	}
	for p.acceptKw("import") {
		name, err := p.qualified()
		if err != nil {
			return nil, err
		}
		// Allow and ignore trailing ".*" wildcard imports.
		if p.acceptP(".") {
			if !p.acceptP("*") {
				return nil, errf(p.cur().Pos, "expected '*' in wildcard import")
			}
			name += ".*"
		}
		f.Imports = append(f.Imports, name)
		if err := p.expectP(";"); err != nil {
			return nil, err
		}
	}
	for p.cur().Kind != EOF {
		cd, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, cd)
	}
	return f, nil
}

type mods struct {
	public, private, protected bool
	static, final, native      bool
	abstract, synchronized     bool
}

func (p *parser) modifiers() mods {
	var m mods
	for {
		switch {
		case p.acceptKw("public"):
			m.public = true
		case p.acceptKw("private"):
			m.private = true
		case p.acceptKw("protected"):
			m.protected = true
		case p.acceptKw("static"):
			m.static = true
		case p.acceptKw("final"):
			m.final = true
		case p.acceptKw("native"):
			m.native = true
		case p.acceptKw("abstract"):
			m.abstract = true
		case p.acceptKw("synchronized"):
			m.synchronized = true
		default:
			return m
		}
	}
}

func (p *parser) classDecl() (*ClassDecl, error) {
	m := p.modifiers()
	cd := &ClassDecl{Pos: p.cur().Pos, IsAbstract: m.abstract}
	switch {
	case p.acceptKw("class"):
	case p.acceptKw("interface"):
		cd.IsInterface = true
	default:
		return nil, errf(p.cur().Pos, "expected class or interface declaration")
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cd.Name = t.Text
	if p.acceptKw("extends") {
		name, err := p.qualified()
		if err != nil {
			return nil, err
		}
		if cd.IsInterface {
			// Interface inheritance: treat extended interfaces as
			// the interface list.
			cd.Interfaces = append(cd.Interfaces, name)
			for p.acceptP(",") {
				n, err := p.qualified()
				if err != nil {
					return nil, err
				}
				cd.Interfaces = append(cd.Interfaces, n)
			}
		} else {
			cd.Super = name
		}
	}
	if p.acceptKw("implements") {
		for {
			name, err := p.qualified()
			if err != nil {
				return nil, err
			}
			cd.Interfaces = append(cd.Interfaces, name)
			if !p.acceptP(",") {
				break
			}
		}
	}
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	for !p.acceptP("}") {
		if p.cur().Kind == EOF {
			return nil, errf(p.cur().Pos, "unexpected end of file in class %s", cd.Name)
		}
		if err := p.member(cd); err != nil {
			return nil, err
		}
	}
	return cd, nil
}

func (p *parser) member(cd *ClassDecl) error {
	start := p.cur().Pos
	m := p.modifiers()

	// static { ... } initializer block.
	if m.static && p.isP("{") {
		blk, err := p.block()
		if err != nil {
			return err
		}
		cd.StaticInit = append(cd.StaticInit, blk.Stmts...)
		return nil
	}

	// Constructor: Name ( ... )
	if t := p.cur(); t.Kind == IDENT && t.Text == cd.Name && p.toks[p.pos+1].Kind == PUNCT && p.toks[p.pos+1].Text == "(" {
		p.pos++
		md := &MethodDecl{Pos: start, Name: "<init>", Synchronized: m.synchronized}
		if err := p.params(md); err != nil {
			return err
		}
		p.skipThrows()
		body, err := p.block()
		if err != nil {
			return err
		}
		md.Body = body.Stmts
		md.HasBody = true
		cd.Ctors = append(cd.Ctors, md)
		return nil
	}

	// Field or method: Type Name ...
	typ, err := p.typeExpr(true)
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.isP("(") {
		md := &MethodDecl{
			Pos: start, Name: nameTok.Text, Ret: typ,
			Static: m.static, Native: m.native,
			Abstract: m.abstract || cd.IsInterface, Synchronized: m.synchronized,
		}
		if err := p.params(md); err != nil {
			return err
		}
		p.skipThrows()
		if md.Native || md.Abstract {
			if err := p.expectP(";"); err != nil {
				return err
			}
		} else {
			body, err := p.block()
			if err != nil {
				return err
			}
			md.Body = body.Stmts
			md.HasBody = true
		}
		cd.Methods = append(cd.Methods, md)
		return nil
	}
	// Field declaration, possibly several declarators.
	for {
		fd := &FieldDecl{Pos: start, Name: nameTok.Text, Type: typ, Static: m.static, Final: m.final}
		if p.acceptP("=") {
			e, err := p.expr()
			if err != nil {
				return err
			}
			fd.Init = e
		}
		cd.Fields = append(cd.Fields, fd)
		if !p.acceptP(",") {
			break
		}
		nameTok, err = p.expectIdent()
		if err != nil {
			return err
		}
	}
	return p.expectP(";")
}

func (p *parser) skipThrows() {
	if p.acceptKw("throws") {
		for {
			if _, err := p.qualified(); err != nil {
				return
			}
			if !p.acceptP(",") {
				return
			}
		}
	}
}

func (p *parser) params(md *MethodDecl) error {
	if err := p.expectP("("); err != nil {
		return err
	}
	if p.acceptP(")") {
		return nil
	}
	for {
		typ, err := p.typeExpr(false)
		if err != nil {
			return err
		}
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		// C-style trailing array dims on the parameter name.
		for p.isP("[") && p.toks[p.pos+1].Text == "]" {
			p.pos += 2
			typ.Dims++
		}
		md.Params = append(md.Params, Param{Pos: t.Pos, Name: t.Text, Type: typ})
		if !p.acceptP(",") {
			break
		}
	}
	return p.expectP(")")
}

var primTypeNames = map[string]bool{
	"boolean": true, "byte": true, "short": true, "char": true,
	"int": true, "long": true, "float": true, "double": true,
}

// typeExpr parses a type. allowVoid permits "void" (method returns).
func (p *parser) typeExpr(allowVoid bool) (TypeExpr, error) {
	t := p.cur()
	te := TypeExpr{Pos: t.Pos}
	switch {
	case t.Kind == KEYWORD && primTypeNames[t.Text]:
		p.pos++
		te.Name = t.Text
	case t.Kind == KEYWORD && t.Text == "void" && allowVoid:
		p.pos++
		te.Name = "void"
		return te, nil
	case t.Kind == IDENT:
		name, err := p.qualified()
		if err != nil {
			return te, err
		}
		te.Name = name
	default:
		return te, errf(t.Pos, "expected type, found %q", t.Text)
	}
	for p.isP("[") && p.toks[p.pos+1].Kind == PUNCT && p.toks[p.pos+1].Text == "]" {
		p.pos += 2
		te.Dims++
	}
	return te, nil
}

// --- statements ---

func (p *parser) block() (*Block, error) {
	start := p.cur().Pos
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: start}
	for !p.acceptP("}") {
		if p.cur().Kind == EOF {
			return nil, errf(p.cur().Pos, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isP("{"):
		return p.block()
	case p.isP(";"):
		p.pos++
		return &Block{Pos: t.Pos}, nil
	case p.isKw("if"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		st := &If{Pos: t.Pos, Cond: cond, Then: then}
		if p.acceptKw("else") {
			els, err := p.stmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.isKw("while"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{Pos: t.Pos, Cond: cond, Body: body}, nil
	case p.isKw("do"):
		p.pos++
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("while"); err != nil {
			return nil, err
		}
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		if err := p.expectP(";"); err != nil {
			return nil, err
		}
		return &DoWhile{Pos: t.Pos, Body: body, Cond: cond}, nil
	case p.isKw("for"):
		return p.forStmt()
	case p.isKw("return"):
		p.pos++
		st := &Return{Pos: t.Pos}
		if !p.isP(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.E = e
		}
		return st, p.expectP(";")
	case p.isKw("break"):
		p.pos++
		return &Break{Pos: t.Pos}, p.expectP(";")
	case p.isKw("continue"):
		p.pos++
		return &Continue{Pos: t.Pos}, p.expectP(";")
	case p.isKw("throw"):
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Throw{Pos: t.Pos, E: e}, p.expectP(";")
	case p.isKw("try"):
		return p.tryStmt()
	case p.isKw("switch"):
		return p.switchStmt()
	case p.isKw("synchronized"):
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		lock, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Synchronized{Pos: t.Pos, Lock: lock, Body: body}, nil
	}
	// Local variable declaration vs expression statement: speculate.
	if lv, ok := p.tryLocalVar(); ok {
		return lv, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.Pos, E: e}, p.expectP(";")
}

// tryLocalVar speculatively parses "Type Ident [= Expr] {, Ident [= Expr]} ;".
// On failure the cursor is restored. Multiple declarators desugar to a
// Block of LocalVars.
func (p *parser) tryLocalVar() (Stmt, bool) {
	save := p.pos
	start := p.cur().Pos
	t := p.cur()
	isType := (t.Kind == KEYWORD && primTypeNames[t.Text]) || t.Kind == IDENT
	if !isType {
		return nil, false
	}
	typ, err := p.typeExpr(false)
	if err != nil {
		p.pos = save
		return nil, false
	}
	if p.cur().Kind != IDENT {
		p.pos = save
		return nil, false
	}
	// Ambiguity guard: "a b" is a declaration only when followed by
	// '=', ';' or ','.
	nxt := p.toks[p.pos+1]
	if !(nxt.Kind == PUNCT && (nxt.Text == "=" || nxt.Text == ";" || nxt.Text == ",")) {
		p.pos = save
		return nil, false
	}
	var decls []Stmt
	for {
		nameTok, err := p.expectIdent()
		if err != nil {
			p.pos = save
			return nil, false
		}
		lv := &LocalVar{Pos: start, Name: nameTok.Text, Type: typ}
		if p.acceptP("=") {
			e, err := p.expr()
			if err != nil {
				p.pos = save
				return nil, false
			}
			lv.Init = e
		}
		decls = append(decls, lv)
		if !p.acceptP(",") {
			break
		}
	}
	if err := p.expectP(";"); err != nil {
		p.pos = save
		return nil, false
	}
	if len(decls) == 1 {
		return decls[0], true
	}
	return &Block{Pos: start, Stmts: decls}, true
}

func (p *parser) forStmt() (Stmt, error) {
	start := p.cur().Pos
	p.pos++ // for
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	st := &For{Pos: start}
	if !p.isP(";") {
		if lv, ok := p.tryLocalVarNoSemi(); ok {
			st.Init = lv
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{Pos: start, E: e}
		}
	}
	if err := p.expectP(";"); err != nil {
		return nil, err
	}
	if !p.isP(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectP(";"); err != nil {
		return nil, err
	}
	if !p.isP(")") {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// tryLocalVarNoSemi is tryLocalVar without the trailing semicolon
// (for-loop initializers).
func (p *parser) tryLocalVarNoSemi() (Stmt, bool) {
	save := p.pos
	start := p.cur().Pos
	t := p.cur()
	isType := (t.Kind == KEYWORD && primTypeNames[t.Text]) || t.Kind == IDENT
	if !isType {
		return nil, false
	}
	typ, err := p.typeExpr(false)
	if err != nil {
		p.pos = save
		return nil, false
	}
	if p.cur().Kind != IDENT {
		p.pos = save
		return nil, false
	}
	nxt := p.toks[p.pos+1]
	if !(nxt.Kind == PUNCT && nxt.Text == "=") {
		p.pos = save
		return nil, false
	}
	nameTok, _ := p.expectIdent()
	p.pos++ // =
	e, err := p.expr()
	if err != nil {
		p.pos = save
		return nil, false
	}
	return &LocalVar{Pos: start, Name: nameTok.Text, Type: typ, Init: e}, true
}

func (p *parser) tryStmt() (Stmt, error) {
	start := p.cur().Pos
	p.pos++ // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &Try{Pos: start, Body: body}
	for p.isKw("catch") {
		p.pos++
		if err := p.expectP("("); err != nil {
			return nil, err
		}
		typ, err := p.typeExpr(false)
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectP(")"); err != nil {
			return nil, err
		}
		cbody, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Catches = append(st.Catches, &Catch{Pos: typ.Pos, Type: typ, Name: nameTok.Text, Body: cbody})
	}
	if p.acceptKw("finally") {
		fbody, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Finally = fbody
	}
	if len(st.Catches) == 0 && st.Finally == nil {
		return nil, errf(start, "try without catch or finally")
	}
	return st, nil
}

func (p *parser) switchStmt() (Stmt, error) {
	start := p.cur().Pos
	p.pos++ // switch
	if err := p.expectP("("); err != nil {
		return nil, err
	}
	subj, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	if err := p.expectP("{"); err != nil {
		return nil, err
	}
	st := &Switch{Pos: start, Subject: subj}
	var cur *SwitchCase
	for !p.acceptP("}") {
		switch {
		case p.isKw("case"):
			p.pos++
			v, err := p.caseLabel()
			if err != nil {
				return nil, err
			}
			if err := p.expectP(":"); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Body) > 0 {
				cur = &SwitchCase{Pos: p.cur().Pos}
				st.Cases = append(st.Cases, cur)
			}
			cur.Values = append(cur.Values, v)
		case p.isKw("default"):
			p.pos++
			if err := p.expectP(":"); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Body) > 0 {
				cur = &SwitchCase{Pos: p.cur().Pos}
				st.Cases = append(st.Cases, cur)
			}
			cur.IsDefault = true
		case p.cur().Kind == EOF:
			return nil, errf(p.cur().Pos, "unexpected end of file in switch")
		default:
			if cur == nil {
				return nil, errf(p.cur().Pos, "statement before first case label")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, s)
		}
	}
	return st, nil
}

// caseLabel parses a constant case label: an integer or character
// literal, optionally negated.
func (p *parser) caseLabel() (int32, error) {
	neg := p.acceptP("-")
	t := p.next()
	var v int64
	switch t.Kind {
	case INTLIT, CHARLIT:
		v = t.Int
	default:
		return 0, errf(t.Pos, "case label must be an integer or char literal")
	}
	if neg {
		v = -v
	}
	return int32(v), nil
}

package minijava

import "strings"

// TypeKind classifies a semantic type.
type TypeKind int

// Type kinds.
const (
	KVoid TypeKind = iota
	KBool
	KByte
	KChar
	KShort
	KInt
	KLong
	KFloat
	KDouble
	KRef   // class or interface
	KArray // array of Elem
	KNull  // the type of the null literal
)

// Type is a semantic type. Primitives are singletons; refs carry their
// class symbol; arrays carry their element type.
type Type struct {
	Kind TypeKind
	Cls  *ClassSym
	Elem *Type
}

// The primitive type singletons.
var (
	TVoid   = &Type{Kind: KVoid}
	TBool   = &Type{Kind: KBool}
	TByte   = &Type{Kind: KByte}
	TChar   = &Type{Kind: KChar}
	TShort  = &Type{Kind: KShort}
	TInt    = &Type{Kind: KInt}
	TLong   = &Type{Kind: KLong}
	TFloat  = &Type{Kind: KFloat}
	TDouble = &Type{Kind: KDouble}
	TNull   = &Type{Kind: KNull}
)

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem *Type) *Type { return &Type{Kind: KArray, Elem: elem} }

// IsNumeric reports whether t is a numeric primitive (char included,
// as in Java's numeric promotion).
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case KByte, KChar, KShort, KInt, KLong, KFloat, KDouble:
		return true
	}
	return false
}

// IsIntegral reports whether t is an integral primitive.
func (t *Type) IsIntegral() bool {
	switch t.Kind {
	case KByte, KChar, KShort, KInt, KLong:
		return true
	}
	return false
}

// IsRef reports whether t is a reference type (class, array or null).
func (t *Type) IsRef() bool {
	return t.Kind == KRef || t.Kind == KArray || t.Kind == KNull
}

// Wide reports whether t occupies two slots.
func (t *Type) Wide() bool { return t.Kind == KLong || t.Kind == KDouble }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KRef:
		return t.Cls == o.Cls
	case KArray:
		return t.Elem.Equal(o.Elem)
	}
	return true
}

// Desc returns the JVM type descriptor.
func (t *Type) Desc() string {
	switch t.Kind {
	case KVoid:
		return "V"
	case KBool:
		return "Z"
	case KByte:
		return "B"
	case KChar:
		return "C"
	case KShort:
		return "S"
	case KInt:
		return "I"
	case KLong:
		return "J"
	case KFloat:
		return "F"
	case KDouble:
		return "D"
	case KRef:
		return "L" + t.Cls.Name + ";"
	case KArray:
		return "[" + t.Elem.Desc()
	}
	return "?"
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KBool:
		return "boolean"
	case KByte:
		return "byte"
	case KChar:
		return "char"
	case KShort:
		return "short"
	case KInt:
		return "int"
	case KLong:
		return "long"
	case KFloat:
		return "float"
	case KDouble:
		return "double"
	case KRef:
		return strings.ReplaceAll(t.Cls.Name, "/", ".")
	case KArray:
		return t.Elem.String() + "[]"
	case KNull:
		return "null"
	}
	return "?"
}

// ClassSym is a resolved class or interface.
type ClassSym struct {
	Name        string // internal name, e.g. "java/lang/String"
	Decl        *ClassDecl
	File        *File // for import resolution
	Super       *ClassSym
	Interfaces  []*ClassSym
	Fields      []*FieldSym
	Methods     []*MethodSym // includes constructors and <clinit>
	IsInterface bool
	IsAbstract  bool

	// ClinitMaxLocals is the local-slot requirement of the static
	// initializer blocks (set by the checker).
	ClinitMaxLocals int

	typ *Type
}

// Type returns the reference type for this class.
func (c *ClassSym) Type() *Type {
	if c.typ == nil {
		c.typ = &Type{Kind: KRef, Cls: c}
	}
	return c.typ
}

// IsSubclassOf walks the superclass chain (classes only).
func (c *ClassSym) IsSubclassOf(o *ClassSym) bool {
	for k := c; k != nil; k = k.Super {
		if k == o {
			return true
		}
	}
	return false
}

// Implements reports whether c (transitively) implements iface.
func (c *ClassSym) Implements(iface *ClassSym) bool {
	for k := c; k != nil; k = k.Super {
		for _, i := range k.Interfaces {
			if i == iface || i.Implements(iface) {
				return true
			}
		}
	}
	return false
}

// FieldSym is a resolved field.
type FieldSym struct {
	Owner  *ClassSym
	Name   string
	Type   *Type
	Static bool
	Final  bool
	Decl   *FieldDecl
}

// MethodSym is a resolved method or constructor.
type MethodSym struct {
	Owner        *ClassSym
	Name         string
	Params       []*Type
	Ret          *Type
	Static       bool
	Native       bool
	Abstract     bool
	Synchronized bool
	Decl         *MethodDecl
	// MaxLocals is the local-slot requirement of the body (set by the
	// checker).
	MaxLocals int
}

// Descriptor returns the JVM method descriptor.
func (m *MethodSym) Descriptor() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, p := range m.Params {
		b.WriteString(p.Desc())
	}
	b.WriteByte(')')
	b.WriteString(m.Ret.Desc())
	return b.String()
}

// LocalInfo is a resolved local variable or parameter.
type LocalInfo struct {
	Name string
	Type *Type
	Slot int
}

// Program is the result of semantic analysis over a whole compile set.
type Program struct {
	Classes map[string]*ClassSym // by internal name
	// Order preserves declaration order for deterministic output.
	Order []*ClassSym
}

// Lookup finds a class by internal name.
func (p *Program) Lookup(internal string) *ClassSym { return p.Classes[internal] }

// lookupField walks the hierarchy for a field.
func lookupField(c *ClassSym, name string) *FieldSym {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f.Name == name {
				return f
			}
		}
		// Interface constants.
		for _, i := range k.Interfaces {
			if f := lookupField(i, name); f != nil {
				return f
			}
		}
	}
	return nil
}

// methodsNamed collects all methods with the given name visible on c
// (walking superclasses and interfaces), nearest first.
func methodsNamed(c *ClassSym, name string) []*MethodSym {
	var out []*MethodSym
	seen := make(map[string]bool) // descriptor+name dedup (overrides)
	var visit func(k *ClassSym)
	visit = func(k *ClassSym) {
		if k == nil {
			return
		}
		for _, m := range k.Methods {
			if m.Name != name {
				continue
			}
			key := m.Name + m.Descriptor()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, m)
		}
		visit(k.Super)
		for _, i := range k.Interfaces {
			visit(i)
		}
	}
	visit(c)
	return out
}

package minijava

import (
	"sort"

	"doppio/internal/classfile"
)

func (g *genCtx) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		for _, inner := range st.Stmts {
			if err := g.genStmt(inner); err != nil {
				return err
			}
		}
		return nil

	case *LocalVar:
		if st.Init == nil {
			return nil
		}
		t, err := g.genExpr(st.Init)
		if err != nil {
			return err
		}
		g.convert(t, st.Info.Type)
		g.a.storeLocal(st.Info.Type, st.Info.Slot)
		return nil

	case *ExprStmt:
		return g.genExprStmt(st.E)

	case *If:
		elseL := g.a.newLabel()
		if err := g.genExpr2(st.Cond); err != nil {
			return err
		}
		g.a.branch(classfile.OpIfeq, elseL, -1)
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			g.a.bind(elseL)
			return nil
		}
		endL := g.a.newLabel()
		g.a.branch(classfile.OpGoto, endL, 0)
		g.a.bind(elseL)
		if err := g.genStmt(st.Else); err != nil {
			return err
		}
		g.a.bind(endL)
		return nil

	case *While:
		top := g.a.newLabel()
		end := g.a.newLabel()
		g.a.bind(top)
		if lit, ok := st.Cond.(*Lit); !ok || lit.Kind != KEYWORD || lit.Text != "true" {
			if err := g.genExpr2(st.Cond); err != nil {
				return err
			}
			g.a.branch(classfile.OpIfeq, end, -1)
		}
		g.pushLoop(end, top)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.popLoop()
		g.a.branch(classfile.OpGoto, top, 0)
		g.a.bind(end)
		return nil

	case *DoWhile:
		top := g.a.newLabel()
		end := g.a.newLabel()
		cont := g.a.newLabel()
		g.a.bind(top)
		g.pushLoop(end, cont)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.popLoop()
		g.a.bind(cont)
		if err := g.genExpr2(st.Cond); err != nil {
			return err
		}
		g.a.branch(classfile.OpIfne, top, -1)
		g.a.bind(end)
		return nil

	case *For:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.a.newLabel()
		end := g.a.newLabel()
		cont := g.a.newLabel()
		g.a.bind(top)
		if st.Cond != nil {
			if err := g.genExpr2(st.Cond); err != nil {
				return err
			}
			g.a.branch(classfile.OpIfeq, end, -1)
		}
		g.pushLoop(end, cont)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.popLoop()
		g.a.bind(cont)
		if st.Post != nil {
			if err := g.genExprStmt(st.Post); err != nil {
				return err
			}
		}
		g.a.branch(classfile.OpGoto, top, 0)
		g.a.bind(end)
		return nil

	case *Return:
		ret := g.ms.Ret
		if st.E != nil {
			t, err := g.genExpr(st.E)
			if err != nil {
				return err
			}
			g.convert(t, ret)
		}
		if len(g.actions) > 0 {
			// Run finally/monitor exits with the return value parked
			// in the scratch slot.
			if st.E != nil {
				g.a.storeLocal(ret, g.scratch)
			}
			for i := len(g.actions) - 1; i >= 0; i-- {
				g.actions[i].emitExit(g)
			}
			if st.E != nil {
				g.a.loadLocal(ret, g.scratch)
			}
		}
		switch {
		case st.E == nil:
			g.a.op(classfile.OpReturn, 0)
		case ret.Kind == KLong:
			g.a.op(classfile.OpLreturn, -2)
		case ret.Kind == KFloat:
			g.a.op(classfile.OpFreturn, -1)
		case ret.Kind == KDouble:
			g.a.op(classfile.OpDreturn, -2)
		case ret.IsRef():
			g.a.op(classfile.OpAreturn, -1)
		default:
			g.a.op(classfile.OpIreturn, -1)
		}
		g.a.deadEnd()
		return nil

	case *Break:
		tgt := g.breaks[len(g.breaks)-1]
		for i := len(g.actions) - 1; i >= tgt.depth; i-- {
			g.actions[i].emitExit(g)
		}
		g.a.branch(classfile.OpGoto, tgt.l, 0)
		return nil

	case *Continue:
		tgt := g.continues[len(g.continues)-1]
		for i := len(g.actions) - 1; i >= tgt.depth; i-- {
			g.actions[i].emitExit(g)
		}
		g.a.branch(classfile.OpGoto, tgt.l, 0)
		return nil

	case *Throw:
		if _, err := g.genExpr(st.E); err != nil {
			return err
		}
		g.a.op(classfile.OpAthrow, -1)
		g.a.deadEnd()
		return nil

	case *Try:
		return g.genTry(st)

	case *Switch:
		return g.genSwitch(st)

	case *Synchronized:
		return g.genSynchronized(st)
	}
	return errf(Pos{}, "unhandled statement in codegen: %T", s)
}

// genExprStmt evaluates e and discards its value.
func (g *genCtx) genExprStmt(e Expr) error {
	// Assignments and ++/-- have no-value fast paths.
	switch ex := e.(type) {
	case *Assign:
		return g.genAssign(ex, false)
	case *Unary:
		if ex.Op == "++" || ex.Op == "--" {
			return g.genIncDec(ex, false)
		}
	}
	t, err := g.genExpr(e)
	if err != nil {
		return err
	}
	switch {
	case t == TVoid:
	case t.Wide():
		g.a.op(classfile.OpPop2, -2)
	default:
		g.a.op(classfile.OpPop, -1)
	}
	return nil
}

func (g *genCtx) pushLoop(breakL, contL *label) {
	g.breaks = append(g.breaks, exitTarget{l: breakL, depth: len(g.actions)})
	g.continues = append(g.continues, exitTarget{l: contL, depth: len(g.actions)})
}

func (g *genCtx) popLoop() {
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.continues = g.continues[:len(g.continues)-1]
}

// genTry compiles try/catch/finally. Finally blocks become jsr/ret
// subroutines, the classic 2nd-edition compilation scheme (§6.6's
// exception machinery relies on the VM walking the virtual stack).
func (g *genCtx) genTry(st *Try) error {
	var finSub *label
	if st.Finally != nil {
		finSub = g.a.newLabel()
		g.actions = append(g.actions, finallyExit{sub: finSub})
	}
	bodyStart := g.a.newLabel()
	bodyEnd := g.a.newLabel()
	endL := g.a.newLabel()

	g.a.bind(bodyStart)
	if err := g.genStmt(st.Body); err != nil {
		return err
	}
	g.a.bind(bodyEnd)
	if g.a.stack >= 0 { // body may fall through
		if finSub != nil {
			g.a.jsr(finSub)
		}
		g.a.branch(classfile.OpGoto, endL, 0)
	}

	// Catch handlers.
	type handlerRange struct {
		h   *label
		cls *ClassSym
	}
	var handlers []handlerRange
	for _, cat := range st.Catches {
		h := g.a.newLabel()
		handlers = append(handlers, handlerRange{h, cat.Cls})
		g.a.bindHandler(h)
		g.a.storeLocal(cat.Info.Type, cat.Info.Slot)
		if err := g.genStmt(cat.Body); err != nil {
			return err
		}
		if g.a.stack >= 0 {
			if finSub != nil {
				g.a.jsr(finSub)
			}
			g.a.branch(classfile.OpGoto, endL, 0)
		}
	}
	allEnd := g.a.newLabel()
	g.a.bind(allEnd)

	// Specific catch rows come first: the VM searches the table in
	// order, and the finally catch-all must only see exceptions the
	// catches did not handle (or that arose inside catch bodies).
	for _, hr := range handlers {
		g.a.exception(bodyStart, bodyEnd, hr.h, g.a.pool.Class(hr.cls.Name))
	}
	if finSub != nil {
		g.actions = g.actions[:len(g.actions)-1]
		// Catch-all: run finally, rethrow.
		hf := g.a.newLabel()
		g.a.bindHandler(hf)
		g.a.storeLocal(TNull, st.ExcSlot)
		g.a.jsr(finSub)
		g.a.loadLocal(TNull, st.ExcSlot)
		g.a.op(classfile.OpAthrow, -1)
		g.a.deadEnd()
		// The finally subroutine itself.
		g.a.bind(finSub)
		g.a.storeLocal(TNull, st.RetSlot) // return address
		if err := g.genStmt(st.Finally); err != nil {
			return err
		}
		if g.a.stack >= 0 {
			if st.RetSlot < 256 {
				g.a.opU8(classfile.OpRet, byte(st.RetSlot), 0)
			} else {
				g.a.code = append(g.a.code, classfile.OpWide, classfile.OpRet,
					byte(st.RetSlot>>8), byte(st.RetSlot))
			}
			g.a.deadEnd()
		}
		g.a.exception(bodyStart, allEnd, hf, 0)
	}
	g.a.bind(endL)
	return nil
}

func (g *genCtx) genSwitch(st *Switch) error {
	t, err := g.genExpr(st.Subject)
	if err != nil {
		return err
	}
	g.convert(t, TInt)

	end := g.a.newLabel()
	defL := g.a.newLabel()
	hasDefault := false
	type pair struct {
		v int32
		l *label
	}
	var pairs []pair
	caseLabels := make([]*label, len(st.Cases))
	for i, cs := range st.Cases {
		caseLabels[i] = g.a.newLabel()
		for _, v := range cs.Values {
			pairs = append(pairs, pair{v, caseLabels[i]})
		}
		if cs.IsDefault {
			hasDefault = true
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })

	actualDef := defL
	if len(pairs) == 0 {
		g.a.op(classfile.OpPop, -1)
	} else {
		low, high := pairs[0].v, pairs[len(pairs)-1].v
		span := int64(high) - int64(low) + 1
		if span <= 2*int64(len(pairs))+8 {
			targets := make([]*label, span)
			for i := range targets {
				targets[i] = actualDef
			}
			for _, p := range pairs {
				targets[p.v-low] = p.l
			}
			// noteStack for default label happens inside tableswitch.
			g.a.tableswitch(low, high, actualDef, targets)
		} else {
			keys := make([]int32, len(pairs))
			targets := make([]*label, len(pairs))
			for i, p := range pairs {
				keys[i] = p.v
				targets[i] = p.l
			}
			g.a.lookupswitch(actualDef, keys, targets)
		}
	}

	g.breaks = append(g.breaks, exitTarget{l: end, depth: len(g.actions)})
	for i, cs := range st.Cases {
		if cs.IsDefault {
			g.a.bind(defL)
			// Bind the case label too so fallthrough works.
			if caseLabels[i].pc < 0 {
				g.a.bind(caseLabels[i])
			}
		} else {
			g.a.bind(caseLabels[i])
		}
		for _, inner := range cs.Body {
			if err := g.genStmt(inner); err != nil {
				return err
			}
		}
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	if !hasDefault {
		g.a.bind(defL)
	}
	g.a.bind(end)
	return nil
}

func (g *genCtx) genSynchronized(st *Synchronized) error {
	if _, err := g.genExpr(st.Lock); err != nil {
		return err
	}
	g.a.op(classfile.OpDup, 1)
	g.a.storeLocal(TNull, st.LockSlot)
	g.a.op(classfile.OpMonitorenter, -1)

	start := g.a.newLabel()
	endBody := g.a.newLabel()
	endL := g.a.newLabel()
	g.a.bind(start)
	g.actions = append(g.actions, monitorRelease{slot: st.LockSlot})
	if err := g.genStmt(st.Body); err != nil {
		return err
	}
	g.actions = g.actions[:len(g.actions)-1]
	if g.a.stack >= 0 {
		g.a.loadLocal(TNull, st.LockSlot)
		g.a.op(classfile.OpMonitorexit, -1)
		g.a.branch(classfile.OpGoto, endL, 0)
	}
	g.a.bind(endBody)
	// Exceptional path: release the monitor and rethrow.
	h := g.a.newLabel()
	g.a.bindHandler(h)
	g.a.loadLocal(TNull, st.LockSlot)
	g.a.op(classfile.OpMonitorexit, -1)
	g.a.op(classfile.OpAthrow, -1)
	g.a.deadEnd()
	g.a.exception(start, endBody, h, 0)
	g.a.bind(endL)
	return nil
}

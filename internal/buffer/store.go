// Package buffer reimplements the Node JS Buffer module as Doppio does
// in the browser (§5.1, "Binary Data in the Browser"): a mutable byte
// buffer with typed accessors for signed/unsigned integers and floats
// of various sizes, plus string codecs (ascii, utf8, utf16le/ucs2,
// base64, hex, binary/latin1) and the packed "binary string" format
// that stores two bytes of data per UTF-16 character.
//
// A Buffer is backed either by a typed array (a real byte slice) or —
// on browsers without typed arrays, such as IE8 — by a plain JavaScript
// array of numbers, modelled here as a float64 slice holding one byte
// value per element. The two stores are observably identical but differ
// in cost, which the ablation benchmarks (DESIGN.md D3) measure.
package buffer

// Store is the raw backing storage of a Buffer: a fixed-length sequence
// of bytes.
type Store interface {
	// Len returns the store's length in bytes.
	Len() int
	// Get returns the byte at index i.
	Get(i int) byte
	// Set writes the byte at index i.
	Set(i int, b byte)
	// CopyIn copies src into the store starting at off.
	CopyIn(off int, src []byte)
	// CopyOut copies store bytes [off, off+len(dst)) into dst.
	CopyOut(off int, dst []byte)
}

// TypedStore backs a Buffer with an ArrayBuffer/typed array — a real
// byte slice.
type TypedStore []byte

// NewTypedStore allocates a zeroed typed store of n bytes.
func NewTypedStore(n int) TypedStore { return make(TypedStore, n) }

// Len returns the length in bytes.
func (s TypedStore) Len() int { return len(s) }

// Get returns the byte at index i.
func (s TypedStore) Get(i int) byte { return s[i] }

// Set writes the byte at index i.
func (s TypedStore) Set(i int, b byte) { s[i] = b }

// CopyIn copies src into the store at off.
func (s TypedStore) CopyIn(off int, src []byte) { copy(s[off:], src) }

// CopyOut copies bytes starting at off into dst.
func (s TypedStore) CopyOut(off int, dst []byte) { copy(dst, s[off:]) }

// NumberStore backs a Buffer with a plain JavaScript array of numbers:
// one float64 per byte, as Doppio must use on browsers without typed
// arrays. Every access pays a float⇄int conversion, as in JS.
type NumberStore []float64

// NewNumberStore allocates a zeroed number store of n bytes.
func NewNumberStore(n int) NumberStore { return make(NumberStore, n) }

// Len returns the length in bytes.
func (s NumberStore) Len() int { return len(s) }

// Get returns the byte at index i.
func (s NumberStore) Get(i int) byte { return byte(int32(s[i])) }

// Set writes the byte at index i.
func (s NumberStore) Set(i int, b byte) { s[i] = float64(b) }

// CopyIn copies src into the store at off.
func (s NumberStore) CopyIn(off int, src []byte) {
	for i, b := range src {
		if off+i >= len(s) {
			break
		}
		s[off+i] = float64(b)
	}
}

// CopyOut copies bytes starting at off into dst.
func (s NumberStore) CopyOut(off int, dst []byte) {
	for i := range dst {
		if off+i >= len(s) {
			break
		}
		dst[i] = byte(int32(s[off+i]))
	}
}

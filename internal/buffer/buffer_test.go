package buffer

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

var factories = map[string]*Factory{
	"typed":            {Typed: true},
	"number":           {Typed: false},
	"typed-validating": {Typed: true, ValidatesStrings: true},
}

func TestNewZeroed(t *testing.T) {
	for name, f := range factories {
		b := f.New(8)
		if b.Len() != 8 {
			t.Errorf("%s: Len = %d", name, b.Len())
		}
		for i := 0; i < 8; i++ {
			if b.ReadUInt8(i) != 0 {
				t.Errorf("%s: byte %d not zeroed", name, i)
			}
		}
	}
}

func TestIntAccessorsRoundTrip(t *testing.T) {
	for name, f := range factories {
		b := f.New(16)
		b.WriteUInt16LE(0xBEEF, 0)
		if b.ReadUInt16LE(0) != 0xBEEF || b.ReadUInt16BE(0) != 0xEFBE {
			t.Errorf("%s: u16 mismatch", name)
		}
		b.WriteUInt16BE(0xBEEF, 2)
		if b.ReadUInt16BE(2) != 0xBEEF {
			t.Errorf("%s: u16 BE mismatch", name)
		}
		b.WriteInt16LE(-2, 4)
		if b.ReadInt16LE(4) != -2 {
			t.Errorf("%s: i16 mismatch", name)
		}
		b.WriteUInt32LE(0xDEADBEEF, 6)
		if b.ReadUInt32LE(6) != 0xDEADBEEF {
			t.Errorf("%s: u32 mismatch", name)
		}
		b.WriteInt32BE(-123456789, 10)
		if b.ReadInt32BE(10) != -123456789 {
			t.Errorf("%s: i32 BE mismatch", name)
		}
		b.WriteInt8(-5, 15)
		if b.ReadInt8(15) != -5 {
			t.Errorf("%s: i8 mismatch", name)
		}
	}
}

func TestFloatAccessors(t *testing.T) {
	for name, f := range factories {
		b := f.New(24)
		b.WriteFloatLE(3.5, 0)
		b.WriteFloatBE(-2.25, 4)
		b.WriteDoubleLE(math.Pi, 8)
		b.WriteDoubleBE(-math.E, 16)
		if b.ReadFloatLE(0) != 3.5 || b.ReadFloatBE(4) != -2.25 {
			t.Errorf("%s: float32 mismatch", name)
		}
		if b.ReadDoubleLE(8) != math.Pi || b.ReadDoubleBE(16) != -math.E {
			t.Errorf("%s: float64 mismatch", name)
		}
	}
}

func TestNaNPreserved(t *testing.T) {
	f := factories["typed"]
	b := f.New(8)
	b.WriteDoubleLE(math.NaN(), 0)
	if !math.IsNaN(b.ReadDoubleLE(0)) {
		t.Error("NaN not preserved")
	}
}

func TestRangeErrors(t *testing.T) {
	for name, f := range factories {
		b := f.New(4)
		for _, fn := range []func(){
			func() { b.ReadUInt32LE(1) },
			func() { b.ReadUInt8(4) },
			func() { b.WriteUInt16LE(0, 3) },
			func() { b.ReadInt8(-1) },
		} {
			func() {
				defer func() {
					if _, ok := recover().(*RangeError); !ok {
						t.Errorf("%s: expected RangeError panic", name)
					}
				}()
				fn()
			}()
		}
	}
}

func TestStoresAgree(t *testing.T) {
	typed, number := factories["typed"], factories["number"]
	f := func(data []byte) bool {
		a := typed.FromBytes(data)
		b := number.FromBytes(data)
		return bytes.Equal(a.Bytes(), b.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyAndSliceAndFill(t *testing.T) {
	f := factories["typed"]
	src := f.FromBytes([]byte{1, 2, 3, 4, 5})
	dst := f.New(4)
	if n := src.Copy(dst, 1, 1, 4); n != 3 {
		t.Errorf("Copy = %d, want 3", n)
	}
	if !bytes.Equal(dst.Bytes(), []byte{0, 2, 3, 4}) {
		t.Errorf("dst = %v", dst.Bytes())
	}
	sl := src.Slice(1, 3)
	if !bytes.Equal(sl.Bytes(), []byte{2, 3}) {
		t.Errorf("Slice = %v", sl.Bytes())
	}
	// Slice is a copy: mutating it must not affect the source.
	sl.WriteUInt8(99, 0)
	if src.ReadUInt8(1) != 2 {
		t.Error("Slice aliases source")
	}
	src.Fill(7, 0, 2)
	if !bytes.Equal(src.Bytes(), []byte{7, 7, 3, 4, 5}) {
		t.Errorf("Fill = %v", src.Bytes())
	}
	// Copy truncates at destination end.
	if n := src.Copy(dst, 3, 0, 5); n != 1 {
		t.Errorf("truncated Copy = %d, want 1", n)
	}
}

func TestStringCodecsRoundTrip(t *testing.T) {
	data := []byte{0, 1, 2, 127, 128, 200, 255, 66}
	for name, f := range factories {
		for _, enc := range []string{Latin1, Base64, Hex, Packed} {
			b := f.FromBytes(data)
			s, err := b.ToString(enc, 0, b.Len())
			if err != nil {
				t.Fatalf("%s/%s: ToString: %v", name, enc, err)
			}
			back, err := f.FromString(s, enc)
			if err != nil {
				t.Fatalf("%s/%s: FromString: %v", name, enc, err)
			}
			if !bytes.Equal(back.Bytes(), data) {
				t.Errorf("%s/%s: round trip = %v, want %v", name, enc, back.Bytes(), data)
			}
		}
	}
}

func TestPackedRoundTripProperty(t *testing.T) {
	for name, f := range factories {
		prop := func(data []byte) bool {
			s := f.pack(data)
			back, err := f.unpack(s)
			return err == nil && bytes.Equal(back, data)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPackedDensity(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	loose := factories["typed"] // no validity checks: 2 bytes/char
	strict := factories["typed-validating"]
	looseLen := lenUnits(loose.pack(data))
	strictLen := lenUnits(strict.pack(data))
	if looseLen != 501 { // 500 packed units + header
		t.Errorf("2B/char packing used %d units, want 501", looseLen)
	}
	if strictLen != 1001 { // 1000 single-byte units + header
		t.Errorf("1B/char packing used %d units, want 1001", strictLen)
	}
}

func lenUnits(s string) int {
	n := 0
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c < 0x80:
			i++
		case c < 0xE0:
			i += 2
		case c < 0xF0:
			i += 3
		default:
			i += 4
			n++ // pair
		}
		n++
	}
	return n
}

func TestPackedOddLength(t *testing.T) {
	f := factories["typed"]
	for _, n := range []int{0, 1, 2, 3, 255, 256, 257} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(255 - i)
		}
		s := f.pack(data)
		back, err := f.unpack(s)
		if err != nil || !bytes.Equal(back, data) {
			t.Errorf("n=%d: unpack = %v, %v", n, back, err)
		}
	}
}

func TestUnpackErrors(t *testing.T) {
	f := factories["typed"]
	for _, bad := range []string{"", "X123", "d"} {
		if _, err := f.unpack(bad); err == nil {
			t.Errorf("unpack(%q) succeeded", bad)
		}
	}
}

func TestUTF16LECodec(t *testing.T) {
	f := factories["typed"]
	b, err := f.FromString("AB", UTF16LE)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), []byte{0x41, 0, 0x42, 0}) {
		t.Errorf("utf16le bytes = %v", b.Bytes())
	}
	s, err := b.ToString(UCS2, 0, 4)
	if err != nil || s != "AB" {
		t.Errorf("ucs2 ToString = %q, %v", s, err)
	}
}

func TestASCIICodecMasksHighBit(t *testing.T) {
	f := factories["typed"]
	b := f.FromBytes([]byte{0xC1}) // 0x41 | 0x80
	s, err := b.ToString(ASCII, 0, 1)
	if err != nil || s != "A" {
		t.Errorf("ascii ToString = %q, %v", s, err)
	}
}

func TestUnknownEncoding(t *testing.T) {
	f := factories["typed"]
	b := f.New(1)
	if _, err := b.ToString("klingon", 0, 1); err == nil {
		t.Error("unknown encoding accepted")
	}
	if _, err := f.FromString("x", "klingon"); err == nil {
		t.Error("unknown encoding accepted")
	}
}

func TestWriteStringTruncates(t *testing.T) {
	f := factories["typed"]
	b := f.New(3)
	n, err := b.WriteString("hello", 1, UTF8)
	if err != nil || n != 2 {
		t.Errorf("WriteString = %d, %v; want 2", n, err)
	}
	if !bytes.Equal(b.Bytes(), []byte{0, 'h', 'e'}) {
		t.Errorf("bytes = %v", b.Bytes())
	}
}

func TestAllocHook(t *testing.T) {
	var total int
	f := &Factory{Typed: true, OnTypedAlloc: func(n int) { total += n }}
	f.New(100)
	f.FromBytes(make([]byte, 50))
	if total != 150 {
		t.Errorf("alloc hook saw %d bytes, want 150", total)
	}
	// Number-array factories never report typed allocations.
	g := &Factory{Typed: false, OnTypedAlloc: func(n int) { t.Error("number store reported typed alloc") }}
	g.New(10)
}

func BenchmarkTypedStoreU32(b *testing.B) {
	f := &Factory{Typed: true}
	buf := f.New(4096)
	for i := 0; i < b.N; i++ {
		off := (i * 4) % 4092
		buf.WriteUInt32LE(uint32(i), off)
		if buf.ReadUInt32LE(off) != uint32(i) {
			b.Fatal("mismatch")
		}
	}
}

func BenchmarkNumberStoreU32(b *testing.B) {
	f := &Factory{Typed: false}
	buf := f.New(4096)
	for i := 0; i < b.N; i++ {
		off := (i * 4) % 4092
		buf.WriteUInt32LE(uint32(i), off)
		if buf.ReadUInt32LE(off) != uint32(i) {
			b.Fatal("mismatch")
		}
	}
}

package buffer

import (
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"math"

	"doppio/internal/jsstring"
)

// Factory creates Buffers appropriate for one browser environment. It
// captures whether typed arrays exist, whether the engine validates
// strings (which forces the packed codec down to one byte per
// character), and an allocation hook used to model Safari's typed
// array GC leak.
type Factory struct {
	// Typed selects the typed-array store; when false (IE8) buffers
	// use plain number arrays.
	Typed bool
	// ValidatesStrings disables the 2-bytes-per-character packed
	// string format (§5.1).
	ValidatesStrings bool
	// OnTypedAlloc, if non-nil, is invoked with the byte size of each
	// typed-array allocation (see browser.Window.NoteTypedArrayAlloc).
	OnTypedAlloc func(n int)
}

// Buffer is a fixed-length mutable byte buffer in the style of the Node
// JS Buffer class.
type Buffer struct {
	store Store
	fac   *Factory
}

// New allocates a zero-filled Buffer of n bytes.
func (f *Factory) New(n int) *Buffer {
	var s Store
	if f.Typed {
		s = NewTypedStore(n)
		if f.OnTypedAlloc != nil {
			f.OnTypedAlloc(n)
		}
	} else {
		s = NewNumberStore(n)
	}
	return &Buffer{store: s, fac: f}
}

// FromBytes allocates a Buffer holding a copy of b.
func (f *Factory) FromBytes(b []byte) *Buffer {
	buf := f.New(len(b))
	buf.store.CopyIn(0, b)
	return buf
}

// FromString allocates a Buffer holding the bytes of s in the given
// encoding.
func (f *Factory) FromString(s, enc string) (*Buffer, error) {
	b, err := f.decodeString(s, enc)
	if err != nil {
		return nil, err
	}
	return f.FromBytes(b), nil
}

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int { return b.store.Len() }

// Bytes returns a copy of the buffer contents as a byte slice.
func (b *Buffer) Bytes() []byte {
	out := make([]byte, b.Len())
	b.store.CopyOut(0, out)
	return out
}

// Slice returns a new Buffer holding a copy of bytes [start, end).
// (Doppio file descriptors copy data in and out; see §5.2 on copy
// semantics.)
func (b *Buffer) Slice(start, end int) *Buffer {
	b.checkRange(start, end-start)
	out := b.fac.New(end - start)
	tmp := make([]byte, end-start)
	b.store.CopyOut(start, tmp)
	out.store.CopyIn(0, tmp)
	return out
}

// Copy copies bytes [srcStart, srcEnd) of b into dst at dstOff,
// returning the number of bytes copied.
func (b *Buffer) Copy(dst *Buffer, dstOff, srcStart, srcEnd int) int {
	n := srcEnd - srcStart
	if rem := dst.Len() - dstOff; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	tmp := make([]byte, n)
	b.store.CopyOut(srcStart, tmp)
	dst.store.CopyIn(dstOff, tmp)
	return n
}

// Fill sets bytes [start, end) to v.
func (b *Buffer) Fill(v byte, start, end int) {
	b.checkRange(start, end-start)
	for i := start; i < end; i++ {
		b.store.Set(i, v)
	}
}

func (b *Buffer) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > b.store.Len() {
		panic(&RangeError{Off: off, N: n, Len: b.store.Len()})
	}
}

// RangeError reports an out-of-bounds Buffer access, mirroring Node's
// RangeError. The JVM natives convert it into the appropriate Java
// exception.
type RangeError struct{ Off, N, Len int }

func (e *RangeError) Error() string {
	return fmt.Sprintf("buffer: index out of range: offset %d length %d in buffer of %d", e.Off, e.N, e.Len)
}

// --- 8-bit accessors ---

// ReadUInt8 reads the unsigned byte at off.
func (b *Buffer) ReadUInt8(off int) uint8 { b.checkRange(off, 1); return b.store.Get(off) }

// ReadInt8 reads the signed byte at off.
func (b *Buffer) ReadInt8(off int) int8 { return int8(b.ReadUInt8(off)) }

// WriteUInt8 writes the unsigned byte v at off.
func (b *Buffer) WriteUInt8(v uint8, off int) { b.checkRange(off, 1); b.store.Set(off, v) }

// WriteInt8 writes the signed byte v at off.
func (b *Buffer) WriteInt8(v int8, off int) { b.WriteUInt8(uint8(v), off) }

// --- 16-bit accessors ---

// ReadUInt16LE reads a little-endian uint16 at off.
func (b *Buffer) ReadUInt16LE(off int) uint16 {
	b.checkRange(off, 2)
	return uint16(b.store.Get(off)) | uint16(b.store.Get(off+1))<<8
}

// ReadUInt16BE reads a big-endian uint16 at off.
func (b *Buffer) ReadUInt16BE(off int) uint16 {
	b.checkRange(off, 2)
	return uint16(b.store.Get(off))<<8 | uint16(b.store.Get(off+1))
}

// ReadInt16LE reads a little-endian int16 at off.
func (b *Buffer) ReadInt16LE(off int) int16 { return int16(b.ReadUInt16LE(off)) }

// ReadInt16BE reads a big-endian int16 at off.
func (b *Buffer) ReadInt16BE(off int) int16 { return int16(b.ReadUInt16BE(off)) }

// WriteUInt16LE writes a little-endian uint16 at off.
func (b *Buffer) WriteUInt16LE(v uint16, off int) {
	b.checkRange(off, 2)
	b.store.Set(off, byte(v))
	b.store.Set(off+1, byte(v>>8))
}

// WriteUInt16BE writes a big-endian uint16 at off.
func (b *Buffer) WriteUInt16BE(v uint16, off int) {
	b.checkRange(off, 2)
	b.store.Set(off, byte(v>>8))
	b.store.Set(off+1, byte(v))
}

// WriteInt16LE writes a little-endian int16 at off.
func (b *Buffer) WriteInt16LE(v int16, off int) { b.WriteUInt16LE(uint16(v), off) }

// WriteInt16BE writes a big-endian int16 at off.
func (b *Buffer) WriteInt16BE(v int16, off int) { b.WriteUInt16BE(uint16(v), off) }

// --- 32-bit accessors ---

// ReadUInt32LE reads a little-endian uint32 at off.
func (b *Buffer) ReadUInt32LE(off int) uint32 {
	b.checkRange(off, 4)
	return uint32(b.store.Get(off)) | uint32(b.store.Get(off+1))<<8 |
		uint32(b.store.Get(off+2))<<16 | uint32(b.store.Get(off+3))<<24
}

// ReadUInt32BE reads a big-endian uint32 at off.
func (b *Buffer) ReadUInt32BE(off int) uint32 {
	b.checkRange(off, 4)
	return uint32(b.store.Get(off))<<24 | uint32(b.store.Get(off+1))<<16 |
		uint32(b.store.Get(off+2))<<8 | uint32(b.store.Get(off+3))
}

// ReadInt32LE reads a little-endian int32 at off.
func (b *Buffer) ReadInt32LE(off int) int32 { return int32(b.ReadUInt32LE(off)) }

// ReadInt32BE reads a big-endian int32 at off.
func (b *Buffer) ReadInt32BE(off int) int32 { return int32(b.ReadUInt32BE(off)) }

// WriteUInt32LE writes a little-endian uint32 at off.
func (b *Buffer) WriteUInt32LE(v uint32, off int) {
	b.checkRange(off, 4)
	b.store.Set(off, byte(v))
	b.store.Set(off+1, byte(v>>8))
	b.store.Set(off+2, byte(v>>16))
	b.store.Set(off+3, byte(v>>24))
}

// WriteUInt32BE writes a big-endian uint32 at off.
func (b *Buffer) WriteUInt32BE(v uint32, off int) {
	b.checkRange(off, 4)
	b.store.Set(off, byte(v>>24))
	b.store.Set(off+1, byte(v>>16))
	b.store.Set(off+2, byte(v>>8))
	b.store.Set(off+3, byte(v))
}

// WriteInt32LE writes a little-endian int32 at off.
func (b *Buffer) WriteInt32LE(v int32, off int) { b.WriteUInt32LE(uint32(v), off) }

// WriteInt32BE writes a big-endian int32 at off.
func (b *Buffer) WriteInt32BE(v int32, off int) { b.WriteUInt32BE(uint32(v), off) }

// --- floating point accessors ---

// ReadFloatLE reads a little-endian float32 at off.
func (b *Buffer) ReadFloatLE(off int) float32 {
	return math.Float32frombits(b.ReadUInt32LE(off))
}

// ReadFloatBE reads a big-endian float32 at off.
func (b *Buffer) ReadFloatBE(off int) float32 {
	return math.Float32frombits(b.ReadUInt32BE(off))
}

// WriteFloatLE writes a little-endian float32 at off.
func (b *Buffer) WriteFloatLE(v float32, off int) { b.WriteUInt32LE(math.Float32bits(v), off) }

// WriteFloatBE writes a big-endian float32 at off.
func (b *Buffer) WriteFloatBE(v float32, off int) { b.WriteUInt32BE(math.Float32bits(v), off) }

// ReadDoubleLE reads a little-endian float64 at off.
func (b *Buffer) ReadDoubleLE(off int) float64 {
	bits := uint64(b.ReadUInt32LE(off)) | uint64(b.ReadUInt32LE(off+4))<<32
	return math.Float64frombits(bits)
}

// ReadDoubleBE reads a big-endian float64 at off.
func (b *Buffer) ReadDoubleBE(off int) float64 {
	bits := uint64(b.ReadUInt32BE(off))<<32 | uint64(b.ReadUInt32BE(off+4))
	return math.Float64frombits(bits)
}

// WriteDoubleLE writes a little-endian float64 at off.
func (b *Buffer) WriteDoubleLE(v float64, off int) {
	bits := math.Float64bits(v)
	b.WriteUInt32LE(uint32(bits), off)
	b.WriteUInt32LE(uint32(bits>>32), off+4)
}

// WriteDoubleBE writes a big-endian float64 at off.
func (b *Buffer) WriteDoubleBE(v float64, off int) {
	bits := math.Float64bits(v)
	b.WriteUInt32BE(uint32(bits>>32), off)
	b.WriteUInt32BE(uint32(bits), off+4)
}

// --- string codecs ---

// Encodings supported by ToString/WriteString, per the Node Buffer API
// plus Doppio's packed binary-string format.
const (
	ASCII   = "ascii"
	UTF8    = "utf8"
	UTF16LE = "utf16le"
	UCS2    = "ucs2" // alias of utf16le
	Base64  = "base64"
	Hex     = "hex"
	Latin1  = "binary" // Node's legacy "binary" encoding
	Packed  = "packed" // Doppio's 2-bytes-per-char binary string (§5.1)
)

// ErrUnknownEncoding reports an unsupported encoding name.
type ErrUnknownEncoding string

func (e ErrUnknownEncoding) Error() string {
	return fmt.Sprintf("buffer: unknown encoding %q", string(e))
}

func (f *Factory) decodeString(s, enc string) ([]byte, error) {
	switch enc {
	case ASCII:
		units := jsstring.Decode(s)
		out := make([]byte, len(units))
		for i, u := range units {
			out[i] = byte(u & 0x7F)
		}
		return out, nil
	case Latin1:
		units := jsstring.Decode(s)
		out := make([]byte, len(units))
		for i, u := range units {
			out[i] = byte(u)
		}
		return out, nil
	case UTF8:
		return []byte(s), nil
	case UTF16LE, UCS2:
		units := jsstring.Decode(s)
		out := make([]byte, len(units)*2)
		for i, u := range units {
			out[2*i] = byte(u)
			out[2*i+1] = byte(u >> 8)
		}
		return out, nil
	case Base64:
		return base64.StdEncoding.DecodeString(s)
	case Hex:
		return hex.DecodeString(s)
	case Packed:
		return f.unpack(s)
	default:
		return nil, ErrUnknownEncoding(enc)
	}
}

func (f *Factory) encodeString(b []byte, enc string) (string, error) {
	switch enc {
	case ASCII:
		units := make([]uint16, len(b))
		for i, c := range b {
			units[i] = uint16(c & 0x7F)
		}
		return jsstring.Encode(units), nil
	case Latin1:
		units := make([]uint16, len(b))
		for i, c := range b {
			units[i] = uint16(c)
		}
		return jsstring.Encode(units), nil
	case UTF8:
		return string(b), nil
	case UTF16LE, UCS2:
		units := make([]uint16, len(b)/2)
		for i := range units {
			units[i] = uint16(b[2*i]) | uint16(b[2*i+1])<<8
		}
		return jsstring.Encode(units), nil
	case Base64:
		return base64.StdEncoding.EncodeToString(b), nil
	case Hex:
		return hex.EncodeToString(b), nil
	case Packed:
		return f.pack(b), nil
	default:
		return "", ErrUnknownEncoding(enc)
	}
}

// pack converts binary data into Doppio's "binary string" format. On
// engines without string validity checks it stores two bytes per
// UTF-16 character (a header unit records whether the byte count is
// odd); on validating engines it falls back to one byte per character.
func (f *Factory) pack(b []byte) string {
	if f.ValidatesStrings {
		// One byte per character: always-valid BMP code units.
		units := make([]uint16, len(b)+1)
		units[0] = 'S' // single-byte marker
		for i, c := range b {
			units[i+1] = uint16(c)
		}
		return jsstring.Encode(units)
	}
	units := make([]uint16, 0, len(b)/2+2)
	if len(b)%2 == 0 {
		units = append(units, 'D') // double-byte, even length
	} else {
		units = append(units, 'd') // double-byte, odd length
	}
	for i := 0; i+1 < len(b); i += 2 {
		units = append(units, uint16(b[i])|uint16(b[i+1])<<8)
	}
	if len(b)%2 == 1 {
		units = append(units, uint16(b[len(b)-1]))
	}
	return jsstring.Encode(units)
}

// ErrBadPackedString reports a corrupt packed binary string.
var ErrBadPackedString = fmt.Errorf("buffer: malformed packed binary string")

func (f *Factory) unpack(s string) ([]byte, error) {
	units := jsstring.Decode(s)
	if len(units) == 0 {
		return nil, ErrBadPackedString
	}
	switch units[0] {
	case 'S':
		out := make([]byte, len(units)-1)
		for i, u := range units[1:] {
			out[i] = byte(u)
		}
		return out, nil
	case 'D', 'd':
		odd := units[0] == 'd'
		body := units[1:]
		n := len(body) * 2
		if odd {
			if len(body) == 0 {
				return nil, ErrBadPackedString
			}
			n--
		}
		out := make([]byte, 0, n)
		last := len(body) - 1
		for i, u := range body {
			if odd && i == last {
				out = append(out, byte(u))
			} else {
				out = append(out, byte(u), byte(u>>8))
			}
		}
		return out, nil
	default:
		return nil, ErrBadPackedString
	}
}

// ToString renders bytes [start, end) in the given encoding.
func (b *Buffer) ToString(enc string, start, end int) (string, error) {
	b.checkRange(start, end-start)
	tmp := make([]byte, end-start)
	b.store.CopyOut(start, tmp)
	return b.fac.encodeString(tmp, enc)
}

// WriteString writes s (in the given encoding) into the buffer at off,
// returning the number of bytes written (truncated at the buffer end).
func (b *Buffer) WriteString(s string, off int, enc string) (int, error) {
	data, err := b.fac.decodeString(s, enc)
	if err != nil {
		return 0, err
	}
	n := len(data)
	if rem := b.Len() - off; n > rem {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	b.store.CopyIn(off, data[:n])
	return n, nil
}

module doppio

go 1.22

// mjc is the MiniJava compiler: it compiles .mj sources (plus the
// bundled runtime class library) into real JVM class files.
//
//	mjc -d out/ prog.mj [more.mj...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"doppio/internal/jvm/rt"
)

func main() {
	outDir := flag.String("d", "classes", "output directory for .class files")
	withRT := flag.Bool("rt", true, "include the runtime class library in the output")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mjc [-d dir] file.mj...")
		os.Exit(2)
	}
	sources := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mjc:", err)
			os.Exit(1)
		}
		sources[path] = string(data)
	}
	classes, err := rt.CompileWith(sources)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjc:", err)
		os.Exit(1)
	}
	rtClasses, _ := rt.Classes()
	written := 0
	for name, data := range classes {
		if !*withRT {
			if _, isRT := rtClasses[name]; isRT {
				continue
			}
		}
		path := filepath.Join(*outDir, name+".class")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mjc:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mjc:", err)
			os.Exit(1)
		}
		written++
	}
	fmt.Printf("mjc: wrote %d class files to %s\n", written, *outDir)
}

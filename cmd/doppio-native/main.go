// doppio-native runs a JVM program on the native baseline engine —
// the reproduction's HotSpot-interpreter analog used as the Figure 3/4
// comparison point.
//
//	doppio-native -src prog.mj Main [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/profile"
)

func main() {
	srcFlag := flag.String("src", "", "comma-separated .mj sources to compile and run")
	cpFlag := flag.String("cp", "", "comma-separated directories of .class files")
	stats := flag.Bool("stats", false, "print statistics after execution")
	quicken := flag.Bool("jvm-quicken", false, "enable the interpreter speed tier: quickened bytecodes, inline caches, superinstructions")
	profFlag := flag.Bool("prof", false, "enable the guest sampling profiler; prints the hot methods at exit")
	profOut := flag.String("prof-out", "", "write the guest CPU profile here at exit (.pb.gz = pprof protobuf, .json = snapshot, else collapsed stacks); implies -prof")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doppio-native [-src a.mj | -cp dir] Main [args...]")
		os.Exit(2)
	}
	mainClass := flag.Arg(0)
	args := flag.Args()[1:]

	classes := map[string][]byte{}
	if *srcFlag != "" {
		sources := map[string]string{}
		for _, path := range strings.Split(*srcFlag, ",") {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources[path] = string(data)
		}
		compiled, err := rt.CompileWith(sources)
		if err != nil {
			fatal(err)
		}
		classes = compiled
	} else {
		rtClasses, err := rt.Classes()
		if err != nil {
			fatal(err)
		}
		for k, v := range rtClasses {
			classes[k] = v
		}
	}
	if *cpFlag != "" {
		for _, dir := range strings.Split(*cpFlag, ",") {
			err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".class") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				rel, _ := filepath.Rel(dir, path)
				classes[strings.TrimSuffix(filepath.ToSlash(rel), ".class")] = data
				return nil
			})
			if err != nil {
				fatal(err)
			}
		}
	}

	var prof *profile.Profiler
	if *profFlag || *profOut != "" {
		prof = profile.New(profile.Options{})
	}
	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout: os.Stdout, Stderr: os.Stderr, Stdin: os.Stdin,
		Quicken:  *quicken,
		Profiler: prof,
	})
	start := time.Now()
	runErr := vm.RunMain(mainClass, args)
	if prof != nil {
		if *profOut != "" {
			if err := prof.Snapshot(profile.CPU).WriteFile(*profOut, time.Since(start)); err != nil {
				fmt.Fprintln(os.Stderr, "doppio-native: writing profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "doppio-native: guest profile written to %s\n", *profOut)
			}
		} else {
			fmt.Fprintf(os.Stderr, "doppio-native: guest hot methods (%d cpu samples):\n%s",
				prof.Samples(), profile.FormatTop(prof.Snapshot(profile.CPU), 10))
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "doppio-native: %d bytecodes in %v; %d classes loaded\n",
			vm.Instructions, time.Since(start).Round(time.Millisecond), vm.Reg.Loaded())
	}
	os.Exit(int(vm.ExitCode()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-native:", err)
	os.Exit(1)
}

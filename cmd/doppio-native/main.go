// doppio-native runs a JVM program on the native baseline engine —
// the reproduction's HotSpot-interpreter analog used as the Figure 3/4
// comparison point.
//
//	doppio-native -src prog.mj Main [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

func main() {
	srcFlag := flag.String("src", "", "comma-separated .mj sources to compile and run")
	cpFlag := flag.String("cp", "", "comma-separated directories of .class files")
	stats := flag.Bool("stats", false, "print statistics after execution")
	quicken := flag.Bool("jvm-quicken", false, "enable the interpreter speed tier: quickened bytecodes, inline caches, superinstructions")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doppio-native [-src a.mj | -cp dir] Main [args...]")
		os.Exit(2)
	}
	mainClass := flag.Arg(0)
	args := flag.Args()[1:]

	classes := map[string][]byte{}
	if *srcFlag != "" {
		sources := map[string]string{}
		for _, path := range strings.Split(*srcFlag, ",") {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources[path] = string(data)
		}
		compiled, err := rt.CompileWith(sources)
		if err != nil {
			fatal(err)
		}
		classes = compiled
	} else {
		rtClasses, err := rt.Classes()
		if err != nil {
			fatal(err)
		}
		for k, v := range rtClasses {
			classes[k] = v
		}
	}
	if *cpFlag != "" {
		for _, dir := range strings.Split(*cpFlag, ",") {
			err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".class") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				rel, _ := filepath.Rel(dir, path)
				classes[strings.TrimSuffix(filepath.ToSlash(rel), ".class")] = data
				return nil
			})
			if err != nil {
				fatal(err)
			}
		}
	}

	vm := jvm.NewNativeVM(jvm.MapProvider(classes), jvm.NativeOptions{
		Stdout: os.Stdout, Stderr: os.Stderr, Stdin: os.Stdin,
		Quicken: *quicken,
	})
	start := time.Now()
	if err := vm.RunMain(mainClass, args); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "doppio-native: %d bytecodes in %v; %d classes loaded\n",
			vm.Instructions, time.Since(start).Round(time.Millisecond), vm.Reg.Loaded())
	}
	os.Exit(int(vm.ExitCode()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-native:", err)
	os.Exit(1)
}

// dsh is the Doppio shell: a Unix-flavored front end for the process
// layer. Every command is a pipeline of guest processes — MiniC
// stages on minic VMs, MiniJava stages on Doppio JVMs — bridged by
// in-kernel pipes over a shared virtual file system.
//
//	dsh                               # interactive
//	dsh -c 'seq 20 | jgrep 7 | wc'    # one-shot; exits with the status
//	dsh -ops :6060                    # serve /debug/proc etc. while running
//
// Several commands may be chained with ';' in -c mode.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/fleet"
	opspkg "doppio/internal/ops"
	"doppio/internal/proc"
	gprof "doppio/internal/profile"
	"doppio/internal/shell"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

func main() {
	cmd := flag.String("c", "", "run this command line (';'-separated) and exit with its status")
	browserName := flag.String("browser", "Chrome 28", "browser profile")
	opsAddr := flag.String("ops", "", "serve the live ops endpoints on this address (e.g. :6060)")
	profFlag := flag.Bool("prof", false, "enable the guest sampling profiler across every process the shell spawns; prints the hot methods at exit")
	profOut := flag.String("prof-out", "", "write the guest CPU profile here at exit (.pb.gz = pprof protobuf, .json = snapshot, else collapsed stacks); implies -prof")
	flag.Parse()

	profile, ok := browser.ByName(*browserName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dsh: unknown browser %q\n", *browserName)
		os.Exit(2)
	}
	hub := telemetry.NewHub().EnableFlight(0)
	win := fleet.NewEnv(profile, hub).Win
	k := proc.NewKernel(win, vfs.NewInMemory())
	var guestProf *gprof.Profiler
	if *profFlag || *profOut != "" {
		// One profiler for the whole process tree: every pipeline stage
		// the kernel spawns — MiniC or JVM — folds into it.
		guestProf = gprof.New(gprof.Options{})
		k.SetProfiler(guestProf)
	}
	sh, err := shell.New(k, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *opsAddr != "" {
		srv := opspkg.NewServer(hub)
		srv.Register(opspkg.Source{
			Name:    "dsh",
			Loop:    win.Loop,
			Backend: k.Root(),
			Proc:    k,
			Prof:    guestProf,
		})
		addr, err := srv.Serve(*opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsh: ops:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dsh: ops server on http://%s (try /debug/proc)\n", addr)
	}

	start := time.Now()
	dumpProf := func() {
		if guestProf == nil {
			return
		}
		if *profOut != "" {
			if err := guestProf.Snapshot(gprof.CPU).WriteFile(*profOut, time.Since(start)); err != nil {
				fmt.Fprintln(os.Stderr, "dsh: writing profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "dsh: guest profile written to %s\n", *profOut)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "dsh: guest hot methods (%d cpu samples):\n%s",
			guestProf.Samples(), gprof.FormatTop(guestProf.Snapshot(gprof.CPU), 10))
	}

	var last int32
	if *cmd != "" {
		lines := splitCommands(*cmd)
		if err := fleet.Drive(win.Loop, "dsh-c", func(done func(error)) {
			var runAt func(i int)
			runAt = func(i int) {
				if i == len(lines) {
					done(nil)
					return
				}
				sh.Run(lines[i], func(status int32) {
					last = status
					if exited, code := sh.Exited(); exited {
						last = code
						done(nil)
						return
					}
					runAt(i + 1)
				})
			}
			runAt(0)
		}); err != nil {
			dumpProf()
			fmt.Fprintln(os.Stderr, "dsh:", err)
			os.Exit(1)
		}
		dumpProf()
		os.Exit(int(last))
	}

	// Interactive: read a line off the host's stdin (a goroutine feeds
	// it back through a labelled Completion, holding the loop's pending
	// slot), run it, prompt again. EOF or the exit builtin ends the
	// session.
	reader := bufio.NewReader(os.Stdin)
	if err := fleet.Drive(win.Loop, "dsh-repl", func(done func(error)) {
		var repl func()
		repl = func() {
			fmt.Fprint(os.Stdout, "dsh$ ")
			c := core.NewCompletion(win.Loop, "dsh.stdin")
			c.Then(func(v interface{}, err error) {
				line, _ := v.(string)
				if err != nil && line == "" {
					fmt.Fprintln(os.Stdout)
					done(nil) // EOF: the loop drains and dsh exits
					return
				}
				sh.Run(strings.TrimRight(line, "\r\n"), func(status int32) {
					last = status
					if exited, code := sh.Exited(); exited {
						last = code
						done(nil)
						return
					}
					repl()
				})
			})
			resolve := c.Resolver()
			go func() {
				line, err := reader.ReadString('\n')
				resolve(line, err)
			}()
		}
		repl()
	}); err != nil {
		dumpProf()
		fmt.Fprintln(os.Stderr, "dsh:", err)
		os.Exit(1)
	}
	dumpProf()
	os.Exit(int(last))
}

// splitCommands splits a -c argument on ';' (quotes are respected by
// the shell's own tokenizer, but ';' never appears inside dsh quoting
// in practice — keep the split simple).
func splitCommands(s string) []string {
	parts := strings.Split(s, ";")
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

// doppio-jvm runs a JVM program on DoppioJVM inside a simulated
// browser window — the paper's in-browser JVM (§6). Sources are
// compiled with the bundled MiniJava compiler; class files from -cp
// directories are loaded as-is.
//
//	doppio-jvm -browser "IE 10" -src prog.mj Main arg1 arg2
//	doppio-jvm -cp classes/ Main
//	doppio-jvm -ops :6060 -src prog.mj Main    # live ops endpoints
//
// When the program deadlocks, the watchdog kills a runaway task, or
// stall detection (-stall-budget) trips, doppio-jvm emits a
// jstack-style post-mortem — per-thread state with the Completion
// label each blocked thread waits on, run-queue depths, the
// unmanaged-heap free list, and the flight-recorder tail — to stderr,
// and as JSON to the -postmortem path if given. SIGINT/SIGTERM dump
// the same report for a live (hung but not yet failed) run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"doppio/internal/browser"
	"doppio/internal/eventloop"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/ops"
	gprof "doppio/internal/profile"
	"doppio/internal/telemetry"
)

func main() {
	browserName := flag.String("browser", "Chrome 28", "browser profile (see -list)")
	srcFlag := flag.String("src", "", "comma-separated .mj sources to compile and run")
	cpFlag := flag.String("cp", "", "comma-separated directories of .class files")
	list := flag.Bool("list", false, "list browser profiles")
	tax := flag.Bool("enginetax", false, "model the browser's JS-engine speed")
	quicken := flag.Bool("jvm-quicken", false, "enable the interpreter speed tier: quickened bytecodes, inline caches, superinstructions")
	stats := flag.Bool("stats", false, "print runtime statistics after execution")
	timeslice := flag.Duration("timeslice", 10*time.Millisecond, "Doppio timeslice")
	metrics := flag.Bool("metrics", false, "print the telemetry metrics snapshot after execution")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing)")
	traceMethods := flag.Bool("trace-methods", false, "record a trace span per method invocation (with -trace; verbose)")
	traceCap := flag.Int("trace-cap", 0, "trace-event retention cap for -trace (0 = default 262144; negative = unlimited); overflow drops oldest events, counted in telemetry.trace_dropped")
	opsAddr := flag.String("ops", "", "serve the live ops endpoints (/metrics, /debug/threads, pprof, ...) on this address, e.g. :6060")
	flightCap := flag.Int("flight", 0, "enable the flight recorder with this event capacity (0 disables; -ops and -postmortem enable it at the default capacity)")
	postmortem := flag.String("postmortem", "", "write the automatic post-mortem report as JSON to this path (text always goes to stderr)")
	stallBudget := flag.Duration("stall-budget", 0, "responsiveness budget per macrotask; exceeded -stall-count times in a row triggers a post-mortem (0 disables)")
	stallCount := flag.Int("stall-count", 3, "consecutive over-budget macrotasks before -stall-budget trips")
	profFlag := flag.Bool("prof", false, "enable the guest sampling profiler (CPU, alloc, contention); serves /debug/profile and /debug/guest-pprof with -ops, prints the hot methods at exit")
	profOut := flag.String("prof-out", "", "write the guest CPU profile here at exit (.pb.gz = pprof protobuf, .json = snapshot, else collapsed stacks); implies -prof")
	flag.Parse()

	if *list {
		for _, p := range browser.All() {
			fmt.Printf("%-14s typedArrays=%v setImmediate=%v engineFactor=%.1f\n",
				p.Name, p.HasTypedArrays, p.HasSetImmediate, p.EngineFactor)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doppio-jvm [-browser name] [-src a.mj,b.mj | -cp dir] Main [args...]")
		os.Exit(2)
	}
	mainClass := flag.Arg(0)
	args := flag.Args()[1:]

	classes := map[string][]byte{}
	if *srcFlag != "" {
		sources := map[string]string{}
		for _, path := range strings.Split(*srcFlag, ",") {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources[path] = string(data)
		}
		compiled, err := rt.CompileWith(sources)
		if err != nil {
			fatal(err)
		}
		classes = compiled
	} else {
		rtClasses, err := rt.Classes()
		if err != nil {
			fatal(err)
		}
		for k, v := range rtClasses {
			classes[k] = v
		}
	}
	if *cpFlag != "" {
		for _, dir := range strings.Split(*cpFlag, ",") {
			err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".class") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				rel, _ := filepath.Rel(dir, path)
				name := strings.TrimSuffix(filepath.ToSlash(rel), ".class")
				classes[name] = data
				return nil
			})
			if err != nil {
				fatal(err)
			}
		}
	}

	profile, ok := browser.ByName(*browserName)
	if !ok {
		fatal(fmt.Errorf("unknown browser %q (try -list)", *browserName))
	}
	win := browser.NewWindow(profile)
	diagnosing := *opsAddr != "" || *flightCap > 0 || *postmortem != "" || *stallBudget > 0
	var hub *telemetry.Hub
	if *metrics || *tracePath != "" || diagnosing {
		hub = telemetry.NewHub()
		if *tracePath != "" {
			hub.EnableTracing()
			hub.Tracer.SetEventCap(*traceCap)
		}
		if *flightCap > 0 {
			hub.EnableFlight(*flightCap)
		} else if diagnosing {
			// Every diagnostics path wants the black box.
			hub.EnableFlight(telemetry.DefaultFlightCapacity)
		}
		hub.MethodSpans = *traceMethods
		win.EnableTelemetry(hub)
	}
	var guestProf *gprof.Profiler
	if *profFlag || *profOut != "" {
		guestProf = gprof.New(gprof.Options{})
	}
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           os.Stdout,
		Stderr:           os.Stderr,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        *timeslice,
		DisableEngineTax: !*tax,
		Quicken:          *quicken,
		Profiler:         guestProf,
	})
	src := ops.Source{Name: mainClass, Loop: win.Loop, Runtime: vm.Runtime(), Heap: vm.Heap(),
		JVM: []ops.JVMEngine{{Engine: "doppio", Stats: vm}}, Prof: guestProf}
	emit := func(rep *ops.Report) {
		fmt.Fprint(os.Stderr, rep.Text())
		if *postmortem != "" {
			f, err := os.Create(*postmortem)
			if err == nil {
				err = rep.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "doppio-jvm: writing post-mortem:", err)
			} else {
				fmt.Fprintf(os.Stderr, "doppio-jvm: post-mortem written to %s\n", *postmortem)
			}
		}
	}
	if *opsAddr != "" {
		srv := ops.NewServer(hub)
		srv.Register(src)
		addr, err := srv.Serve(*opsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "doppio-jvm: ops server on http://%s\n", addr)
	}
	if diagnosing {
		// SIGINT/SIGTERM on a hung run: dump the same report the
		// failure paths produce, then exit. The loop is still running,
		// so collection goes through it (degrading to the flight tail
		// if it is wedged).
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			rep, err := ops.CollectOnLoop(hub, src, "signal", s.String(), time.Second)
			if err != nil {
				rep.Detail = err.Error()
			}
			emit(rep)
			os.Exit(130)
		}()
	}
	if *stallBudget > 0 {
		// The callback runs on the loop goroutine, so inline
		// collection is safe; report the first stall only.
		tripped := false
		win.Loop.SetStallMonitor(*stallBudget, *stallCount, func(ev eventloop.StallEvent) {
			if tripped {
				return
			}
			tripped = true
			detail := fmt.Sprintf("macrotask %q ran %v (budget %v) %d times in a row",
				ev.Label, ev.Elapsed.Round(time.Microsecond), ev.Budget, ev.Consecutive)
			emit(ops.Collect(hub, src, "stall", detail))
		})
	}
	start := time.Now()
	dumpProf := func(elapsed time.Duration) {
		if guestProf == nil {
			return
		}
		if *profOut != "" {
			if err := guestProf.Snapshot(gprof.CPU).WriteFile(*profOut, elapsed); err != nil {
				fmt.Fprintln(os.Stderr, "doppio-jvm: writing profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "doppio-jvm: guest profile written to %s\n", *profOut)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "doppio-jvm: guest hot methods (%d cpu samples):\n%s",
			guestProf.Samples(), gprof.FormatTop(guestProf.Snapshot(gprof.CPU), 10))
	}
	if err := vm.RunMain(mainClass, args); err != nil {
		// The loop has returned, so inline collection is safe here.
		if _, isWatchdog := err.(*eventloop.WatchdogError); isWatchdog {
			emit(ops.Collect(hub, src, "watchdog", err.Error()))
		} else if strings.Contains(err.Error(), "deadlock") {
			emit(ops.Collect(hub, src, "deadlock", err.Error()))
		}
		dumpProf(time.Since(start))
		fatal(err)
	}
	dumpProf(time.Since(start))
	if *stats {
		st := vm.Runtime().Stats()
		fmt.Fprintf(os.Stderr, "doppio-jvm: %s: %d bytecodes in %v; %d suspensions (%v suspended) via %s; %d classes loaded\n",
			profile.Name, vm.Instructions, time.Since(start).Round(time.Millisecond),
			st.Suspensions, st.SuspendedTime.Round(time.Millisecond),
			vm.Runtime().Mechanism(), vm.Reg.Loaded())
		if *quicken {
			q := vm.QuickStats()
			fmt.Fprintf(os.Stderr, "doppio-jvm: quickening: %d sites, %d IC hits, %d IC misses, %d deopts, %d fusions, %d fused executions\n",
				q.Sites, q.ICHits, q.ICMisses, q.Deopts, q.Fusions, q.FusedExec)
		}
	}
	if hub != nil {
		if *metrics {
			// Stderr, so the program's stdout stays clean.
			fmt.Fprint(os.Stderr, hub.Registry.Snapshot().Format())
		}
		if *tracePath != "" {
			if err := hub.Tracer.WriteFile(*tracePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "doppio-jvm: trace written to %s\n", *tracePath)
		}
	}
	os.Exit(int(vm.ExitCode()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-jvm:", err)
	os.Exit(1)
}

// doppio-jvm runs a JVM program on DoppioJVM inside a simulated
// browser window — the paper's in-browser JVM (§6). Sources are
// compiled with the bundled MiniJava compiler; class files from -cp
// directories are loaded as-is.
//
//	doppio-jvm -browser "IE 10" -src prog.mj Main arg1 arg2
//	doppio-jvm -cp classes/ Main
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/telemetry"
)

func main() {
	browserName := flag.String("browser", "Chrome 28", "browser profile (see -list)")
	srcFlag := flag.String("src", "", "comma-separated .mj sources to compile and run")
	cpFlag := flag.String("cp", "", "comma-separated directories of .class files")
	list := flag.Bool("list", false, "list browser profiles")
	tax := flag.Bool("enginetax", false, "model the browser's JS-engine speed")
	stats := flag.Bool("stats", false, "print runtime statistics after execution")
	timeslice := flag.Duration("timeslice", 10*time.Millisecond, "Doppio timeslice")
	metrics := flag.Bool("metrics", false, "print the telemetry metrics snapshot after execution")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing)")
	traceMethods := flag.Bool("trace-methods", false, "record a trace span per method invocation (with -trace; verbose)")
	flag.Parse()

	if *list {
		for _, p := range browser.All() {
			fmt.Printf("%-14s typedArrays=%v setImmediate=%v engineFactor=%.1f\n",
				p.Name, p.HasTypedArrays, p.HasSetImmediate, p.EngineFactor)
		}
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doppio-jvm [-browser name] [-src a.mj,b.mj | -cp dir] Main [args...]")
		os.Exit(2)
	}
	mainClass := flag.Arg(0)
	args := flag.Args()[1:]

	classes := map[string][]byte{}
	if *srcFlag != "" {
		sources := map[string]string{}
		for _, path := range strings.Split(*srcFlag, ",") {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			sources[path] = string(data)
		}
		compiled, err := rt.CompileWith(sources)
		if err != nil {
			fatal(err)
		}
		classes = compiled
	} else {
		rtClasses, err := rt.Classes()
		if err != nil {
			fatal(err)
		}
		for k, v := range rtClasses {
			classes[k] = v
		}
	}
	if *cpFlag != "" {
		for _, dir := range strings.Split(*cpFlag, ",") {
			err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err != nil || info.IsDir() || !strings.HasSuffix(path, ".class") {
					return err
				}
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				rel, _ := filepath.Rel(dir, path)
				name := strings.TrimSuffix(filepath.ToSlash(rel), ".class")
				classes[name] = data
				return nil
			})
			if err != nil {
				fatal(err)
			}
		}
	}

	profile, ok := browser.ByName(*browserName)
	if !ok {
		fatal(fmt.Errorf("unknown browser %q (try -list)", *browserName))
	}
	win := browser.NewWindow(profile)
	var hub *telemetry.Hub
	if *metrics || *tracePath != "" {
		hub = telemetry.NewHub()
		if *tracePath != "" {
			hub.EnableTracing()
		}
		hub.MethodSpans = *traceMethods
		win.EnableTelemetry(hub)
	}
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           os.Stdout,
		Stderr:           os.Stderr,
		Provider:         jvm.MapProvider(classes),
		Timeslice:        *timeslice,
		DisableEngineTax: !*tax,
	})
	start := time.Now()
	if err := vm.RunMain(mainClass, args); err != nil {
		fatal(err)
	}
	if *stats {
		st := vm.Runtime().Stats()
		fmt.Fprintf(os.Stderr, "doppio-jvm: %s: %d bytecodes in %v; %d suspensions (%v suspended) via %s; %d classes loaded\n",
			profile.Name, vm.Instructions, time.Since(start).Round(time.Millisecond),
			st.Suspensions, st.SuspendedTime.Round(time.Millisecond),
			vm.Runtime().Mechanism(), vm.Reg.Loaded())
	}
	if hub != nil {
		if *metrics {
			// Stderr, so the program's stdout stays clean.
			fmt.Fprint(os.Stderr, hub.Registry.Snapshot().Format())
		}
		if *tracePath != "" {
			if err := hub.Tracer.WriteFile(*tracePath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "doppio-jvm: trace written to %s\n", *tracePath)
		}
	}
	os.Exit(int(vm.ExitCode()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-jvm:", err)
	os.Exit(1)
}

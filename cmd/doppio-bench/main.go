// doppio-bench regenerates the paper's tables and figures (§7).
//
//	doppio-bench -all                 # everything at quick scale
//	doppio-bench -fig3 -scale 3       # closer to paper scale
//	doppio-bench -table1 -table2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"doppio/internal/bench"
	"doppio/internal/browser"
	"doppio/internal/fstrace"
)

func main() {
	fig3 := flag.Bool("fig3", false, "macro benchmarks: DoppioJVM vs native (Figure 3)")
	fig45 := flag.Bool("fig45", false, "microbenchmarks + suspension (Figures 4 and 5)")
	fig6 := flag.Bool("fig6", false, "file system trace replay (Figure 6)")
	table1 := flag.Bool("table1", false, "feature matrix with live probes (Table 1)")
	table2 := flag.Bool("table2", false, "storage mechanisms (Table 2)")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int("scale", 1, "workload scale (>=5 is paper scale)")
	browsersFlag := flag.String("browsers", "", "comma-separated browser names (default: the paper's five)")
	noTax := flag.Bool("noenginetax", false, "disable the JS-engine speed model")
	flag.Parse()

	if !(*fig3 || *fig45 || *fig6 || *table1 || *table2 || *all) {
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, DisableEngineTax: *noTax}
	if *browsersFlag != "" {
		for _, name := range strings.Split(*browsersFlag, ",") {
			p, ok := browser.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "doppio-bench: unknown browser %q\n", name)
				os.Exit(2)
			}
			cfg.Browsers = append(cfg.Browsers, p)
		}
	}

	if *all || *table1 {
		fmt.Println(bench.FormatTable1(bench.Table1()))
	}
	if *all || *table2 {
		fmt.Println(bench.FormatTable2(bench.Table2()))
	}
	if *all || *fig3 {
		start := time.Now()
		res, err := bench.RunFig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig3(res))
		fmt.Printf("(figure 3 sweep took %v)\n\n", time.Since(start).Round(time.Second))
	}
	if *all || *fig45 {
		rows, err := bench.RunFig45(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig45(rows))
	}
	if *all || *fig6 {
		params := fstrace.PaperParams()
		if *scale < 3 {
			// Quick runs replay a proportionally smaller trace.
			params = fstrace.GenerateParams{
				Ops:          3185 * *scale / 3,
				UniqueFiles:  1560 * *scale / 3,
				BytesRead:    10_500_000 * *scale / 3,
				BytesWritten: 97_000 * *scale / 3,
			}
		}
		rows, err := bench.RunFig6(cfg, params)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig6(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-bench:", err)
	os.Exit(1)
}

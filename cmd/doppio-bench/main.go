// doppio-bench regenerates the paper's tables and figures (§7).
//
//	doppio-bench -all                 # everything at quick scale
//	doppio-bench -fig3 -scale 3       # closer to paper scale
//	doppio-bench -table1 -table2
//	doppio-bench -resp                # §7.1.3 responsiveness report
//	doppio-bench -metrics -trace t.json   # instrumented default pass
//	doppio-bench -fig3 -ops :6060     # live ops endpoints while it runs
//	doppio-bench -ops-bench           # flight-recorder overhead A/B
//
// With -metrics and/or -trace but no figure selected, a default
// telemetry pass runs: the disasm workload through DoppioJVM plus a
// small file system trace replay, both fully instrumented. SIGINT or
// SIGTERM dumps the metrics snapshot and closes the trace file before
// exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"doppio/internal/bench"
	"doppio/internal/browser"
	"doppio/internal/fleet"
	"doppio/internal/fstrace"
	"doppio/internal/ops"
	gprof "doppio/internal/profile"
	"doppio/internal/telemetry"
	"doppio/internal/vfs"
)

func main() {
	fig3 := flag.Bool("fig3", false, "macro benchmarks: DoppioJVM vs native (Figure 3)")
	fig45 := flag.Bool("fig45", false, "microbenchmarks + suspension (Figures 4 and 5)")
	fig6 := flag.Bool("fig6", false, "file system trace replay (Figure 6)")
	table1 := flag.Bool("table1", false, "feature matrix with live probes (Table 1)")
	table2 := flag.Bool("table2", false, "storage mechanisms (Table 2)")
	resp := flag.Bool("resp", false, "responsiveness report: longest event-loop pause per workload (§7.1.3)")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Int("scale", 1, "workload scale (>=5 is paper scale)")
	browsersFlag := flag.String("browsers", "", "comma-separated browser names (default: the paper's five)")
	noTax := flag.Bool("noenginetax", false, "disable the JS-engine speed model")
	metrics := flag.Bool("metrics", false, "print the telemetry metrics snapshot on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing)")
	fsCache := flag.Bool("fs-cache", false, "A/B-compare fstrace replay and class loading with the VFS cache on and off (and enable the cache for other passes)")
	fsBackend := flag.String("fs-backend", "cloud", "backend for -fs-cache: inmemory, localstorage, indexeddb, or cloud")
	fsWriteBack := flag.Bool("fs-writeback", false, "use write-back (buffered) mode for -fs-cache")
	fsFaults := flag.Float64("fs-faults", 0, "fault-injection A/B: replay fstrace and class loading through the retry stack at this per-op fault rate (e.g. 0.1; 0 disables)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the -fs-faults fault sequence and retry jitter")
	schedBatch := flag.Bool("sched-batch", false, "slice-batching A/B on the multithreaded producer/consumer workload (suspension round trips, context switches, longest macrotask)")
	schedPrio := flag.Bool("sched-prio", false, "priority run-queue A/B: four CPU-bound threads with and without Thread.setPriority")
	schedOut := flag.String("sched-out", "BENCH_sched.json", "path for the -sched-batch/-sched-prio JSON report")
	opsAddr := flag.String("ops", "", "serve the live ops endpoints (/metrics, /debug/threads, pprof, ...) on this address, e.g. :6060")
	flightCap := flag.Int("flight", 0, "enable the flight recorder with this event capacity (0 disables; -ops enables it at the default capacity)")
	traceCap := flag.Int("trace-cap", 0, "trace-event retention cap for -trace (0 = default 262144; negative = unlimited); overflow drops oldest events, counted in telemetry.trace_dropped")
	opsBench := flag.Bool("ops-bench", false, "flight-recorder overhead A/B on a CPU-bound multithreaded workload")
	opsOut := flag.String("ops-out", "BENCH_ops.json", "path for the -ops-bench JSON report")
	profFlag := flag.Bool("prof", false, "attach the guest sampling profiler to every Doppio-engine run; prints the hot methods at exit")
	profPath := flag.String("prof-out", "", "write the guest CPU profile here at exit (.pb.gz = pprof protobuf, .json = snapshot, else collapsed stacks); implies -prof")
	profBench := flag.Bool("prof-bench", false, "guest-profiler overhead A/B: DeltaBlue with the sampling profiler attached vs detached")
	profOut := flag.String("prof-bench-out", "BENCH_prof.json", "path for the -prof-bench JSON report")
	profCheck := flag.Bool("prof-check", false, "fail unless the -prof-bench overhead is <= 5% and the hottest method is a DeltaBlue method (CI gate)")
	fleetN := flag.Int("fleet", 0, "fleet hosting sweep: run the tenant counts from {16, 64, 256} up to N, single-shard vs multi-shard at equal work")
	fleetShards := flag.Int("fleet-shards", 0, "multi-shard pool width for -fleet (default NumCPU)")
	fleetWorkload := flag.String("fleet-workload", "mixed", "tenant mix for -fleet: minic, jvm, mixed, pipes, or sock")
	fleetOut := flag.String("fleet-out", "BENCH_fleet.json", "path for the -fleet JSON report")
	fleetCheck := flag.Bool("fleet-check", false, "fail unless the -fleet run saw zero evictions and every tenant's slice counter is nonzero (CI smoke gate)")
	interp := flag.Bool("interp", false, "interpreter speed-tier A/B: DeltaBlue with quickening (inline caches, superinstructions) on vs off at equal timeslice")
	interpIters := flag.Int("interp-iters", 5, "timed iterations per arm for -interp")
	interpOut := flag.String("interp-out", "BENCH_interp.json", "path for the -interp JSON report")
	interpCheck := flag.Bool("interp-check", false, "fail unless the -interp quickened arm is >= 2x faster at p50 with byte-identical output (CI smoke gate)")
	flag.Parse()

	var hub *telemetry.Hub
	if *metrics || *tracePath != "" || *opsAddr != "" || *flightCap > 0 {
		hub = telemetry.NewHub()
		if *tracePath != "" {
			hub.EnableTracing()
			hub.Tracer.SetEventCap(*traceCap)
		}
		if *flightCap > 0 {
			hub.EnableFlight(*flightCap)
		} else if *opsAddr != "" {
			// The ops endpoints are the flight ring's consumer; a
			// black box costs too little to leave off here.
			hub.EnableFlight(telemetry.DefaultFlightCapacity)
		}
	}
	anyFigure := *fig3 || *fig45 || *fig6 || *table1 || *table2 || *resp || *all || *fsCache || *fsFaults > 0 || *schedBatch || *schedPrio || *opsBench || *profBench || *fleetN > 0 || *interp
	if !anyFigure && hub == nil && !*profFlag && *profPath == "" {
		// -prof alone runs the instrumented default pass, like -metrics.
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, DisableEngineTax: *noTax, Telemetry: hub, FSCache: *fsCache}
	var guestProf *gprof.Profiler
	if *profFlag || *profPath != "" {
		guestProf = gprof.New(gprof.Options{})
		cfg.Profiler = guestProf
	}
	var opsSrv *ops.Server
	if *opsAddr != "" {
		opsSrv = ops.NewServer(hub)
		addr, err := opsSrv.Serve(*opsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "doppio-bench: ops server on http://%s\n", addr)
		cfg.Ops = opsSrv
	}
	if *browsersFlag != "" {
		for _, name := range strings.Split(*browsersFlag, ",") {
			p, ok := browser.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "doppio-bench: unknown browser %q\n", name)
				os.Exit(2)
			}
			cfg.Browsers = append(cfg.Browsers, p)
		}
	}

	// On SIGINT/SIGTERM (and on the normal exit path) dump the metrics
	// snapshot and close the trace file exactly once.
	benchStart := time.Now()
	var finishOnce sync.Once
	var finishErr error
	finish := func() {
		finishOnce.Do(func() {
			if guestProf != nil {
				if *profPath != "" {
					if err := guestProf.Snapshot(gprof.CPU).WriteFile(*profPath, time.Since(benchStart)); err != nil {
						fmt.Fprintln(os.Stderr, "doppio-bench: writing profile:", err)
					} else {
						fmt.Fprintf(os.Stderr, "doppio-bench: guest profile written to %s\n", *profPath)
					}
				} else {
					fmt.Fprintf(os.Stderr, "doppio-bench: guest hot methods (%d cpu samples):\n%s",
						guestProf.Samples(), gprof.FormatTop(guestProf.Snapshot(gprof.CPU), 10))
				}
			}
			if hub == nil {
				return
			}
			if *metrics {
				fmt.Print(hub.Registry.Snapshot().Format())
			}
			if *tracePath != "" {
				if err := hub.Tracer.WriteFile(*tracePath); err != nil {
					finishErr = err
					fmt.Fprintln(os.Stderr, "doppio-bench: writing trace:", err)
				} else {
					fmt.Printf("trace written to %s\n", *tracePath)
				}
			}
		})
	}
	if hub != nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(os.Stderr, "doppio-bench: %v: dumping telemetry\n", s)
			// Thread dumps first (they need the still-running loops),
			// then the flight tail, then the metrics/trace files.
			if opsSrv != nil {
				for _, rep := range opsSrv.Reports("signal") {
					fmt.Fprint(os.Stderr, rep.Text())
				}
			} else if hub.Flight != nil {
				fmt.Fprint(os.Stderr, telemetry.FormatFlight(hub.Flight.Tail(50)))
			}
			finish()
			os.Exit(130)
		}()
	}

	if *all || *table1 {
		fmt.Println(bench.FormatTable1(bench.Table1()))
	}
	if *all || *table2 {
		fmt.Println(bench.FormatTable2(bench.Table2()))
	}
	if *all || *fig3 {
		start := time.Now()
		res, err := bench.RunFig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig3(res))
		fmt.Printf("(figure 3 sweep took %v)\n\n", time.Since(start).Round(time.Second))
	}
	if *all || *fig45 {
		rows, err := bench.RunFig45(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig45(rows))
	}
	if *all || *fig6 {
		params := fstrace.PaperParams()
		if *scale < 3 {
			// Quick runs replay a proportionally smaller trace.
			params = fstrace.GenerateParams{
				Ops:          3185 * *scale / 3,
				UniqueFiles:  1560 * *scale / 3,
				BytesRead:    10_500_000 * *scale / 3,
				BytesWritten: 97_000 * *scale / 3,
			}
		}
		rows, err := bench.RunFig6(cfg, params)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFig6(rows))
	}
	if *all || *resp {
		rows, err := bench.RunResponsiveness(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatResponsiveness(rows))
	}
	if *fsCache {
		params := bench.FSCacheParams{
			Backend:   *fsBackend,
			WriteBack: *fsWriteBack,
			Latency:   200 * time.Microsecond,
			Trace: fstrace.GenerateParams{
				Ops: 400 * *scale, UniqueFiles: 120 * *scale,
				BytesRead: 600_000 * *scale, BytesWritten: 8_000 * *scale,
			},
		}
		res, err := bench.RunFSCache(cfg, params)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFSCache(res))
		cab, err := bench.RunClassloadFSCache(cfg, *fsBackend, *fsWriteBack, 200*time.Microsecond)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatClassloadAB(cab))
	}
	if *fsFaults > 0 {
		params := bench.FSFaultsParams{
			Backend: *fsBackend,
			Rate:    *fsFaults,
			Seed:    *faultSeed,
			Latency: 200 * time.Microsecond,
			Trace: fstrace.GenerateParams{
				Ops: 400 * *scale, UniqueFiles: 120 * *scale,
				BytesRead: 600_000 * *scale, BytesWritten: 8_000 * *scale,
			},
		}
		res, err := bench.RunFSFaults(cfg, params)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFSFaults(res))
		if !res.BitIdentical() {
			finishErr = fmt.Errorf("faulty replay diverged from fault-free run")
		}
		clf, err := bench.RunClassloadFaults(cfg, *fsBackend, *fsFaults, *faultSeed, 200*time.Microsecond)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatClassloadFaults(clf))
		if clf.LoadErrors > 0 || clf.Mismatches > 0 {
			finishErr = fmt.Errorf("class loading failed under faults")
		}
	}
	if *schedBatch || *schedPrio {
		var report bench.SchedReport
		if *schedBatch {
			res, err := bench.RunSchedBatch(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatSchedBatch(res))
			report.Batch = res
		}
		if *schedPrio {
			res, err := bench.RunSchedPrio(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatSchedPrio(res))
			report.Prio = res
		}
		if err := bench.WriteSchedReport(*schedOut, report); err != nil {
			fatal(err)
		}
		fmt.Printf("scheduler report written to %s\n", *schedOut)
	}
	if *opsBench {
		res, err := bench.RunOpsOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatOpsOverhead(res))
		if err := bench.WriteOpsReport(*opsOut, res); err != nil {
			fatal(err)
		}
		fmt.Printf("ops overhead report written to %s\n", *opsOut)
	}
	if *profBench {
		res, err := bench.RunProfOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatProfOverhead(res))
		if err := bench.WriteProfReport(*profOut, res); err != nil {
			fatal(err)
		}
		fmt.Printf("profiler overhead report written to %s\n", *profOut)
		if *profCheck {
			switch {
			case res.Overhead > 5:
				finishErr = fmt.Errorf("prof check: profiler overhead %.2f%% exceeds the 5%% budget", res.Overhead)
			case res.On.Samples == 0:
				finishErr = fmt.Errorf("prof check: the on arm folded zero cpu samples")
			case !strings.Contains(res.HotMethod, "."):
				finishErr = fmt.Errorf("prof check: hottest method %q is not a guest method", res.HotMethod)
			default:
				fmt.Printf("prof check: ok (%+.2f%% cpu, %d samples, hottest %s)\n",
					res.Overhead, res.On.Samples, res.HotMethod)
			}
		}
	}
	if *fleetN > 0 {
		var counts []int
		for _, n := range []int{16, 64, 256} {
			if n <= *fleetN {
				counts = append(counts, n)
			}
		}
		if len(counts) == 0 {
			counts = []int{*fleetN}
		}
		res, err := bench.RunFleet(bench.FleetParams{
			Tenants:  counts,
			Shards:   *fleetShards,
			Workload: *fleetWorkload,
			Scale:    *scale,
			Ops:      opsSrv,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatFleet(res))
		if err := bench.WriteFleetReport(*fleetOut, res); err != nil {
			fatal(err)
		}
		fmt.Printf("fleet report written to %s\n", *fleetOut)
		if *fleetCheck {
			for _, pt := range res.Points {
				for _, arm := range []bench.FleetArm{pt.Single, pt.Multi} {
					if arm.Evictions != 0 || arm.Failed != 0 {
						finishErr = fmt.Errorf("fleet check: %d tenants on %d shards saw %d evictions, %d failures",
							pt.Tenants, arm.Shards, arm.Evictions, arm.Failed)
					}
					if arm.MinTenantSlices <= 0 {
						finishErr = fmt.Errorf("fleet check: %d tenants on %d shards: a tenant's slice counter stayed zero",
							pt.Tenants, arm.Shards)
					}
				}
			}
			if finishErr == nil {
				fmt.Println("fleet check: ok (zero evictions, every tenant counter nonzero)")
			}
		}
	}
	if *interp {
		res, err := bench.RunInterp(bench.InterpParams{
			Scale: *scale,
			Iters: *interpIters,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FormatInterp(res))
		if err := bench.WriteInterpReport(*interpOut, res); err != nil {
			fatal(err)
		}
		fmt.Printf("interp report written to %s\n", *interpOut)
		if *interpCheck {
			switch {
			case !res.OutputMatch:
				finishErr = fmt.Errorf("interp check: quickened output diverged from generic")
			case res.SpeedupP50 < 2:
				finishErr = fmt.Errorf("interp check: quickened arm only %.2fx faster at p50 (need >= 2x)", res.SpeedupP50)
			default:
				fmt.Printf("interp check: ok (%.2fx at p50, outputs identical)\n", res.SpeedupP50)
			}
		}
	}
	if !anyFigure {
		if err := runTelemetryPass(cfg); err != nil {
			fatal(err)
		}
	}
	finish()
	if finishErr != nil {
		os.Exit(1)
	}
}

// runTelemetryPass exercises the instrumented runtime when no figure
// was requested: the disasm workload (which reads its class corpus
// through the VFS) on one browser profile, then a small file system
// trace replay. Together they populate event-loop dispatch latencies,
// per-backend VFS op latencies, JVM opcode counts, and fstrace per-op
// histograms in cfg.Telemetry.
func runTelemetryPass(cfg bench.Config) error {
	profile := browser.Chrome28
	if len(cfg.Browsers) > 0 {
		profile = cfg.Browsers[0]
	}
	spec := bench.Fig3Workloads[0]
	run, err := bench.RunDoppio(spec, cfg.Scale, profile, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("telemetry pass: %s on %s: %d bytecodes in %v\n",
		spec.ID, profile.Name, run.Instructions, run.Wall.Round(time.Millisecond))

	trace := fstrace.Generate(fstrace.GenerateParams{
		Ops: 400, UniqueFiles: 120, BytesRead: 600_000, BytesWritten: 8_000,
	})
	env := fleet.NewEnv(profile, cfg.Telemetry)
	stackOpts := []vfs.StackOption{}
	if cfg.FSCache {
		stackOpts = append(stackOpts, vfs.WithCache(vfs.CacheOptions{Hub: cfg.Telemetry}))
	}
	root := vfs.Stack(vfs.Instrument(vfs.NewInMemory(), cfg.Telemetry), stackOpts...)
	fs := env.NewFS(root)
	var okOps int
	if err := fleet.Drive(env.Win.Loop, "fstrace", func(done func(error)) {
		fstrace.SeedVFS(fs, trace, func(err error) {
			if err != nil {
				done(err)
				return
			}
			fstrace.ReplayVFSWith(env.Win.Loop, fs, trace, cfg.Telemetry, func(ok int, err error) {
				okOps = ok
				done(err)
			})
		})
	}); err != nil {
		return err
	}
	fmt.Printf("telemetry pass: fstrace replay completed %d/%d ops\n", okOps, len(trace.Ops))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doppio-bench:", err)
	os.Exit(1)
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doppio/internal/bench"
	"doppio/internal/browser"
	"doppio/internal/telemetry"
)

// TestTelemetryPass drives the -trace/-metrics default pass and checks
// the acceptance contract: the metrics table carries event-loop
// dispatch latency, per-VFS-backend op latency, and JVM opcode counts,
// and the trace file parses as valid Chrome trace_event JSON.
func TestTelemetryPass(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full workload")
	}
	hub := telemetry.NewHub().EnableTracing()
	cfg := bench.Config{
		Scale:            1,
		Browsers:         []browser.Profile{browser.Chrome28},
		DisableEngineTax: true,
		Telemetry:        hub,
	}
	if err := runTelemetryPass(cfg); err != nil {
		t.Fatal(err)
	}

	table := hub.Registry.Snapshot().Format()
	for _, want := range []string{
		"eventloop/dispatch", // dispatch latency histogram (p95 column)
		"vfs.InMemory/stat",  // per-backend op latency
		"vfs.InMemory/open",  //
		"jvm/op.",            // opcode counters
		"jvm/invocations",    //
		"fstrace/read",       // replay per-op latency
		"core/timeslice",     //
	} {
		if !strings.Contains(table, want) {
			t.Errorf("metrics table missing %q:\n%s", want, table)
		}
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := hub.Tracer.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(data); err != nil {
		t.Fatalf("-trace output is not a valid Chrome trace: %v", err)
	}
	if len(data) < 100 {
		t.Fatalf("trace suspiciously small: %d bytes", len(data))
	}
}

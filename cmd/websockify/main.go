// websockify bridges incoming WebSocket connections to a plain TCP
// server, as the kanaka/websockify program the paper uses (§5.3).
//
//	websockify -listen :8081 -target 127.0.0.1:7000
//
// With -metrics, SIGINT/SIGTERM print a telemetry snapshot (connection
// count, frames and bytes in each direction, handshake latency) before
// shutting down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"doppio/internal/sockets"
	"doppio/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "WebSocket listen address")
	target := flag.String("target", "", "TCP target address (host:port)")
	metrics := flag.Bool("metrics", false, "print a telemetry metrics snapshot on shutdown")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "usage: websockify -listen addr -target host:port")
		os.Exit(2)
	}
	proxy, err := sockets.NewWebsockify(*listen, *target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "websockify:", err)
		os.Exit(1)
	}
	var hub *telemetry.Hub
	if *metrics {
		hub = telemetry.NewHub()
		proxy.SetTelemetry(hub)
	}
	fmt.Printf("websockify: %s -> %s\n", proxy.Addr(), *target)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	s := <-ch
	fmt.Fprintf(os.Stderr, "websockify: %v: shutting down\n", s)
	if hub != nil {
		fmt.Fprint(os.Stderr, hub.Registry.Snapshot().Format())
	}
	proxy.Close()
}

// websockify bridges incoming WebSocket connections to a plain TCP
// server, as the kanaka/websockify program the paper uses (§5.3).
//
//	websockify -listen :8081 -target 127.0.0.1:7000
//
// With -metrics, SIGINT/SIGTERM print a telemetry snapshot (connection
// count, frames and bytes in each direction, handshake latency) before
// shutting down.
//
// With -fault-rate, the proxy deterministically injects frame drops,
// resets, and truncations at the given per-frame rate — a chaos mode
// for exercising reconnecting clients against a flaky bridge.
//
// With -ops, a live ops server exposes /metrics (Prometheus text),
// /debug/flight (recent connections, frames, and injected faults), and
// net/http/pprof while the bridge runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"doppio/internal/ops"
	"doppio/internal/sockets"
	"doppio/internal/telemetry"
	"doppio/internal/vfs/faultfs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "WebSocket listen address")
	target := flag.String("target", "", "TCP target address (host:port)")
	metrics := flag.Bool("metrics", false, "print a telemetry metrics snapshot on shutdown")
	faultRate := flag.Float64("fault-rate", 0, "per-frame fault injection rate: drops and resets at this rate, truncations at half of it (0 disables)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the -fault-rate fault sequence")
	opsAddr := flag.String("ops", "", "serve the live ops endpoints (/metrics, /debug/sock, /debug/flight, pprof, ...) on this address, e.g. :6060")
	flightCap := flag.Int("flight", 0, "enable the flight recorder (connection/frame/fault events) with this event capacity (0 disables; -ops enables it at the default capacity)")
	mux := flag.Bool("mux", true, "accept multiplexed sessions on "+sockets.MuxPath+" (false serves every path in plain one-stream-per-connection mode)")
	window := flag.Int("window", 0, "per-stream flow-control window in bytes for mux sessions (0 = 64 KiB default)")
	maxStreams := flag.Int("max-streams", 0, "per-session stream cap for mux sessions; SYNs beyond it are shed (0 = 1024 default)")
	shedDepth := flag.Int("shed-depth", 0, "pause credit and shed new streams while live mux streams exceed this count (0 disables)")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "usage: websockify -listen addr -target host:port")
		os.Exit(2)
	}
	var hub *telemetry.Hub
	if *metrics || *opsAddr != "" || *flightCap > 0 {
		hub = telemetry.NewHub()
		if *flightCap > 0 {
			hub.EnableFlight(*flightCap)
		} else if *opsAddr != "" {
			hub.EnableFlight(telemetry.DefaultFlightCapacity)
		}
	}
	opts := sockets.GatewayOptions{
		Window:     *window,
		MaxStreams: *maxStreams,
		DisableMux: !*mux,
		Hub:        hub,
	}
	// Standalone the gateway has no tenant run queue to watch, so the
	// overload signal is its own live stream count. The sweep starts
	// inside NewGateway, hence the atomic self-reference.
	var gw atomic.Pointer[sockets.Websockify]
	if *shedDepth > 0 {
		opts.ShedDepth = *shedDepth
		opts.QueueDepth = func() int {
			if p := gw.Load(); p != nil {
				return p.LiveStreams()
			}
			return 0
		}
	}
	proxy, err := sockets.NewGateway(*listen, *target, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "websockify:", err)
		os.Exit(1)
	}
	gw.Store(proxy)
	if *opsAddr != "" {
		srv := ops.NewServer(hub)
		srv.RegisterGateway(proxy)
		addr, err := srv.Serve(*opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "websockify:", err)
			os.Exit(1)
		}
		fmt.Printf("websockify: ops server on http://%s\n", addr)
	}
	if *faultRate > 0 {
		proxy.SetFaults(faultfs.Plan{
			Seed:      *faultSeed,
			ErrRate:   *faultRate,
			PostFrac:  0.5, // half the errno faults reset the bridge
			ShortRate: *faultRate / 2,
		})
		fmt.Printf("websockify: injecting faults at %.0f%% per frame (seed %d)\n", *faultRate*100, *faultSeed)
	}
	fmt.Printf("websockify: %s -> %s\n", proxy.Addr(), *target)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	s := <-ch
	fmt.Fprintf(os.Stderr, "websockify: %v: shutting down\n", s)
	if hub != nil {
		if *metrics {
			fmt.Fprint(os.Stderr, hub.Registry.Snapshot().Format())
		}
		if hub.Flight != nil {
			// The bridge's black box: recent connections, frames in
			// each direction, and injected faults.
			fmt.Fprint(os.Stderr, telemetry.FormatFlight(hub.Flight.Tail(50)))
		}
	}
	proxy.Close()
}

// websockify bridges incoming WebSocket connections to a plain TCP
// server, as the kanaka/websockify program the paper uses (§5.3).
//
//	websockify -listen :8081 -target 127.0.0.1:7000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"doppio/internal/sockets"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8081", "WebSocket listen address")
	target := flag.String("target", "", "TCP target address (host:port)")
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "usage: websockify -listen addr -target host:port")
		os.Exit(2)
	}
	proxy, err := sockets.NewWebsockify(*listen, *target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "websockify:", err)
		os.Exit(1)
	}
	fmt.Printf("websockify: %s -> %s\n", proxy.Addr(), *target)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	proxy.Close()
}

// minicc compiles and runs a MiniC program inside a simulated browser
// (the Emscripten+Doppio pipeline of §7.2). Standard input feeds the
// program's blocking getline.
//
//	minicc prog.c
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"doppio/internal/browser"
	"doppio/internal/core"
	"doppio/internal/minic"
)

func main() {
	browserName := flag.String("browser", "Chrome 28", "browser profile")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-browser name] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	prog, err := minic.CompileC(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	profile, ok := browser.ByName(*browserName)
	if !ok {
		fmt.Fprintf(os.Stderr, "minicc: unknown browser %q\n", *browserName)
		os.Exit(2)
	}
	win := browser.NewWindow(profile)
	reader := bufio.NewReader(os.Stdin)
	stdin := func(max int, cb func(string, bool)) {
		c := core.NewCompletion(win.Loop, "minicc.stdin")
		c.Then(func(v interface{}, err error) {
			if line, ok := v.(string); ok && len(line) > 0 {
				cb(trimNL(line), false)
				return
			}
			cb("", err != nil)
		})
		resolve := c.Resolver()
		go func() {
			line, err := reader.ReadString('\n')
			resolve(line, err)
		}()
	}
	vm, err := minic.NewVM(win, prog, minic.VMOptions{Stdout: os.Stdout, Stdin: stdin})
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	exit, err := vm.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	os.Exit(int(exit))
}

func trimNL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// doppio-disasm is the javap analog: it disassembles JVM class files.
//
//	doppio-disasm Foo.class [Bar.class...]
package main

import (
	"fmt"
	"os"

	"doppio/internal/classfile"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doppio-disasm file.class...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doppio-disasm:", err)
			os.Exit(1)
		}
		cf, err := classfile.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doppio-disasm: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Print(classfile.Disassemble(cf))
	}
}

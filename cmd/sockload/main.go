// sockload soaks the websockify gateway: N logical echo connections,
// once as plain one-stream WebSockets and once multiplexed onto a few
// sessions, plus a shed phase that forces admission control to refuse
// and then re-admit streams. Reports nearest-rank p50/p95/p99/p999 per
// arm into BENCH_sock.json.
//
//	go run ./cmd/sockload                       # full 1k/5k/10k sweep
//	go run -race ./cmd/sockload -n 500 -check   # the CI smoke gate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"doppio/internal/bench"
)

func main() {
	conns := flag.String("conns", "1000,5000,10000", "comma-separated sweep of connection counts")
	n := flag.Int("n", 0, "single connection count (overrides -conns)")
	streams := flag.Int("streams", 100, "mux streams per WebSocket session")
	msgs := flag.Int("msgs", 4, "echo round trips per stream")
	size := flag.Int("size", 256, "echo message bytes")
	window := flag.Int("window", 0, "per-stream credit window bytes (0 = 64KiB)")
	shedDepth := flag.Int("shed-depth", 8, "shed phase queue-depth threshold")
	transport := flag.String("transport", "mem", "byte transport: mem or tcp")
	check := flag.Bool("check", false, "verify every echoed byte and gate on zero loss + nonzero shed")
	out := flag.String("o", "BENCH_sock.json", "report path (empty = skip)")
	flag.Parse()

	p := bench.SockParams{
		StreamsPerConn: *streams,
		Msgs:           *msgs,
		Size:           *size,
		Window:         *window,
		ShedDepth:      *shedDepth,
		Transport:      *transport,
		Check:          *check,
	}
	if *n > 0 {
		p.Conns = []int{*n}
	} else {
		for _, s := range strings.Split(*conns, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "sockload: bad -conns entry %q\n", s)
				os.Exit(2)
			}
			p.Conns = append(p.Conns, v)
		}
	}

	res, err := bench.RunSockLoad(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sockload:", err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatSock(res))
	if *out != "" {
		if err := bench.WriteSockReport(*out, res); err != nil {
			fmt.Fprintln(os.Stderr, "sockload: write report:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	if *check {
		// RunSockLoad already failed on any lost frame or a flat shed
		// counter; reaching here means every gate held.
		fmt.Println("sockload check: ok")
	}
}

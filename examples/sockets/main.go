// Sockets: an unmodified Java socket client running in the browser,
// connected through the websockify gateway to a plain TCP echo server
// — the full §5.3 pipeline, over the redesigned client stack: the
// connection is assembled with sockets.Stack and multiplexed, so the
// guest's socket is one flow-controlled stream on a shared WebSocket
// rather than a whole connection of its own.
//
//	go run ./examples/sockets
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
	"doppio/internal/sockets"
)

const program = `
import java.net.Socket;

public class Client {
    public static void main(String[] args) {
        int port = Integer.parseInt(args[1]);
        Socket s = new Socket(args[0], port);
        s.writeString("hello over websockify");
        String reply = s.readString(256);
        System.out.println("echo reply: " + reply);
        s.close();
    }
}
`

func main() {
	// A plain, unmodified TCP echo server (native side).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						c.Write(buf[:n])
					}
					if err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	// The gateway bridges browser WebSockets to the TCP server (§5.3);
	// on the mux path each logical stream gets its own credit window.
	proxy, err := sockets.NewGateway("127.0.0.1:0", ln.Addr().String(), sockets.GatewayOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer proxy.Close()
	host, portStr, _ := strings.Cut(proxy.Addr(), ":")
	port, _ := strconv.Atoi(portStr)
	fmt.Printf("echo server at %s, gateway at %s\n", ln.Addr(), proxy.Addr())

	classes, err := rt.CompileWith(map[string]string{"Client.mj": program})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	win := browser.NewWindow(browser.Chrome28)

	// The client stack: one multiplexed WebSocket connection; every
	// guest socket dials a stream over it.
	conn := sockets.Stack(win, proxy.Addr(), sockets.WithMux(4))

	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           os.Stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
		SocketDialer: func(_ *browser.Window, _ string, cb func(*sockets.Socket, error)) {
			conn.Dial(cb)
		},
	})
	var result error
	finished := false
	vm.StartMain("Client", []string{host, fmt.Sprint(port)}, func(err error) {
		result = err
		finished = true
		// The guest closed its socket (the stream); the connection
		// itself is ours to tear down so the loop can drain.
		conn.Close()
	})
	if err := win.Loop.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	if !finished {
		fmt.Fprintln(os.Stderr, "run: event loop drained before main finished")
		os.Exit(1)
	}
	if result != nil {
		fmt.Fprintln(os.Stderr, "run:", result)
		os.Exit(1)
	}
}

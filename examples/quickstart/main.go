// Quickstart: compile a Java program with the MiniJava compiler and run
// it unmodified inside a simulated browser on DoppioJVM — the paper's
// core claim, end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

const program = `
public class Hello {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }

    public static void main(String[] args) {
        System.out.println("Hello from DoppioJVM running in " + args[0] + "!");
        System.out.println("fib(25) = " + fib(25));
        try {
            Object o = null;
            o.toString();
        } catch (NullPointerException e) {
            System.out.println("caught: " + e.getClass().getName());
        }
    }
}
`

func main() {
	// 1. Compile the source (plus the runtime class library) to real
	//    JVM class files.
	classes, err := rt.CompileWith(map[string]string{"Hello.mj": program})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Printf("compiled %d class files\n", len(classes))

	// 2. Open a simulated browser window (Chrome 28 profile: typed
	//    arrays, postMessage resumption, 4ms timer clamp, watchdog).
	win := browser.NewWindow(browser.Chrome28)

	// 3. Boot DoppioJVM inside it and run main.
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           os.Stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true, // don't model JS-engine slowness here
	})
	if err := vm.RunMain("Hello", []string{win.Profile.Name}); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	st := vm.Runtime().Stats()
	fmt.Printf("executed %d bytecodes over %d suspensions (%s suspended) via %s\n",
		vm.Instructions, st.Suspensions, st.SuspendedTime.Round(1000), vm.Runtime().Mechanism())
}

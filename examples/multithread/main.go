// Multithread: unmodified multithreaded Java — producer/consumer over
// Object.wait/notify plus Thread.sleep — running on Doppio's
// cooperative thread pool (§4.3, §6.2) inside one browser event loop.
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"os"

	"doppio/internal/browser"
	"doppio/internal/jvm"
	"doppio/internal/jvm/rt"
)

const program = `
class Queue {
    Object lock = new Object();
    int[] items = new int[4];
    int count;

    void put(int v) {
        synchronized (lock) {
            while (count == items.length) { lock.wait(); }
            items[count] = v;
            count++;
            lock.notifyAll();
        }
    }

    int take() {
        synchronized (lock) {
            while (count == 0) { lock.wait(); }
            count--;
            int v = items[count];
            lock.notifyAll();
            return v;
        }
    }
}

class Producer extends Thread {
    Queue q;
    int n;
    Producer(Queue q, int n) { this.q = q; this.n = n; }
    public void run() {
        for (int i = 1; i <= n; i++) {
            q.put(i);
            if (i % 8 == 0) { Thread.sleep(1L); }
        }
    }
}

class Consumer extends Thread {
    Queue q;
    int n;
    int sum;
    Consumer(Queue q, int n) { this.q = q; this.n = n; }
    public void run() {
        for (int i = 0; i < n; i++) {
            sum += q.take();
        }
    }
}

public class Demo {
    public static void main(String[] args) {
        Queue q = new Queue();
        Producer p = new Producer(q, 64);
        Consumer a = new Consumer(q, 32);
        Consumer b = new Consumer(q, 32);
        p.start();
        a.start();
        b.start();
        p.join();
        a.join();
        b.join();
        System.out.println("consumed total: " + (a.sum + b.sum));
        System.out.println("expected total: " + (64 * 65 / 2));
    }
}
`

func main() {
	classes, err := rt.CompileWith(map[string]string{"Demo.mj": program})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	win := browser.NewWindow(browser.Firefox22)
	vm := jvm.NewDoppioVM(win, jvm.DoppioOptions{
		Stdout:           os.Stdout,
		Provider:         jvm.MapProvider(classes),
		DisableEngineTax: true,
	})
	if err := vm.RunMain("Demo", nil); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	st := vm.Runtime().Stats()
	fmt.Printf("three JVM threads interleaved over %d context switches in one %s event loop\n",
		st.ContextSwitches, win.Profile.Name)
	fmt.Printf("slice batching: %d timeslices packed into %d macrotasks (max %d per batch), %d suspension round trips\n",
		st.Slices, st.Batches, st.MaxBatchSlices, st.Suspensions)
}

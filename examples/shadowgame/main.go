// Shadowgame is the reproduction of the paper's §7.2 case study:
// Emscripten (here: the MiniC compiler + heap VM) extended with the
// Doppio file system, so an unmodified C game gets
//
//   - synchronous dynamic asset loading — each level file downloads
//     from the web server *on demand* the moment the game opens it
//     (no preloading), and
//   - persistent saves — the game's save directory is mounted on
//     browser-local storage, so progress survives page reloads.
//
// The game is a grid puzzle: walk '@' to the exit 'X' around '#'
// walls. The demo feeds a scripted sequence of moves through the
// blocking getline path (the paper's §3.2 example).
//
//	go run ./examples/shadowgame
package main

import (
	"fmt"
	"net"
	"os"
	"strings"

	"doppio/internal/browser"
	"doppio/internal/buffer"
	"doppio/internal/core"
	"doppio/internal/minic"
	"doppio/internal/sockets"
	"doppio/internal/vfs"
)

// game is the unmodified C program. It knows nothing about browsers:
// it opens files, reads lines from the console, and writes its save
// file — synchronously.
const game = `
char grid[256];
int width;
int height;
int px;
int py;

int findPlayer() {
    for (int y = 0; y < height; y++) {
        for (int x = 0; x < width; x++) {
            if (grid[y * width + x] == '@') {
                px = x;
                py = y;
                return 1;
            }
        }
    }
    return 0;
}

int loadLevel(char *path) {
    char *data = readfile(path);
    if (data == 0) { return 0; }
    int n = strlen(data);
    width = 0;
    while (width < n && data[width] != 10) { width++; }
    width = width + 1; // include the newline as a column
    height = (n + width - 1) / width;
    strcpy(grid, data);
    free(data);
    return findPlayer();
}

void draw() {
    puts(grid);
}

int tryMove(int dx, int dy) {
    int nx = px + dx;
    int ny = py + dy;
    if (nx < 0 || ny < 0 || nx >= width - 1 || ny >= height) { return 0; }
    char c = grid[ny * width + nx];
    if (c == '#') { return 0; }
    if (c == 'X') { return 2; }
    grid[py * width + px] = '.';
    grid[ny * width + nx] = '@';
    px = nx;
    py = ny;
    return 1;
}

void saveProgress(int level) {
    char buf[16];
    buf[0] = '0' + level;
    buf[1] = 0;
    writefile("/save/progress.txt", buf, 1);
}

int loadProgress() {
    char *data = readfile("/save/progress.txt");
    if (data == 0) { return 1; }
    int lvl = data[0] - '0';
    free(data);
    if (lvl < 1) { return 1; }
    return lvl;
}

int playLevel(int level) {
    char path[32];
    strcpy(path, "/assets/level0.txt");
    path[13] = '0' + level;
    puts("loading level ");
    putint(level);
    puts(" (synchronous fetch)...\n");
    if (!loadLevel(path)) {
        return 0; // no such level: the game is over
    }
    draw();
    char cmd[8];
    while (1) {
        puts("move> ");
        int n = getline(cmd, 8);
        if (n < 0) { puts("eof\n"); return 0; }
        int dx = 0;
        int dy = 0;
        if (cmd[0] == 'w') { dy = -1; }
        if (cmd[0] == 's') { dy = 1; }
        if (cmd[0] == 'a') { dx = -1; }
        if (cmd[0] == 'd') { dx = 1; }
        int r = tryMove(dx, dy);
        if (r == 2) {
            puts("level complete!\n");
            return 1;
        }
        if (r == 1) { draw(); }
        if (r == 0) { puts("blocked\n"); }
    }
    return 0;
}

int main() {
    int level = loadProgress();
    puts("resuming at level ");
    putint(level);
    putchar('\n');
    while (playLevel(level)) {
        level++;
        saveProgress(level);
    }
    puts("thanks for playing\n");
    return 0;
}
`

var levels = map[string]string{
	"level1.txt": "" +
		"#####\n" +
		"#@..#\n" +
		"#.#.#\n" +
		"#..X#\n" +
		"#####\n",
	"level2.txt": "" +
		"#######\n" +
		"#@#...#\n" +
		"#.#.#.#\n" +
		"#...#X#\n" +
		"#######\n",
}

// moves solves level 1 then level 2, then quits at EOF of input.
var moves = []string{
	// level 1: down, down, right, right
	"s", "s", "d", "d",
	// level 2: down, down, right, right, up, up, right, right, down, down
	"s", "s", "d", "d", "w", "w", "d", "d", "s", "s",
}

func main() {
	win := browser.NewWindow(browser.Chrome28)

	// The web server hosts the game assets; the HTTP backend mounts
	// them read-only at /assets (downloaded on demand, §7.2).
	for name, content := range levels {
		win.Remote.Serve("assets/"+name, []byte(content))
	}
	bufs := &buffer.Factory{Typed: true, OnTypedAlloc: win.NoteTypedArrayAlloc}
	mount := vfs.NewMountFS(vfs.NewInMemory())
	// Asset fetches go through the decorator stack (here just the
	// cache): a level re-opened after the first download is served
	// without another XHR, and the game's repeated existence probes hit
	// the negative stat cache.
	assets := vfs.Stack(vfs.NewHTTPFS(win.Loop, win.Remote, "assets"),
		vfs.WithCache(vfs.CacheOptions{}))
	mount.Mount("/assets", assets)
	// Saves go to localStorage, surviving "page reloads" (§7.2:
	// "back the game's configuration folder to localStorage").
	mount.Mount("/save", vfs.NewLocalStorageFS(win.LocalStorage, bufs))
	fs := vfs.New(win.Loop, bufs, mount)

	prog, err := minic.CompileC(game)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}

	moveIdx := 0
	stdin := func(max int, cb func(string, bool)) {
		// Keyboard events arrive asynchronously; getline blocks the
		// game until one lands (§3.2's impossible-in-plain-JS shape).
		c := core.NewCompletion(win.Loop, "shadowgame.keyboard")
		c.Then(func(v interface{}, _ error) {
			if key, ok := v.(string); ok {
				cb(key, false)
				return
			}
			cb("", true)
		})
		resolve := c.Resolver()
		if moveIdx < len(moves) {
			resolve(moves[moveIdx], nil)
			moveIdx++
		} else {
			resolve(nil, nil)
		}
	}

	vm, err := minic.NewVM(win, prog, minic.VMOptions{
		Stdout: os.Stdout,
		Stdin:  stdin,
		FS:     fs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := vm.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	// Demonstrate persistence: the save file lives in localStorage.
	if v, ok := win.LocalStorage.GetItem("f!/progress.txt"); ok {
		fmt.Printf("save persisted to localStorage (%d chars packed)\n", len(v))
	}
	fmt.Printf("game executed %d VM steps with on-demand asset loads\n", vm.Steps)
	if cs, ok := vfs.Find[vfs.CacheStatser](assets); ok {
		s := cs.CacheStats()
		fmt.Printf("asset cache: %d page hits, %d misses, %d negative-stat hits\n",
			s.Hits, s.Misses, s.NegativeHits)
	}

	// Score upload (§5.3 meets §7.2): the finished game reports its
	// result to a native leaderboard server the browser can only reach
	// through the websockify gateway, over a connection assembled with
	// the sockets.Stack builder.
	if err := uploadScore(win, vm.Steps); err != nil {
		fmt.Fprintln(os.Stderr, "score upload:", err)
		os.Exit(1)
	}
}

// uploadScore sends the run's step count to a plain TCP "leaderboard"
// server via the gateway, as one multiplexed stream on a Stack-built
// connection, and prints the server's acknowledgement.
func uploadScore(win *browser.Window, steps int64) error {
	board, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer board.Close()
	go func() {
		c, err := board.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 256)
		n, _ := c.Read(buf)
		fmt.Fprintf(c, "recorded: %s", strings.TrimSpace(string(buf[:n])))
	}()
	gw, err := sockets.NewGateway("127.0.0.1:0", board.Addr().String(), sockets.GatewayOptions{})
	if err != nil {
		return err
	}
	defer gw.Close()

	// The game's loop already drained; run it again to drive the
	// asynchronous socket I/O to completion.
	var uploadErr error
	finished := false
	win.Loop.Post("score-upload", func() {
		conn := sockets.Stack(win, gw.Addr(), sockets.WithMux(2))
		done := func(err error) {
			uploadErr = err
			finished = true
			conn.Close()
		}
		conn.Dial(func(s *sockets.Socket, err error) {
			if err != nil {
				done(err)
				return
			}
			score := fmt.Sprintf("shadowgame steps=%d\n", steps)
			s.Write([]byte(score)).Then(func(_ interface{}, err error) {
				if err != nil {
					done(err)
					return
				}
				s.Read(256).Then(func(v interface{}, err error) {
					if err != nil {
						done(err)
						return
					}
					data, _ := v.([]byte)
					fmt.Printf("leaderboard: %s\n", string(data))
					s.Close()
					done(nil)
				})
			})
		})
	})
	if err := win.Loop.Run(); err != nil {
		return err
	}
	if !finished {
		return fmt.Errorf("event loop drained before the upload finished")
	}
	return uploadErr
}
